//! The RA's read path as a wire-protocol [`Service`] endpoint.
//!
//! [`StatusService`] wraps the `Arc`-shared, lock-free [`StatusServer`]:
//! `GetStatus` and `GetMultiStatus` build statuses exactly like the in-path
//! piggybacking does (same snapshots, same epoch-keyed proof caches), and
//! `GetSignedRoot` serves the current mirrored root for consistency
//! cross-checks. Because [`StatusServer`] is already `&self`-only, the
//! service needs no interior mutability at all — any number of transport
//! threads (loopback callers, simulator events, TCP pool workers) serve
//! concurrently while the owning [`crate::ra::RevocationAgent`] keeps
//! applying dictionary updates.

use crate::serve::StatusServer;
use ritm_proto::message::RequestEnvelope;
use ritm_proto::{
    Frame, ProtoError, RitmRequest, RitmResponse, Service, StatusPayload, MAX_FRAME_LEN,
    PROTOCOL_V2,
};
use std::sync::Arc;

/// One RA status endpoint over the shared [`StatusServer`].
#[derive(Debug, Clone)]
pub struct StatusService {
    server: Arc<StatusServer>,
    /// Whether `GetMultiStatus` requests may compress same-CA chain runs
    /// when the requester allows it.
    pub allow_compression: bool,
}

impl StatusService {
    /// Wraps a status server handle (see
    /// [`crate::ra::RevocationAgent::status_server`]).
    pub fn new(server: Arc<StatusServer>) -> Self {
        StatusService {
            server,
            allow_compression: true,
        }
    }

    /// The wrapped server handle.
    pub fn server(&self) -> &Arc<StatusServer> {
        &self.server
    }
}

impl Service for StatusService {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        match req {
            RitmRequest::GetStatus { ca, serial } => match self.server.status_for(&ca, &serial) {
                Some(status) => RitmResponse::Status(StatusPayload::single(vec![status])),
                None => RitmResponse::Error(ProtoError::UnknownCa(ca)),
            },
            RitmRequest::GetMultiStatus { chain, compress } => {
                if chain.is_empty() {
                    return RitmResponse::Error(ProtoError::NotFound);
                }
                match self
                    .server
                    .build_status(&chain, compress && self.allow_compression)
                {
                    Some(payload) => RitmResponse::Status(payload),
                    // Some CA in the chain is not mirrored: stay silent
                    // about which (the RA injects nothing it cannot prove).
                    None => RitmResponse::Error(ProtoError::NotFound),
                }
            }
            RitmRequest::GetSignedRoot { ca } => match self.server.snapshot(&ca) {
                Some(snap) => RitmResponse::SignedRoot(*snap.signed_root()),
                None => RitmResponse::Error(ProtoError::UnknownCa(ca)),
            },
            // Dissemination requests belong to CDN edges, manifests to CAs.
            RitmRequest::FetchDelta { .. }
            | RitmRequest::FetchFreshness { .. }
            | RitmRequest::CatchUp { .. }
            | RitmRequest::CatchUpPaged { .. }
            | RitmRequest::GetManifest { .. }
            | RitmRequest::GossipRoots { .. } => RitmResponse::Error(ProtoError::Unsupported),
        }
    }

    /// The zero-copy hot path: `GetStatus` and single-CA `GetMultiStatus`
    /// answer straight from the server's encoded-response cache as a
    /// shared-body [`Frame`] — no proof building, no payload assembly, no
    /// encoding, and no copy of the response bytes. Everything else (and
    /// any response too large for the framing layer) falls through to
    /// [`Service::handle_envelope`], so the wire bytes are identical to
    /// the owned path in every case.
    fn serve_envelope(&self, env: RequestEnvelope) -> Frame {
        let body = match &env.request {
            Ok(RitmRequest::GetStatus { ca, serial }) => self.server.encoded_status(ca, serial),
            Ok(RitmRequest::GetMultiStatus { chain, compress }) if !chain.is_empty() => self
                .server
                .encoded_multi_status(chain, *compress && self.allow_compression),
            _ => None,
        };
        if let Some(body) = body {
            // Same size guard as handle_envelope: encoded_len is the
            // version byte + optional id + body.
            let overhead = if env.reply_version >= PROTOCOL_V2 {
                4
            } else {
                0
            };
            if 1 + overhead + body.len() <= MAX_FRAME_LEN {
                return Frame::shared(env.reply_version, env.request_id, body);
            }
        }
        Frame::from_bytes(self.handle_envelope(env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};

    const T0: u64 = 1_000_000;

    fn setup(n: u32) -> (CaDictionary, StatusService) {
        let mut rng = StdRng::seed_from_u64(23);
        let mut ca = CaDictionary::new(
            CaId::from_name("StatusSvcCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        m.set_delta(10);
        let serials: Vec<SerialNumber> = (0..n).map(|i| SerialNumber::from_u24(i * 2)).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        m.apply_issuance(&iss, T0 + 1).unwrap();
        let server = StatusServer::new();
        assert!(server.publish(m.snapshot()));
        (ca, StatusService::new(Arc::new(server)))
    }

    #[test]
    fn get_status_validates_like_the_in_path_build() {
        let (ca, svc) = setup(20);
        let serial = SerialNumber::from_u24(4);
        match svc.handle(RitmRequest::GetStatus {
            ca: ca.ca(),
            serial,
        }) {
            RitmResponse::Status(payload) => {
                assert_eq!(payload.statuses.len(), 1);
                let outcome = payload.statuses[0]
                    .validate(&serial, &ca.verifying_key(), 10, T0 + 2)
                    .unwrap();
                assert!(outcome.is_revoked());
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    #[test]
    fn multi_status_compresses_runs_past_the_leaf() {
        let (ca, svc) = setup(50);
        let chain: Vec<(CaId, SerialNumber)> = [1u32, 21, 41]
            .iter()
            .map(|&v| (ca.ca(), SerialNumber::from_u24(v)))
            .collect();
        match svc.handle(RitmRequest::GetMultiStatus {
            chain,
            compress: true,
        }) {
            RitmResponse::Status(p) => {
                assert_eq!(p.statuses.len(), 1, "leaf stays individual");
                assert_eq!(p.multi.len(), 1);
            }
            other => panic!("expected status, got {other:?}"),
        }
    }

    #[test]
    fn serve_frame_matches_handle_frame_bytes_for_both_versions() {
        let (ca, svc) = setup(20);
        let chain: Vec<(CaId, SerialNumber)> = [0u32, 2, 6]
            .iter()
            .map(|&v| (ca.ca(), SerialNumber::from_u24(v)))
            .collect();
        let reqs = [
            RitmRequest::GetStatus {
                ca: ca.ca(),
                serial: SerialNumber::from_u24(4),
            },
            RitmRequest::GetMultiStatus {
                chain,
                compress: true,
            },
            // Falls through the cache (unknown CA) — still identical.
            RitmRequest::GetStatus {
                ca: CaId::from_name("nobody"),
                serial: SerialNumber::from_u24(1),
            },
        ];
        for req in &reqs {
            for frame in [req.to_frame(), req.to_frame_v2(7)] {
                assert_eq!(
                    svc.serve_frame(&frame).to_vec(),
                    svc.handle_frame(&frame),
                    "zero-copy and owned paths must agree on the wire"
                );
            }
        }
        // The v2 replays were served from the encoded cache (one shared
        // body covers both envelope versions).
        assert!(svc.server().encoded_cache_stats().hits >= 1);
        assert!(svc.server().encoded_multi_cache_stats().hits >= 1);
    }

    #[test]
    fn unmirrored_ca_is_a_typed_error() {
        let (_, svc) = setup(4);
        let nobody = CaId::from_name("nobody");
        assert_eq!(
            svc.handle(RitmRequest::GetStatus {
                ca: nobody,
                serial: SerialNumber::from_u24(1),
            }),
            RitmResponse::Error(ProtoError::UnknownCa(nobody))
        );
        assert_eq!(
            svc.handle(RitmRequest::FetchDelta { ca: nobody }),
            RitmResponse::Error(ProtoError::Unsupported)
        );
    }
}
