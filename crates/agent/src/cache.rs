//! Epoch-keyed proof caching for the RA's hot path.
//!
//! At CDN scale many concurrent TLS flows present the same server
//! certificates, so an RA rebuilds identical audit paths thousands of times
//! between dictionary updates. A [`ProofCache`] memoizes the bare
//! [`RevocationProof`] per `(CA, serial)`, keyed by the mirror's
//! [`DictionaryEngine::epoch`]: a cached proof is served only while the
//! mirror's epoch is unchanged, because audit paths are valid exactly until
//! the root advances. Freshness-only refreshes do not advance the epoch —
//! the RA composes the cached proof with the *live* signed root and
//! freshness statement, so cached statuses are never stale.
//!
//! [`DictionaryEngine::epoch`]: ritm_dictionary::DictionaryEngine::epoch

use ritm_dictionary::{CaId, RevocationProof, SerialNumber};
use std::collections::HashMap;

/// Default bound on cached proofs (a proof is a few hundred bytes, so the
/// default tops out around a few MB — connection-table scale).
pub const DEFAULT_CACHE_CAPACITY: usize = 16_384;

/// Hit/miss counters, surfaced through the RA health report
/// (`ritm_agent::monitor`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Proofs served from cache.
    pub hits: u64,
    /// Proofs generated because no entry (or only a stale-epoch entry)
    /// existed.
    pub misses: u64,
    /// Entries dropped because their epoch was superseded.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct CachedProof {
    epoch: u64,
    proof: RevocationProof,
}

/// An epoch-keyed audit-path cache.
#[derive(Debug)]
pub struct ProofCache {
    entries: HashMap<(CaId, SerialNumber), CachedProof>,
    capacity: usize,
    stats: CacheStats,
}

impl Default for ProofCache {
    fn default() -> Self {
        ProofCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl ProofCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ProofCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Returns the proof for `(ca, serial)` at `epoch`, generating it with
    /// `make` on a miss. A stored proof from a different epoch counts as a
    /// miss and is replaced.
    pub fn get_or_insert(
        &mut self,
        ca: CaId,
        serial: SerialNumber,
        epoch: u64,
        make: impl FnOnce() -> RevocationProof,
    ) -> RevocationProof {
        if let Some(hit) = self.entries.get(&(ca, serial)).filter(|c| c.epoch == epoch) {
            self.stats.hits += 1;
            return hit.proof.clone();
        }
        self.stats.misses += 1;
        let proof = make();
        if self.entries.len() >= self.capacity {
            // Full: clear this CA's superseded-epoch entries first (epochs
            // of different CAs are independent counters, so other CAs'
            // entries are never judged against `epoch`). If everything is
            // current, serve uncached rather than evict hot entries.
            let before = self.entries.len();
            self.entries
                .retain(|(k_ca, _), c| *k_ca != ca || c.epoch == epoch);
            self.stats.evictions += (before - self.entries.len()) as u64;
            if self.entries.len() >= self.capacity {
                return proof;
            }
        }
        self.entries.insert(
            (ca, serial),
            CachedProof {
                epoch,
                proof: proof.clone(),
            },
        );
        proof
    }

    /// Live entries (stale-epoch entries are dropped lazily, so this counts
    /// stored, not necessarily valid, proofs).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_dictionary::proof::PresenceProof;
    use ritm_dictionary::tree::Leaf;

    fn proof(tag: u32) -> RevocationProof {
        RevocationProof::Present(PresenceProof {
            leaf: Leaf::new(SerialNumber::from_u24(tag), tag as u64 + 1),
            index: 0,
            path: vec![],
        })
    }

    fn key(v: u32) -> (CaId, SerialNumber) {
        (CaId::from_name("C"), SerialNumber::from_u24(v))
    }

    #[test]
    fn second_lookup_hits_within_epoch() {
        let mut cache = ProofCache::new(8);
        let (ca, s) = key(1);
        let a = cache.get_or_insert(ca, s, 5, || proof(1));
        let b = cache.get_or_insert(ca, s, 5, || panic!("must be cached"));
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn epoch_change_invalidates() {
        let mut cache = ProofCache::new(8);
        let (ca, s) = key(1);
        cache.get_or_insert(ca, s, 5, || proof(1));
        let regenerated = cache.get_or_insert(ca, s, 6, || proof(2));
        assert_eq!(
            regenerated,
            proof(2),
            "stale-epoch entry must not be served"
        );
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn full_cache_never_evicts_other_cas_live_entries() {
        let mut cache = ProofCache::new(2);
        let ca_a = CaId::from_name("A");
        let ca_b = CaId::from_name("B");
        let s = SerialNumber::from_u24(1);
        cache.get_or_insert(ca_a, s, 7, || proof(1));
        // CA B's mirror runs its own, lower epoch counter.
        cache.get_or_insert(ca_b, s, 3, || proof(2));
        // Cache full; a miss for CA A at a newer epoch evicts only A's
        // stale entry, never B's live epoch-3 one.
        cache.get_or_insert(ca_a, SerialNumber::from_u24(2), 8, || proof(3));
        let hit = cache.get_or_insert(ca_b, s, 3, || panic!("B must stay cached"));
        assert_eq!(hit, proof(2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_evicts_stale_epochs_only() {
        let mut cache = ProofCache::new(2);
        cache.get_or_insert(key(1).0, key(1).1, 1, || proof(1));
        cache.get_or_insert(key(2).0, key(2).1, 1, || proof(2));
        // Full of epoch-1 entries; an epoch-2 insert purges them.
        cache.get_or_insert(key(3).0, key(3).1, 2, || proof(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 2);
        // Full of *current* entries: lookups still work, hot set kept.
        cache.get_or_insert(key(4).0, key(4).1, 2, || proof(4));
        cache.get_or_insert(key(5).0, key(5).1, 2, || proof(5));
        assert!(cache.len() <= 2);
        let hit = cache.get_or_insert(key(3).0, key(3).1, 2, || panic!("3 stays hot"));
        assert_eq!(hit, proof(3));
    }
}
