//! Epoch-keyed proof caching for the RA's hot path.
//!
//! At CDN scale many concurrent TLS flows present the same server
//! certificates, so an RA rebuilds identical audit paths thousands of times
//! between dictionary updates. An [`EpochKeyedCache`] memoizes a value per
//! `(CA, key)`, keyed by the mirror's [`DictionaryEngine::epoch`]: a cached
//! value is served only while the mirror's epoch is unchanged, because
//! audit paths are valid exactly until the root advances. Freshness-only
//! refreshes do not advance the epoch — the RA composes the cached proof
//! with the *live* signed root and freshness statement, so cached statuses
//! are never stale. [`ProofCache`] is the single-serial instantiation; the
//! status server reuses the same policy for compressed chain multiproofs.
//!
//! The cache is **concurrent**: every method takes `&self` (reads go
//! through a shared lock, counters are atomics), so any number of
//! handshake-serving threads can share one cache — and read-only statistics
//! never require a `&mut` borrow anywhere in the call chain. Misses compute
//! the value *outside* the write lock, so a slow proof generation never
//! blocks concurrent hits.
//!
//! [`DictionaryEngine::epoch`]: ritm_dictionary::DictionaryEngine::epoch

use parking_lot::RwLock;
use ritm_dictionary::{CaId, RevocationProof, SerialNumber};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default bound on cached proofs (a proof is a few hundred bytes, so the
/// default tops out around a few MB — connection-table scale).
pub const DEFAULT_CACHE_CAPACITY: usize = 16_384;

/// Hit/miss counters, surfaced through the RA health report
/// (`ritm_agent::monitor`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Values served from cache.
    pub hits: u64,
    /// Values generated because no entry (or only a stale-epoch entry)
    /// existed.
    pub misses: u64,
    /// Entries dropped because their epoch was superseded (or their CA was
    /// purged).
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Cached<V> {
    epoch: u64,
    value: V,
}

/// The locked interior: the entry map plus the newest epoch seen per CA,
/// which lets a full-cache eviction sweep judge *every* entry against its
/// own CA's frontier (epochs of different CAs are independent counters).
#[derive(Debug)]
struct CacheInner<K, V> {
    map: HashMap<(CaId, K), Cached<V>>,
    newest: HashMap<CaId, u64>,
}

/// A concurrent cache of per-`(CA, key)` values valid for exactly one
/// dictionary epoch.
#[derive(Debug)]
pub struct EpochKeyedCache<K, V> {
    entries: RwLock<CacheInner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// The RA's audit-path cache: one [`RevocationProof`] per `(CA, serial)`.
pub type ProofCache = EpochKeyedCache<SerialNumber, RevocationProof>;

impl<K: Eq + Hash, V: Clone> Default for EpochKeyedCache<K, V> {
    fn default() -> Self {
        EpochKeyedCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl<K: Eq + Hash, V: Clone> EpochKeyedCache<K, V> {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        EpochKeyedCache {
            entries: RwLock::new(CacheInner {
                map: HashMap::new(),
                newest: HashMap::new(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the value for `(ca, key)` at `epoch`, generating it with
    /// `make` on a miss. A stored value from an older epoch counts as a
    /// miss and is replaced. `make` runs outside any lock; concurrent
    /// lookups for other keys proceed in parallel.
    ///
    /// Epochs are monotone per CA, but *readers* are not: a thread still
    /// holding an older snapshot may race threads on the current one, so
    /// an older-epoch insert never displaces newer entries — one lagging
    /// reader cannot nuke the hot working set.
    pub fn get_or_insert(&self, ca: CaId, key: K, epoch: u64, make: impl FnOnce() -> V) -> V {
        let full_key = (ca, key);
        if let Some(hit) = self
            .entries
            .read()
            .map
            .get(&full_key)
            .filter(|c| c.epoch == epoch)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.value.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = make();
        let mut inner = self.entries.write();
        let frontier = inner.newest.entry(ca).or_insert(epoch);
        if *frontier < epoch {
            *frontier = epoch;
        }
        if inner
            .map
            .get(&full_key)
            .is_some_and(|existing| existing.epoch > epoch)
        {
            return value;
        }
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&full_key) {
            // Full: drop every entry stale for *its own* CA — each CA's
            // epochs form an independent counter, so an entry is judged
            // against the newest epoch this cache has seen for that CA,
            // not against `epoch`. (Without this, a multi-CA RA at
            // capacity never reclaims dead entries of CAs other than the
            // one missing, and one CA can permanently starve another's
            // caching.) If everything is current, serve uncached rather
            // than evict hot entries.
            let before = inner.map.len();
            let CacheInner { map, newest } = &mut *inner;
            map.retain(|(k_ca, _), c| newest.get(k_ca).is_none_or(|&front| c.epoch >= front));
            self.evictions
                .fetch_add((before - inner.map.len()) as u64, Ordering::Relaxed);
            if inner.map.len() >= self.capacity {
                return value;
            }
        }
        inner.map.insert(
            full_key,
            Cached {
                epoch,
                value: value.clone(),
            },
        );
        value
    }

    /// Drops every entry belonging to `ca`, returning how many were
    /// removed. Called when an RA stops mirroring a CA — or re-installs a
    /// fresh mirror whose epoch counter restarts (leftover higher-epoch
    /// entries would otherwise block re-caching until the new counter
    /// catches up).
    pub fn purge_ca(&self, ca: &CaId) -> usize {
        let mut inner = self.entries.write();
        let before = inner.map.len();
        inner.map.retain(|(k_ca, _), _| k_ca != ca);
        // Forget the CA's epoch frontier too: a re-installed mirror
        // restarts its counter, and a stale high-water mark would make the
        // sweep treat every re-cached low-epoch entry as dead.
        inner.newest.remove(ca);
        let removed = before - inner.map.len();
        self.evictions.fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// Live entries (stale-epoch entries are dropped lazily, so this counts
    /// stored, not necessarily valid, values).
    pub fn len(&self) -> usize {
        self.entries.read().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.read().map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Shards in a [`ShardedEpochCache`]. Small and fixed: the goal is to
/// split one hot lock eight ways, not to scale shard count with load.
const CACHE_SHARDS: usize = 8;

/// An [`EpochKeyedCache`] split into `CACHE_SHARDS` independently
/// locked shards, routed by the hash of `(CA, key)`. Under concurrent
/// status serving the single cache's `RwLock` is the first thing every
/// request touches; sharding divides that contention without changing
/// any caching semantics — each shard runs the exact per-CA frontier
/// and eviction policy of [`EpochKeyedCache`], just over an eighth of
/// the keyspace (per-shard capacity is `capacity / CACHE_SHARDS`,
/// rounded up).
#[derive(Debug)]
pub struct ShardedEpochCache<K, V> {
    shards: [EpochKeyedCache<K, V>; CACHE_SHARDS],
}

/// The sharded audit-path cache the status server's hot path reads.
pub type ShardedProofCache = ShardedEpochCache<SerialNumber, RevocationProof>;

impl<K: Eq + Hash, V: Clone> Default for ShardedEpochCache<K, V> {
    fn default() -> Self {
        ShardedEpochCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl<K: Eq + Hash, V: Clone> ShardedEpochCache<K, V> {
    /// Creates a cache bounded to `capacity` entries overall (each shard
    /// holds its rounded-up share).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(CACHE_SHARDS).max(1);
        ShardedEpochCache {
            shards: std::array::from_fn(|_| EpochKeyedCache::new(per_shard)),
        }
    }

    fn shard(&self, ca: &CaId, key: &K) -> &EpochKeyedCache<K, V> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut h = DefaultHasher::new();
        ca.hash(&mut h);
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// [`EpochKeyedCache::get_or_insert`], routed to the key's shard.
    pub fn get_or_insert(&self, ca: CaId, key: K, epoch: u64, make: impl FnOnce() -> V) -> V {
        self.shard(&ca, &key).get_or_insert(ca, key, epoch, make)
    }

    /// Drops every shard's entries for `ca`; returns the total removed.
    pub fn purge_ca(&self, ca: &CaId) -> usize {
        self.shards.iter().map(|s| s.purge_ca(ca)).sum()
    }

    /// Stored entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EpochKeyedCache::len).sum()
    }

    /// `true` when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(EpochKeyedCache::is_empty)
    }

    /// Counters summed across shards.
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, s| {
            let st = s.stats();
            CacheStats {
                hits: acc.hits + st.hits,
                misses: acc.misses + st.misses,
                evictions: acc.evictions + st.evictions,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_dictionary::proof::PresenceProof;
    use ritm_dictionary::tree::Leaf;

    fn proof(tag: u32) -> RevocationProof {
        RevocationProof::Present(PresenceProof {
            leaf: Leaf::new(SerialNumber::from_u24(tag), tag as u64 + 1),
            index: 0,
            path: vec![],
        })
    }

    fn key(v: u32) -> (CaId, SerialNumber) {
        (CaId::from_name("C"), SerialNumber::from_u24(v))
    }

    #[test]
    fn second_lookup_hits_within_epoch() {
        let cache = ProofCache::new(8);
        let (ca, s) = key(1);
        let a = cache.get_or_insert(ca, s, 5, || proof(1));
        let b = cache.get_or_insert(ca, s, 5, || panic!("must be cached"));
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn epoch_change_invalidates() {
        let cache = ProofCache::new(8);
        let (ca, s) = key(1);
        cache.get_or_insert(ca, s, 5, || proof(1));
        let regenerated = cache.get_or_insert(ca, s, 6, || proof(2));
        assert_eq!(
            regenerated,
            proof(2),
            "stale-epoch entry must not be served"
        );
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn full_cache_never_evicts_other_cas_live_entries() {
        let cache = ProofCache::new(2);
        let ca_a = CaId::from_name("A");
        let ca_b = CaId::from_name("B");
        let s = SerialNumber::from_u24(1);
        cache.get_or_insert(ca_a, s, 7, || proof(1));
        // CA B's mirror runs its own, lower epoch counter.
        cache.get_or_insert(ca_b, s, 3, || proof(2));
        // Cache full; a miss for CA A at a newer epoch evicts only A's
        // stale entry, never B's live epoch-3 one.
        cache.get_or_insert(ca_a, SerialNumber::from_u24(2), 8, || proof(3));
        let hit = cache.get_or_insert(ca_b, s, 3, || panic!("B must stay cached"));
        assert_eq!(hit, proof(2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_evicts_stale_epochs_only() {
        let cache = ProofCache::new(2);
        cache.get_or_insert(key(1).0, key(1).1, 1, || proof(1));
        cache.get_or_insert(key(2).0, key(2).1, 1, || proof(2));
        // Full of epoch-1 entries; an epoch-2 insert purges them.
        cache.get_or_insert(key(3).0, key(3).1, 2, || proof(3));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 2);
        // Full of *current* entries: lookups still work, hot set kept.
        cache.get_or_insert(key(4).0, key(4).1, 2, || proof(4));
        cache.get_or_insert(key(5).0, key(5).1, 2, || proof(5));
        assert!(cache.len() <= 2);
        let hit = cache.get_or_insert(key(3).0, key(3).1, 2, || panic!("3 stays hot"));
        assert_eq!(hit, proof(3));
    }

    #[test]
    fn lagging_reader_cannot_displace_newer_entries() {
        let cache = ProofCache::new(2);
        let (ca, s) = key(1);
        cache.get_or_insert(ca, s, 6, || proof(6));
        // A reader still on the epoch-5 snapshot gets its own proof, but
        // must not overwrite the stored epoch-6 entry...
        let got = cache.get_or_insert(ca, s, 5, || proof(5));
        assert_eq!(got, proof(5));
        let hit = cache.get_or_insert(ca, s, 6, || panic!("epoch-6 entry must survive"));
        assert_eq!(hit, proof(6));
        // ...and with the cache full, an older-epoch miss must not evict
        // the newer-epoch working set either.
        cache.get_or_insert(ca, SerialNumber::from_u24(2), 6, || proof(2));
        let got = cache.get_or_insert(ca, SerialNumber::from_u24(3), 5, || proof(3));
        assert_eq!(got, proof(3));
        let hit = cache.get_or_insert(ca, s, 6, || panic!("still cached after full insert"));
        assert_eq!(hit, proof(6));
    }

    #[test]
    fn dead_entries_of_other_cas_are_reclaimed() {
        // Regression: the full-cache sweep only reclaimed the *missing*
        // CA's stale entries, so once a multi-CA RA hit capacity, another
        // CA's dead entries sat forever and starved everyone else's
        // caching.
        let cache = ProofCache::new(2);
        let ca_a = CaId::from_name("A");
        let ca_b = CaId::from_name("B");
        let s1 = SerialNumber::from_u24(1);
        let s2 = SerialNumber::from_u24(2);

        // B fills the cache at epoch 1...
        cache.get_or_insert(ca_b, s1, 1, || proof(1));
        cache.get_or_insert(ca_b, s2, 1, || proof(2));
        // ...then B's mirror advances: its epoch-1 entries are now dead.
        // (The replaced s1 entry records the new frontier; s2 stays dead.)
        cache.get_or_insert(ca_b, s1, 2, || proof(3));
        assert_eq!(cache.len(), 2, "cache full of B's entries");

        // A misses with the cache full: the sweep must reclaim B's dead
        // epoch-1 entry — stale for B's *own* frontier — and cache A.
        cache.get_or_insert(ca_a, s1, 7, || proof(4));
        let hit = cache.get_or_insert(ca_a, s1, 7, || panic!("A must be cached"));
        assert_eq!(hit, proof(4));
        // B's live epoch-2 entry survived the sweep.
        let hit = cache.get_or_insert(ca_b, s1, 2, || panic!("B's live entry must survive"));
        assert_eq!(hit, proof(3));
        assert_eq!(cache.stats().evictions, 1);

        // With only live entries left, a further miss still serves
        // uncached instead of evicting anyone's hot set.
        cache.get_or_insert(ca_b, s2, 2, || proof(6));
        let again = cache.get_or_insert(ca_a, s1, 7, || panic!("A stays hot"));
        assert_eq!(again, proof(4));
    }

    #[test]
    fn purge_ca_clears_only_that_ca() {
        let cache = ProofCache::new(8);
        let ca_a = CaId::from_name("A");
        let ca_b = CaId::from_name("B");
        let s = SerialNumber::from_u24(1);
        cache.get_or_insert(ca_a, s, 50, || proof(1));
        cache.get_or_insert(ca_b, s, 3, || proof(2));
        assert_eq!(cache.purge_ca(&ca_a), 1);
        assert_eq!(cache.len(), 1);
        // A re-installed mirror for A restarts its epoch counter near 0;
        // with the purge, low-epoch entries cache normally again.
        let got = cache.get_or_insert(ca_a, s, 1, || proof(3));
        assert_eq!(got, proof(3));
        let hit = cache.get_or_insert(ca_a, s, 1, || panic!("cached after purge"));
        assert_eq!(hit, proof(3));
    }

    #[test]
    fn sharded_cache_behaves_like_one_cache() {
        let cache = ShardedProofCache::new(64);
        let ca = CaId::from_name("Shard");
        // Hits and misses behave per-key exactly like the flat cache,
        // whichever shard each key lands in.
        for v in 0..16u32 {
            let s = SerialNumber::from_u24(v);
            let a = cache.get_or_insert(ca, s, 1, || proof(v));
            let b = cache.get_or_insert(ca, s, 1, || panic!("must be cached"));
            assert_eq!(a, b);
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (16, 16));
        assert_eq!(cache.len(), 16);
        // An epoch bump invalidates across shards...
        let s = SerialNumber::from_u24(3);
        assert_eq!(cache.get_or_insert(ca, s, 2, || proof(99)), proof(99));
        // ...and purge_ca sums removals over every shard.
        assert_eq!(cache.purge_ca(&ca), 16);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_share_one_cache() {
        let cache = ProofCache::new(64);
        let (ca, s) = key(9);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for _ in 0..100 {
                        let got = cache.get_or_insert(ca, s, 1, || proof(9));
                        assert_eq!(got, proof(9));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.hits >= 792, "at most one miss per thread: {stats:?}");
    }
}
