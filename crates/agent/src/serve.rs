//! Lock-free status serving from published dictionary snapshots.
//!
//! A production RA splits into one writer (applying issuance batches and
//! freshness refreshes to its mirrors) and many readers (handshake flows
//! needing revocation statuses *now*). [`StatusServer`] is the read side:
//! it holds one [`SnapshotCell`] per mirrored CA plus the shared
//! epoch-keyed [`ShardedProofCache`], and builds complete status
//! payloads from
//! `&self` — so an `Arc<StatusServer>` can be handed to any number of
//! threads while the owning [`crate::ra::RevocationAgent`] keeps mutating
//! its mirrors. Writers publish a fresh [`DictionarySnapshot`] after every
//! mirror change (the RA's `mirror_mut` guard does this automatically);
//! readers pick it up on their next load without ever blocking on the
//! update itself.

use crate::cache::{CacheStats, EpochKeyedCache, ShardedEpochCache, ShardedProofCache};
use crate::ra::StatusPayload;
use parking_lot::RwLock;
use ritm_dictionary::{
    CaId, DictionarySnapshot, MultiProof, MultiRevocationStatus, RevocationStatus, SerialNumber,
    SnapshotCell,
};
use ritm_proto::RitmResponse;
use std::collections::HashMap;
use std::sync::Arc;

/// Bound on memoized chain multiproofs (distinct hot chains are few —
/// bounded by the server-certificate working set, not by flows).
const MULTI_CACHE_CAPACITY: usize = 1_024;

/// Cache key for an encoded multi-status body: the exact chain asked
/// for, plus whether compression was requested (the two produce
/// different bytes).
type EncodedMultiKey = (Vec<(CaId, SerialNumber)>, bool);

/// The shared, `&self`-only proof-serving surface of an RA.
#[derive(Debug)]
pub struct StatusServer {
    cells: RwLock<HashMap<CaId, Arc<SnapshotCell>>>,
    cache: ShardedProofCache,
    /// Memo for compressed chain runs, same epoch-keyed policy as the
    /// single-serial cache; valid while the CA's epoch is unchanged.
    multi_cache: EpochKeyedCache<Vec<SerialNumber>, MultiProof>,
    /// Fully encoded `GetStatus` response bodies (`kind ‖ fields`),
    /// keyed by the cell's publication *generation* — not the epoch,
    /// because a freshness-only refresh changes the served bytes without
    /// advancing the epoch. A hit skips proof building, payload
    /// assembly, and encoding in one lookup.
    encoded: ShardedEpochCache<SerialNumber, Arc<[u8]>>,
    /// Encoded `GetMultiStatus` bodies for single-CA chains, keyed by
    /// `(chain, compress)` under the same generation policy. Multi-CA
    /// chains are never cached here: the key's generation belongs to one
    /// cell, and another CA's republish would not invalidate it.
    encoded_multi: EpochKeyedCache<EncodedMultiKey, Arc<[u8]>>,
}

impl Default for StatusServer {
    fn default() -> Self {
        StatusServer::new()
    }
}

impl StatusServer {
    /// Creates an empty server (no CAs published yet).
    pub fn new() -> Self {
        StatusServer {
            cells: RwLock::new(HashMap::new()),
            cache: ShardedProofCache::default(),
            multi_cache: EpochKeyedCache::new(MULTI_CACHE_CAPACITY),
            encoded: ShardedEpochCache::default(),
            encoded_multi: EpochKeyedCache::new(MULTI_CACHE_CAPACITY),
        }
    }

    /// Publishes `snapshot` as the current view of its CA (RCU swap; the
    /// cell is created on first publish). Called by the writer side after
    /// every mirror mutation. Returns `false` when the cell rejected the
    /// snapshot as older than the one it already serves (see
    /// [`SnapshotCell::publish`]) — readers keep the newer view.
    #[must_use = "a rejected (stale) publish leaves readers on the newer snapshot"]
    pub fn publish(&self, snapshot: DictionarySnapshot) -> bool {
        let ca = snapshot.ca();
        if let Some(cell) = self.cells.read().get(&ca) {
            return cell.publish(snapshot);
        }
        let mut cells = self.cells.write();
        match cells.get(&ca) {
            Some(cell) => cell.publish(snapshot),
            None => {
                cells.insert(ca, Arc::new(SnapshotCell::new(snapshot)));
                true
            }
        }
    }

    /// Republishes `ca`'s snapshot with a new signed root and freshness
    /// statement but the **same epoch and tree** (freshness-only refresh
    /// or root rotation): an `Arc` clone of the frozen tree instead of an
    /// O(n) copy. Returns `false` when the CA has no published snapshot
    /// yet, or when the cell rejected the republish as stale (a newer
    /// content snapshot landed between load and publish); the caller
    /// should fall back to a full [`StatusServer::publish`].
    pub fn publish_refresh(
        &self,
        ca: &CaId,
        signed_root: ritm_dictionary::SignedRoot,
        freshness: ritm_dictionary::FreshnessStatement,
    ) -> bool {
        let Some(cell) = self.cell(ca) else {
            return false;
        };
        let current = cell.load();
        cell.publish(current.with_root_and_freshness(signed_root, freshness))
    }

    /// Drops a CA's publication slot and purges its cached proofs. Called
    /// when the RA stops mirroring the CA; also run before re-installing a
    /// fresh mirror, whose restarted epoch counter would otherwise be
    /// blocked from caching by leftover higher-epoch entries.
    pub fn retire(&self, ca: &CaId) {
        self.cells.write().remove(ca);
        self.cache.purge_ca(ca);
        self.multi_cache.purge_ca(ca);
        self.encoded.purge_ca(ca);
        self.encoded_multi.purge_ca(ca);
    }

    /// The current snapshot for `ca`, if mirrored. Cheap (`Arc` clone);
    /// hold the cell via [`StatusServer::cell`] instead when polling in a
    /// tight loop.
    pub fn snapshot(&self, ca: &CaId) -> Option<Arc<DictionarySnapshot>> {
        self.cells.read().get(ca).map(|c| c.load())
    }

    /// The publication cell for `ca`, letting hot reader loops reload
    /// without the map lookup.
    pub fn cell(&self, ca: &CaId) -> Option<Arc<SnapshotCell>> {
        self.cells.read().get(ca).cloned()
    }

    /// CAs currently published.
    pub fn ca_count(&self) -> usize {
        self.cells.read().len()
    }

    /// Proof-cache counter snapshot (single-serial audit paths).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Counter snapshot of the compressed chain-multiproof memo.
    pub fn multi_cache_stats(&self) -> CacheStats {
        self.multi_cache.stats()
    }

    /// Counter snapshot of the encoded single-status response cache.
    pub fn encoded_cache_stats(&self) -> CacheStats {
        self.encoded.stats()
    }

    /// Counter snapshot of the encoded chain-status response cache.
    pub fn encoded_multi_cache_stats(&self) -> CacheStats {
        self.encoded_multi.stats()
    }

    /// Builds one full status for `serial`, going through the epoch-keyed
    /// proof cache. The signed root and freshness come from the same
    /// snapshot as the proof's epoch, so the composed status always
    /// verifies against its own root.
    pub fn status_for(&self, ca: &CaId, serial: &SerialNumber) -> Option<RevocationStatus> {
        let snap = self.snapshot(ca)?;
        Some(self.status_from(&snap, serial))
    }

    /// [`StatusServer::status_for`] against an already-loaded snapshot
    /// (hot chains load one snapshot per CA run).
    fn status_from(&self, snap: &DictionarySnapshot, serial: &SerialNumber) -> RevocationStatus {
        let proof = self
            .cache
            .get_or_insert(snap.ca(), *serial, snap.epoch(), || snap.proof(serial));
        RevocationStatus {
            proof,
            signed_root: *snap.signed_root(),
            freshness: *snap.freshness(),
        }
    }

    /// Builds one compressed status for a same-CA serial run, memoized per
    /// `(CA, serials, epoch)` — hot chains across concurrent flows reuse
    /// the multiproof exactly like single serials reuse audit paths. Only
    /// the proof is cached; the signed root and freshness always come from
    /// the given snapshot, so a freshness-only refresh (same epoch) is
    /// picked up immediately.
    fn multi_status_from(
        &self,
        snap: &DictionarySnapshot,
        serials: Vec<SerialNumber>,
    ) -> MultiRevocationStatus {
        let proof =
            self.multi_cache
                .get_or_insert(snap.ca(), serials.clone(), snap.epoch(), || {
                    snap.multi_proof(&serials)
                });
        MultiRevocationStatus {
            serials,
            proof,
            signed_root: *snap.signed_root(),
            freshness: *snap.freshness(),
        }
    }

    /// Builds the status payload for a chain of `(issuer, serial)` pairs.
    /// Returns `None` when any named CA is not mirrored (the RA then stays
    /// silent rather than injecting garbage).
    ///
    /// The **leaf (position 0) is always an individual status**, so
    /// `StatusPayload::primary_root` — what the §VIII multi-RA freshness
    /// comparison keys on — is always the leaf CA's root regardless of
    /// compression. With `compress` set, consecutive same-CA runs of two
    /// or more certificates *after the leaf* are proven with one
    /// compressed [`MultiRevocationStatus`] (one multiproof + one
    /// root + one freshness statement) instead of independent statuses —
    /// the Fig. 7 communication-overhead optimization. Single certificates
    /// and CA-alternating chains fall back to individual statuses, keeping
    /// the wire format identical to the uncompressed path for the common
    /// leaf-only case.
    pub fn build_status(
        &self,
        certs: &[(CaId, SerialNumber)],
        compress: bool,
    ) -> Option<StatusPayload> {
        if certs.is_empty() {
            return None;
        }
        let mut statuses = Vec::with_capacity(certs.len());
        let mut multi: Vec<MultiRevocationStatus> = Vec::new();
        // Leaf first, uncompressed: primary_root() must name the leaf CA.
        statuses.push(self.status_for(&certs[0].0, &certs[0].1)?);
        let mut i = 1;
        while i < certs.len() {
            let (ca, _) = certs[i];
            let mut run = i + 1;
            while run < certs.len() && certs[run].0 == ca {
                run += 1;
            }
            // One snapshot load per CA run: every status of the run
            // composes from the same epoch.
            let snap = self.snapshot(&ca)?;
            if compress && run - i >= 2 {
                let serials: Vec<SerialNumber> = certs[i..run].iter().map(|(_, s)| *s).collect();
                multi.push(self.multi_status_from(&snap, serials));
            } else {
                for (_, serial) in &certs[i..run] {
                    statuses.push(self.status_from(&snap, serial));
                }
            }
            i = run;
        }
        Some(StatusPayload { statuses, multi })
    }

    /// The fully encoded `GetStatus` response body for `(ca, serial)` —
    /// the version-independent `kind ‖ fields` tail, shareable across
    /// every connection and both envelope versions. `None` when `ca` is
    /// not mirrored (the service then answers its usual typed error).
    ///
    /// The generation is read **before** the snapshot is loaded: a
    /// racing publish between the two can only make the cached bytes
    /// *newer* than the generation key (the next reader at the advanced
    /// generation misses and re-encodes), never leave stale bytes served
    /// under a current key.
    pub fn encoded_status(&self, ca: &CaId, serial: &SerialNumber) -> Option<Arc<[u8]>> {
        let cell = self.cell(ca)?;
        let generation = cell.generation();
        let snap = cell.load();
        Some(self.encoded.get_or_insert(*ca, *serial, generation, || {
            RitmResponse::Status(StatusPayload::single(vec![self.status_from(&snap, serial)]))
                .to_shared_body()
        }))
    }

    /// The fully encoded `GetMultiStatus` response body for a single-CA
    /// `chain` (leaf individual, the rest compressed per `compress` —
    /// byte-identical to [`StatusServer::build_status`]'s payload).
    /// `None` for empty chains, chains spanning more than one CA (their
    /// bytes cannot be invalidated by one cell's generation), or an
    /// unmirrored CA.
    pub fn encoded_multi_status(
        &self,
        chain: &[(CaId, SerialNumber)],
        compress: bool,
    ) -> Option<Arc<[u8]>> {
        let (first_ca, _) = chain.first()?;
        if chain.iter().any(|(ca, _)| ca != first_ca) {
            return None;
        }
        let cell = self.cell(first_ca)?;
        let generation = cell.generation();
        let snap = cell.load();
        Some(self.encoded_multi.get_or_insert(
            *first_ca,
            (chain.to_vec(), compress),
            generation,
            || {
                RitmResponse::Status(self.single_ca_payload(&snap, chain, compress))
                    .to_shared_body()
            },
        ))
    }

    /// [`StatusServer::build_status`] specialized to a one-CA chain over
    /// one already-loaded snapshot: the leaf stays individual; the rest
    /// of the chain is one compressed run (when `compress` and it has ≥2
    /// certificates) or individual statuses, all composed from the same
    /// snapshot.
    fn single_ca_payload(
        &self,
        snap: &DictionarySnapshot,
        chain: &[(CaId, SerialNumber)],
        compress: bool,
    ) -> StatusPayload {
        let mut statuses = Vec::with_capacity(chain.len());
        let mut multi = Vec::new();
        statuses.push(self.status_from(snap, &chain[0].1));
        let rest = &chain[1..];
        if compress && rest.len() >= 2 {
            let serials: Vec<SerialNumber> = rest.iter().map(|(_, s)| *s).collect();
            multi.push(self.multi_status_from(snap, serials));
        } else {
            for (_, serial) in rest {
                statuses.push(self.status_from(snap, serial));
            }
        }
        StatusPayload { statuses, multi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaDictionary, MirrorDictionary};

    const T0: u64 = 1_000_000;

    fn setup(n: u32) -> (CaDictionary, MirrorDictionary) {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ca = CaDictionary::new(
            CaId::from_name("ServeCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        m.set_delta(10);
        let serials: Vec<SerialNumber> = (0..n).map(|i| SerialNumber::from_u24(i * 2)).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        m.apply_issuance(&iss, T0 + 1).unwrap();
        (ca, m)
    }

    #[test]
    fn serves_statuses_through_the_cache() {
        let (ca, m) = setup(20);
        let server = StatusServer::new();
        assert!(server.publish(m.snapshot()));
        let serial = SerialNumber::from_u24(4);
        let first = server.status_for(&ca.ca(), &serial).unwrap();
        let second = server.status_for(&ca.ca(), &serial).unwrap();
        assert_eq!(first, second);
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(first
            .validate(&serial, &ca.verifying_key(), 10, T0 + 2)
            .unwrap()
            .is_revoked());
    }

    #[test]
    fn compressed_chain_keeps_leaf_individual() {
        let (ca, m) = setup(50);
        let server = StatusServer::new();
        assert!(server.publish(m.snapshot()));
        let chain: Vec<(CaId, SerialNumber)> = [1u32, 21, 41]
            .iter()
            .map(|&v| (ca.ca(), SerialNumber::from_u24(v)))
            .collect();
        let payload = server.build_status(&chain, true).unwrap();
        // Leaf stays individual (primary_root = leaf CA's root); the rest
        // of the same-CA run compresses into one entry.
        assert_eq!(payload.statuses.len(), 1);
        assert_eq!(payload.multi.len(), 1);
        assert_eq!(payload.multi[0].serials.len(), 2);
        assert_eq!(
            payload.primary_root().unwrap(),
            &payload.statuses[0].signed_root
        );
        let statuses = payload.multi[0]
            .validate(&ca.verifying_key(), 10, T0 + 2)
            .unwrap();
        assert!(statuses.iter().all(|s| !s.is_revoked()));

        // A second build reuses the memoized multiproof (same epoch) and
        // must compose an identical payload.
        let again = server.build_status(&chain, true).unwrap();
        assert_eq!(again, payload);

        // Uncompressed fallback keeps the classic shape.
        let plain = server.build_status(&chain, false).unwrap();
        assert_eq!(plain.statuses.len(), 3);
        assert!(plain.multi.is_empty());
    }

    #[test]
    fn encoded_statuses_cache_by_generation_and_refresh_invalidates() {
        let (ca, m) = setup(20);
        let server = StatusServer::new();
        assert!(server.publish(m.snapshot()));
        let serial = SerialNumber::from_u24(4);
        let first = server.encoded_status(&ca.ca(), &serial).unwrap();
        let second = server.encoded_status(&ca.ca(), &serial).unwrap();
        // Same generation: the very same shared allocation is served.
        assert!(Arc::ptr_eq(&first, &second));
        let stats = server.encoded_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The cached bytes are exactly the response the build path
        // would encode.
        let built = RitmResponse::Status(StatusPayload::single(vec![server
            .status_for(&ca.ca(), &serial)
            .unwrap()]));
        assert_eq!(&first[..], &built.to_shared_body()[..]);

        // A freshness-only refresh changes the served bytes without
        // advancing the epoch — the generation key must still
        // invalidate the encoded entry.
        let snap = server.snapshot(&ca.ca()).unwrap();
        let fresher = ritm_dictionary::FreshnessStatement::new(
            ritm_crypto::digest::Digest20::hash(b"next period preimage"),
        );
        assert!(server.publish_refresh(&ca.ca(), *snap.signed_root(), fresher));
        let after = server.encoded_status(&ca.ca(), &serial).unwrap();
        assert_ne!(&first[..], &after[..], "refresh must re-encode");
    }

    #[test]
    fn encoded_multi_status_matches_build_status_and_skips_multi_ca() {
        let (ca, m) = setup(50);
        let server = StatusServer::new();
        assert!(server.publish(m.snapshot()));
        let chain: Vec<(CaId, SerialNumber)> = [1u32, 21, 41]
            .iter()
            .map(|&v| (ca.ca(), SerialNumber::from_u24(v)))
            .collect();
        let encoded = server.encoded_multi_status(&chain, true).unwrap();
        let built = RitmResponse::Status(server.build_status(&chain, true).unwrap());
        assert_eq!(&encoded[..], &built.to_shared_body()[..]);
        // Uncompressed variant caches under its own key.
        let plain = server.encoded_multi_status(&chain, false).unwrap();
        let built_plain = RitmResponse::Status(server.build_status(&chain, false).unwrap());
        assert_eq!(&plain[..], &built_plain.to_shared_body()[..]);
        // A chain spanning two CAs is never cached: one cell's
        // generation could not invalidate the other CA's bytes.
        let mut mixed = chain.clone();
        mixed.push((CaId::from_name("OtherCA"), SerialNumber::from_u24(1)));
        assert!(server.encoded_multi_status(&mixed, true).is_none());
        assert!(server.encoded_multi_status(&[], true).is_none());
    }

    #[test]
    fn unknown_ca_stays_silent() {
        let (_, m) = setup(4);
        let server = StatusServer::new();
        assert!(server.publish(m.snapshot()));
        let other = CaId::from_name("NotMirrored");
        assert!(server
            .build_status(&[(other, SerialNumber::from_u24(1))], true)
            .is_none());
    }
}
