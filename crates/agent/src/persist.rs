//! Crash-durable RA mirror snapshots.
//!
//! The RA's mirrors live in memory; a crashed RA would otherwise have to
//! re-download every CA's dictionary from serial 1. This module persists
//! the minimum that [`MirrorDictionary::restore`] needs — the serials in
//! issuance order plus the last accepted signed root — so a restarted RA
//! resumes from its snapshot and closes only the gap since the crash via
//! paged catch-up ([`crate::sync`]).
//!
//! ## Snapshot framing
//!
//! ```text
//! "RAS1" ‖ body ‖ u32 BE CRC-32 of body
//! body = ca (8 bytes) ‖ u64 delta ‖ u32 count ‖ count × vec8 serial
//!        ‖ signed root (SIGNED_ROOT_LEN bytes)
//! ```
//!
//! The CRC catches torn writes and bit rot; *integrity against tampering*
//! comes from [`MirrorDictionary::restore`] itself, which rebuilds the tree
//! and rejects any snapshot that does not reproduce the CA-signed root.
//! The CA's verifying key is deliberately **not** part of the snapshot —
//! [`RevocationAgent::resume_ca`] takes it from the caller's pinned
//! configuration, so a forged snapshot file can never substitute a key.

use crate::ra::RevocationAgent;
use ritm_crypto::crc32::crc32;
use ritm_crypto::ed25519::VerifyingKey;
use ritm_crypto::wire::{DecodeError, Reader, Writer};
use ritm_dictionary::root::SIGNED_ROOT_LEN;
use ritm_dictionary::{CaId, MirrorDictionary, SerialNumber, SignedRoot, UpdateError};

/// Snapshot file magic (`"RAS1"`: Revocation Agent Snapshot, version 1).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"RAS1";

/// The persisted state of one mirror — everything
/// [`MirrorDictionary::restore`] needs except the CA key, which stays with
/// the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MirrorSnapshot {
    /// The CA the mirror tracks.
    pub ca: CaId,
    /// Dissemination period Δ the mirror ran with.
    pub delta: u64,
    /// Every mirrored serial, in issuance order (numbers `1..=count`).
    pub serials: Vec<SerialNumber>,
    /// The last signed root the mirror accepted.
    pub signed_root: SignedRoot,
}

impl MirrorSnapshot {
    /// Captures a mirror's persistent state.
    pub fn capture(mirror: &MirrorDictionary) -> Self {
        MirrorSnapshot {
            ca: mirror.ca(),
            delta: mirror.delta(),
            serials: mirror.serials_in_issuance_order(),
            signed_root: *mirror.signed_root(),
        }
    }

    /// Serializes the snapshot (magic ‖ body ‖ CRC-32).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Writer::with_capacity(8 + 8 + 4 + self.serials.len() * 21 + SIGNED_ROOT_LEN);
        body.bytes(&self.ca.0);
        body.u64(self.delta);
        body.u32(self.serials.len() as u32);
        for s in &self.serials {
            body.vec8(s.as_bytes());
        }
        body.bytes(&self.signed_root.to_bytes());
        let body = body.into_bytes();
        let mut out = Vec::with_capacity(4 + body.len() + 4);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_be_bytes());
        out
    }

    /// Parses a snapshot, verifying the magic and the body CRC.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on a wrong magic, a CRC mismatch (torn or rotted
    /// file), a malformed body, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.len() < 8 || bytes[..4] != SNAPSHOT_MAGIC {
            return Err(DecodeError::new("snapshot magic", 0));
        }
        let body = &bytes[4..bytes.len() - 4];
        let crc = u32::from_be_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if crc32(body) != crc {
            return Err(DecodeError::new("snapshot crc", bytes.len() - 4));
        }
        let mut r = Reader::new(body);
        let ca = CaId(r.array("snapshot ca")?);
        let delta = r.u64("snapshot delta")?;
        let count = r.u32("snapshot serial count")? as usize;
        // Each serial costs ≥ 2 wire bytes; a forged count cannot force an
        // oversized allocation past what the buffer itself already holds.
        r.check_count(count, 2, "snapshot serial count")?;
        let mut serials = Vec::with_capacity(count);
        for _ in 0..count {
            let raw = r.vec8("snapshot serial")?;
            let serial = SerialNumber::new(raw)
                .map_err(|_| DecodeError::new("snapshot serial bytes", r.position()))?;
            serials.push(serial);
        }
        let root_bytes = r.slice(SIGNED_ROOT_LEN, "snapshot signed root")?;
        let signed_root = SignedRoot::from_bytes(root_bytes)?;
        r.finish("snapshot trailing bytes")?;
        Ok(MirrorSnapshot {
            ca,
            delta,
            serials,
            signed_root,
        })
    }

    /// Rebuilds the mirror, verifying the rebuilt tree against the signed
    /// root under the caller-pinned `ca_key`.
    ///
    /// # Errors
    ///
    /// See [`MirrorDictionary::restore`] — a tampered snapshot surfaces as
    /// [`UpdateError::RootMismatch`] or [`UpdateError::BadSignature`].
    pub fn restore(&self, ca_key: VerifyingKey) -> Result<MirrorDictionary, UpdateError> {
        MirrorDictionary::restore(self.ca, ca_key, self.delta, &self.serials, self.signed_root)
    }
}

/// Why [`RevocationAgent::resume_ca`] rejected a snapshot. Either way the
/// caller's fallback is the same: bootstrap fresh via
/// [`RevocationAgent::follow_ca`] and let paged catch-up close the full gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot bytes did not parse (torn file, CRC mismatch, garbage).
    Decode(DecodeError),
    /// The snapshot parsed but did not reproduce a validly-signed root.
    Restore(UpdateError),
}

impl core::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResumeError::Decode(e) => write!(f, "snapshot decode failed: {e}"),
            ResumeError::Restore(e) => write!(f, "snapshot restore rejected: {e:?}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl RevocationAgent<MirrorDictionary> {
    /// Serializes one mirror's persistent state, or `None` if the CA is not
    /// followed. Write the bytes wherever durability lives (a file, a KV
    /// store); feed them back through [`RevocationAgent::resume_ca`] after
    /// a restart.
    pub fn snapshot_mirror(&self, ca: &CaId) -> Option<Vec<u8>> {
        self.mirror(ca)
            .map(|m| MirrorSnapshot::capture(m).to_bytes())
    }

    /// Resumes mirroring a CA from snapshot bytes: decodes, rebuilds, and
    /// verifies the tree against the snapshot's signed root under the
    /// caller-pinned `key`, then installs the mirror (with this RA's
    /// configured Δ) and publishes its snapshot for readers. Returns the
    /// resumed [`CaId`].
    ///
    /// # Errors
    ///
    /// [`ResumeError`] if the bytes are corrupt or fail verification; the
    /// agent is left untouched, so the caller can fall back to a fresh
    /// [`RevocationAgent::follow_ca`] bootstrap.
    pub fn resume_ca(&mut self, key: VerifyingKey, bytes: &[u8]) -> Result<CaId, ResumeError> {
        let snapshot = MirrorSnapshot::from_bytes(bytes).map_err(ResumeError::Decode)?;
        let mut mirror = snapshot.restore(key).map_err(ResumeError::Restore)?;
        mirror.set_delta(self.config.delta);
        let ca = snapshot.ca;
        self.install_mirror(ca, mirror);
        Ok(ca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ra::RaConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_ca::CertificationAuthority;
    use ritm_cdn::network::Cdn;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_net::time::SimDuration;

    const T0: u64 = 1_000_000;

    struct World {
        ca: CertificationAuthority,
        cdn: Cdn,
        ra: RevocationAgent,
        rng: StdRng,
    }

    fn synced_world() -> World {
        let mut rng = StdRng::seed_from_u64(77);
        let mut cdn = Cdn::new(SimDuration::from_secs(5));
        let mut ca = CertificationAuthority::new(
            "PersistCA",
            SigningKey::from_seed([3u8; 32]),
            10,
            64,
            &mut cdn,
            &mut rng,
            T0,
        );
        let mut ra = RevocationAgent::new(RaConfig::default());
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        let key = SigningKey::from_seed([7u8; 32]).verifying_key();
        for batch in 0..4u64 {
            let serials: Vec<SerialNumber> = (0..5)
                .map(|i| {
                    ca.issue_certificate(&format!("b{batch}s{i}.com"), key, 0, u64::MAX)
                        .serial
                })
                .collect();
            let now = T0 + 1 + batch;
            let iss = ca
                .revoke(&serials, &mut cdn, &mut rng, now)
                .unwrap()
                .unwrap();
            let id = ca.id();
            ra.mirror_mut(&id)
                .unwrap()
                .apply_issuance(&iss, now)
                .unwrap();
        }
        World { ca, cdn, ra, rng }
    }

    #[test]
    fn snapshot_resume_round_trips() {
        let w = synced_world();
        let id = w.ca.id();
        let bytes = w.ra.snapshot_mirror(&id).unwrap();

        let mut ra2 = RevocationAgent::new(RaConfig::default());
        let resumed = ra2.resume_ca(w.ca.verifying_key(), &bytes).unwrap();
        assert_eq!(resumed, id);
        let before = w.ra.mirror(&id).unwrap();
        let after = ra2.mirror(&id).unwrap();
        assert_eq!(after.len(), before.len());
        assert_eq!(after.signed_root(), before.signed_root());
        assert_eq!(
            after.serials_in_issuance_order(),
            before.serials_in_issuance_order()
        );
    }

    #[test]
    fn unknown_ca_yields_no_snapshot() {
        let w = synced_world();
        assert!(w.ra.snapshot_mirror(&CaId::from_name("Nobody")).is_none());
    }

    #[test]
    fn every_corrupt_byte_is_rejected_not_misparsed() {
        let w = synced_world();
        let bytes = w.ra.snapshot_mirror(&w.ca.id()).unwrap();
        // Flipping any single byte must surface as an error — never a
        // silently different mirror. Most flips die at the CRC; flips in
        // the CRC field itself die against the body's checksum.
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x01;
            let mut ra2 = RevocationAgent::new(RaConfig::default());
            let err = ra2.resume_ca(w.ca.verifying_key(), &tampered);
            assert!(err.is_err(), "byte {i} accepted");
        }
    }

    #[test]
    fn internally_consistent_forgery_fails_root_verification() {
        let w = synced_world();
        let id = w.ca.id();
        let bytes = w.ra.snapshot_mirror(&id).unwrap();
        // An attacker who recomputes the CRC can forge a *parseable*
        // snapshot — swap one serial and re-frame. Restore must still
        // reject it: the rebuilt tree no longer matches the signed root.
        let mut snap = MirrorSnapshot::from_bytes(&bytes).unwrap();
        snap.serials[0] = SerialNumber::from_u24(0xDEAD77);
        let forged = snap.to_bytes();
        assert_eq!(
            MirrorSnapshot::from_bytes(&forged).unwrap(),
            snap,
            "forgery should parse cleanly"
        );
        let mut ra2 = RevocationAgent::new(RaConfig::default());
        assert_eq!(
            ra2.resume_ca(w.ca.verifying_key(), &forged),
            Err(ResumeError::Restore(UpdateError::RootMismatch))
        );
    }

    #[test]
    fn wrong_pinned_key_is_rejected() {
        let w = synced_world();
        let bytes = w.ra.snapshot_mirror(&w.ca.id()).unwrap();
        let other = SigningKey::from_seed([9u8; 32]).verifying_key();
        let mut ra2 = RevocationAgent::new(RaConfig::default());
        assert_eq!(
            ra2.resume_ca(other, &bytes),
            Err(ResumeError::Restore(UpdateError::BadSignature))
        );
    }

    #[test]
    fn resumed_mirror_serves_and_keeps_syncing() {
        let mut w = synced_world();
        let id = w.ca.id();
        let bytes = w.ra.snapshot_mirror(&id).unwrap();

        let mut ra2 = RevocationAgent::new(RaConfig::default());
        ra2.resume_ca(w.ca.verifying_key(), &bytes).unwrap();
        // The resumed mirror accepts the next issuance like a live one.
        let key = SigningKey::from_seed([7u8; 32]).verifying_key();
        let serial = w.ca.issue_certificate("fresh.com", key, 0, u64::MAX).serial;
        let now = T0 + 100;
        let iss =
            w.ca.revoke(&[serial], &mut w.cdn, &mut w.rng, now)
                .unwrap()
                .unwrap();
        ra2.mirror_mut(&id)
            .unwrap()
            .apply_issuance(&iss, now)
            .unwrap();
        assert_eq!(
            ra2.mirror(&id).unwrap().signed_root(),
            w.ca.dictionary().signed_root()
        );
    }
}
