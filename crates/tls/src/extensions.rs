//! TLS extensions, including the two RITM-specific ones.
//!
//! * [`RITM_EXTENSION_TYPE`] — sent by a client in its ClientHello to tell
//!   on-path RAs "I'm deploying RITM" (paper §III step 1, Fig. 3);
//! * [`RITM_CONFIRM_EXTENSION_TYPE`] — added to the ServerHello by a
//!   RITM-supporting TLS terminator in the close-to-server deployment model
//!   (§IV), which defeats downgrade attacks because the ServerHello is
//!   integrity-protected by TLS.

use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// Private-use extension number for the client's RITM request.
pub const RITM_EXTENSION_TYPE: u16 = 0xff2d;
/// Private-use extension number for the server's RITM deployment
/// confirmation.
pub const RITM_CONFIRM_EXTENSION_TYPE: u16 = 0xff2e;
/// Server Name Indication, carried for realism in workloads.
pub const SNI_EXTENSION_TYPE: u16 = 0x0000;

/// A raw TLS extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extension {
    /// IANA (or private-use) extension number.
    pub ext_type: u16,
    /// Opaque extension payload.
    pub data: Vec<u8>,
}

impl Extension {
    /// The client-side RITM request extension (empty payload).
    pub fn ritm_request() -> Self {
        Extension {
            ext_type: RITM_EXTENSION_TYPE,
            data: Vec::new(),
        }
    }

    /// The server-side RITM deployment confirmation (empty payload).
    pub fn ritm_confirmation() -> Self {
        Extension {
            ext_type: RITM_CONFIRM_EXTENSION_TYPE,
            data: Vec::new(),
        }
    }

    /// A Server Name Indication extension for `host`.
    pub fn sni(host: &str) -> Self {
        let mut w = Writer::new();
        w.vec16(host.as_bytes());
        Extension {
            ext_type: SNI_EXTENSION_TYPE,
            data: w.into_bytes(),
        }
    }

    /// Exact encoded size of an extensions block, computed without
    /// serializing (`u16` total length + each `type ‖ u16 len ‖ data`).
    pub fn block_len(extensions: &[Extension]) -> usize {
        2 + extensions.iter().map(|e| 4 + e.data.len()).sum::<usize>()
    }

    /// Encodes an extensions block (`u16` total length, then each
    /// `type ‖ u16 len ‖ data`).
    pub fn encode_block(extensions: &[Extension], w: &mut Writer) {
        let mut inner = Writer::new();
        for e in extensions {
            inner.u16(e.ext_type);
            inner.vec16(&e.data);
        }
        w.vec16(inner.as_bytes());
    }

    /// Decodes an extensions block.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation.
    pub fn decode_block(r: &mut Reader<'_>) -> Result<Vec<Extension>, DecodeError> {
        let block = r.vec16("extensions block")?;
        let mut br = Reader::new(block);
        let mut out = Vec::new();
        while !br.is_done() {
            let ext_type = br.u16("extension type")?;
            let data = br.vec16("extension data")?.to_vec();
            out.push(Extension { ext_type, data });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        let exts = vec![
            Extension::ritm_request(),
            Extension::sni("example.com"),
            Extension {
                ext_type: 0x000a,
                data: vec![0, 2, 0, 23],
            },
        ];
        let mut w = Writer::new();
        Extension::encode_block(&exts, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Extension::decode_block(&mut r).unwrap(), exts);
        assert!(r.is_done());
    }

    #[test]
    fn empty_block_round_trip() {
        let mut w = Writer::new();
        Extension::encode_block(&[], &mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0, 0]);
        let mut r = Reader::new(&bytes);
        assert!(Extension::decode_block(&mut r).unwrap().is_empty());
    }

    #[test]
    fn truncated_block_rejected() {
        let mut w = Writer::new();
        Extension::encode_block(&[Extension::ritm_request()], &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]);
        assert!(Extension::decode_block(&mut r).is_err());
    }

    #[test]
    fn ritm_types_are_distinct() {
        assert_ne!(RITM_EXTENSION_TYPE, RITM_CONFIRM_EXTENSION_TYPE);
        assert_ne!(Extension::ritm_request(), Extension::ritm_confirmation());
    }

    #[test]
    fn sni_contains_hostname() {
        let e = Extension::sni("host.example");
        assert!(e.data.windows(12).any(|w| w == b"host.example".as_slice()));
    }
}
