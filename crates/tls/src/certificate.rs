//! Certificates and chains.
//!
//! A compact substitute for X.509/DER (documented in DESIGN.md): the fields
//! RITM actually inspects — serial number, issuing CA, validity window,
//! subject, public key — in a deterministic binary encoding, signed with
//! Ed25519 by the issuer. RAs parse these straight off `Certificate`
//! handshake messages, exercising the same DPI code path as the paper's
//! Scapy-based prototype.

use ritm_crypto::ed25519::{Signature, SigningKey, VerifyingKey};
use ritm_crypto::wire::{DecodeError, Reader, Writer};
use ritm_dictionary::{CaId, SerialNumber};

/// A certificate binding a subject name and key, issued by a CA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Serial number unique within the issuing CA.
    pub serial: SerialNumber,
    /// Issuing CA.
    pub issuer: CaId,
    /// Subject (domain name, or CA name for intermediate/root certs).
    pub subject: String,
    /// Start of validity (Unix seconds).
    pub not_before: u64,
    /// End of validity (Unix seconds).
    pub not_after: u64,
    /// Subject's public key.
    pub public_key: VerifyingKey,
    /// `true` if the subject may itself issue certificates.
    pub is_ca: bool,
    /// Issuer's signature over the canonical to-be-signed encoding.
    pub signature: Signature,
}

/// Why a certificate or chain failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The signature does not verify under the supplied issuer key.
    BadSignature,
    /// The certificate is not yet valid or has expired.
    OutsideValidity {
        /// Time at which validation ran.
        now: u64,
    },
    /// The chain is empty.
    EmptyChain,
    /// A non-leaf link is not marked as a CA certificate.
    NotACa(String),
    /// Chain issuer/subject linkage is broken at the named subject.
    BrokenChain(String),
    /// No trust anchor matches the chain's root issuer.
    UntrustedRoot(CaId),
}

impl core::fmt::Display for CertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CertError::BadSignature => f.write_str("certificate signature invalid"),
            CertError::OutsideValidity { now } => {
                write!(f, "certificate outside its validity window at {now}")
            }
            CertError::EmptyChain => f.write_str("certificate chain is empty"),
            CertError::NotACa(s) => write!(f, "intermediate '{s}' is not a CA certificate"),
            CertError::BrokenChain(s) => write!(f, "chain linkage broken at '{s}'"),
            CertError::UntrustedRoot(ca) => write!(f, "no trust anchor for root issuer {ca}"),
        }
    }
}

impl std::error::Error for CertError {}

impl Certificate {
    fn tbs_bytes(
        serial: &SerialNumber,
        issuer: &CaId,
        subject: &str,
        not_before: u64,
        not_after: u64,
        public_key: &VerifyingKey,
        is_ca: bool,
    ) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(b"RITM-CERT-v1");
        w.vec8(serial.as_bytes());
        w.bytes(&issuer.0);
        w.vec16(subject.as_bytes());
        w.u64(not_before);
        w.u64(not_after);
        w.bytes(public_key.as_bytes());
        w.u8(is_ca as u8);
        w.into_bytes()
    }

    /// Issues a certificate signed by `issuer_key`.
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        issuer_key: &SigningKey,
        issuer: CaId,
        serial: SerialNumber,
        subject: &str,
        not_before: u64,
        not_after: u64,
        public_key: VerifyingKey,
        is_ca: bool,
    ) -> Self {
        let tbs = Self::tbs_bytes(
            &serial,
            &issuer,
            subject,
            not_before,
            not_after,
            &public_key,
            is_ca,
        );
        Certificate {
            serial,
            issuer,
            subject: subject.to_owned(),
            not_before,
            not_after,
            public_key,
            is_ca,
            signature: issuer_key.sign(&tbs),
        }
    }

    /// Verifies the issuer's signature and the validity window.
    ///
    /// # Errors
    ///
    /// [`CertError::BadSignature`] or [`CertError::OutsideValidity`].
    pub fn verify(&self, issuer_key: &VerifyingKey, now: u64) -> Result<(), CertError> {
        let tbs = Self::tbs_bytes(
            &self.serial,
            &self.issuer,
            &self.subject,
            self.not_before,
            self.not_after,
            &self.public_key,
            self.is_ca,
        );
        issuer_key
            .verify(&tbs, &self.signature)
            .map_err(|_| CertError::BadSignature)?;
        if now < self.not_before || now > self.not_after {
            return Err(CertError::OutsideValidity { now });
        }
        Ok(())
    }

    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        1 + self.serial.len() // vec8 serial
            + 8 // issuer
            + 2 + self.subject.len() // vec16 subject
            + 8 + 8 // validity window
            + self.public_key.as_bytes().len()
            + 1 // is_ca
            + self.signature.as_bytes().len()
    }

    /// Serializes the certificate (pre-sized to
    /// [`Certificate::encoded_len`]; never reallocates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        w.vec8(self.serial.as_bytes());
        w.bytes(&self.issuer.0);
        w.vec16(self.subject.as_bytes());
        w.u64(self.not_before);
        w.u64(self.not_after);
        w.bytes(self.public_key.as_bytes());
        w.u8(self.is_ca as u8);
        w.bytes(self.signature.as_bytes());
        w.into_bytes()
    }

    /// Parses a certificate from a reader.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let serial_raw = r.vec8("cert serial")?;
        let serial = SerialNumber::new(serial_raw)
            .map_err(|_| DecodeError::new("invalid cert serial", r.position()))?;
        let issuer = CaId(r.array("cert issuer")?);
        let subject_raw = r.vec16("cert subject")?;
        let subject = String::from_utf8(subject_raw.to_vec())
            .map_err(|_| DecodeError::new("cert subject not utf-8", r.position()))?;
        let not_before = r.u64("cert not_before")?;
        let not_after = r.u64("cert not_after")?;
        let public_key = VerifyingKey::from_bytes(r.array("cert public key")?);
        let is_ca = r.u8("cert is_ca")? != 0;
        let signature = Signature::from_bytes(r.array("cert signature")?);
        Ok(Certificate {
            serial,
            issuer,
            subject,
            not_before,
            not_after,
            public_key,
            is_ca,
            signature,
        })
    }

    /// Parses a certificate from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed or trailing input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let c = Self::decode(&mut r)?;
        r.finish("cert trailing bytes")?;
        Ok(c)
    }
}

/// A certificate chain, leaf first (TLS `Certificate` message order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateChain(pub Vec<Certificate>);

/// A set of pinned `(CaId, key)` trust anchors.
#[derive(Debug, Clone, Default)]
pub struct TrustAnchors {
    anchors: Vec<(CaId, VerifyingKey)>,
}

impl TrustAnchors {
    /// Creates an empty anchor set.
    pub fn new() -> Self {
        TrustAnchors::default()
    }

    /// Pins a CA key.
    pub fn add(&mut self, ca: CaId, key: VerifyingKey) {
        self.anchors.push((ca, key));
    }

    /// Looks up the key for `ca`.
    pub fn key_of(&self, ca: CaId) -> Option<&VerifyingKey> {
        self.anchors.iter().find(|(c, _)| *c == ca).map(|(_, k)| k)
    }
}

impl CertificateChain {
    /// The leaf (server) certificate.
    pub fn leaf(&self) -> Option<&Certificate> {
        self.0.first()
    }

    /// Standard chain validation (the client's step 5a): signature linkage
    /// leaf → … → root, CA flags, validity windows, and a trust-anchor match
    /// for the final issuer.
    ///
    /// # Errors
    ///
    /// The first failing [`CertError`], walking from the leaf up.
    pub fn validate(&self, anchors: &TrustAnchors, now: u64) -> Result<(), CertError> {
        if self.0.is_empty() {
            return Err(CertError::EmptyChain);
        }
        for (i, cert) in self.0.iter().enumerate() {
            match self.0.get(i + 1) {
                Some(parent) => {
                    if !parent.is_ca {
                        return Err(CertError::NotACa(parent.subject.clone()));
                    }
                    if CaId::from_name(&parent.subject) != cert.issuer {
                        return Err(CertError::BrokenChain(cert.subject.clone()));
                    }
                    cert.verify(&parent.public_key, now)?;
                }
                None => {
                    // Root of the presented chain: must match a trust anchor.
                    let key = anchors
                        .key_of(cert.issuer)
                        .ok_or(CertError::UntrustedRoot(cert.issuer))?;
                    cert.verify(key, now)?;
                }
            }
        }
        Ok(())
    }

    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        1 + self.0.iter().map(|c| 2 + c.encoded_len()).sum::<usize>()
    }

    /// Serializes the chain as carried in a TLS `Certificate` message
    /// (pre-sized to [`CertificateChain::encoded_len`]; never reallocates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        w.u8(self.0.len() as u8);
        for c in &self.0 {
            w.vec16(&c.to_bytes());
        }
        w.into_bytes()
    }

    /// Parses a chain.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let n = r.u8("chain length")? as usize;
        // Each certificate needs at least its 2-byte length prefix.
        r.check_count(n, 2, "chain length exceeds buffer")?;
        let mut certs = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.vec16("chain cert")?;
            certs.push(Certificate::from_bytes(raw)?);
        }
        r.finish("chain trailing bytes")?;
        Ok(CertificateChain(certs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: u64 = 1_400_000_000;

    struct Pki {
        root_key: SigningKey,
        inter_key: SigningKey,
        leaf_key: SigningKey,
        chain: CertificateChain,
        anchors: TrustAnchors,
    }

    /// Builds the three-certificate chain the paper calls the common case.
    fn pki() -> Pki {
        let root_key = SigningKey::from_seed([1u8; 32]);
        let inter_key = SigningKey::from_seed([2u8; 32]);
        let leaf_key = SigningKey::from_seed([3u8; 32]);
        let root_ca = CaId::from_name("RootCA");
        let inter_ca = CaId::from_name("InterCA");

        let inter_cert = Certificate::issue(
            &root_key,
            root_ca,
            SerialNumber::from_u24(1),
            "InterCA",
            NOW - 1000,
            NOW + 1_000_000,
            inter_key.verifying_key(),
            true,
        );
        let leaf_cert = Certificate::issue(
            &inter_key,
            inter_ca,
            SerialNumber::from_u24(0x073e10),
            "example.com",
            NOW - 100,
            NOW + 100_000,
            leaf_key.verifying_key(),
            false,
        );
        // Self-signed root.
        let root_cert = Certificate::issue(
            &root_key,
            root_ca,
            SerialNumber::from_u24(0),
            "RootCA",
            NOW - 10_000,
            NOW + 10_000_000,
            root_key.verifying_key(),
            true,
        );
        let mut anchors = TrustAnchors::new();
        anchors.add(root_ca, root_key.verifying_key());
        Pki {
            root_key,
            inter_key,
            leaf_key,
            chain: CertificateChain(vec![leaf_cert, inter_cert, root_cert]),
            anchors,
        }
    }

    #[test]
    fn valid_chain_validates() {
        let p = pki();
        p.chain.validate(&p.anchors, NOW).unwrap();
    }

    #[test]
    fn expired_leaf_rejected() {
        let p = pki();
        let err = p.chain.validate(&p.anchors, NOW + 200_000).unwrap_err();
        assert!(matches!(err, CertError::OutsideValidity { .. }));
    }

    #[test]
    fn not_yet_valid_rejected() {
        let p = pki();
        assert!(p.chain.validate(&p.anchors, NOW - 500).is_err());
    }

    #[test]
    fn untrusted_root_rejected() {
        let p = pki();
        let empty = TrustAnchors::new();
        assert!(matches!(
            p.chain.validate(&empty, NOW),
            Err(CertError::UntrustedRoot(_))
        ));
    }

    #[test]
    fn tampered_subject_rejected() {
        let mut p = pki();
        p.chain.0[0].subject = "evil.com".into();
        assert_eq!(
            p.chain.validate(&p.anchors, NOW),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn swapped_key_rejected() {
        let mut p = pki();
        let other = SigningKey::from_seed([9u8; 32]);
        p.chain.0[0].public_key = other.verifying_key();
        assert_eq!(
            p.chain.validate(&p.anchors, NOW),
            Err(CertError::BadSignature)
        );
        let _unused = &p.leaf_key;
    }

    #[test]
    fn non_ca_intermediate_rejected() {
        let p = pki();
        // Re-issue the intermediate with is_ca = false.
        let bad_inter = Certificate::issue(
            &p.root_key,
            CaId::from_name("RootCA"),
            SerialNumber::from_u24(1),
            "InterCA",
            NOW - 1000,
            NOW + 1_000_000,
            p.inter_key.verifying_key(),
            false,
        );
        let chain = CertificateChain(vec![p.chain.0[0].clone(), bad_inter, p.chain.0[2].clone()]);
        assert!(matches!(
            chain.validate(&p.anchors, NOW),
            Err(CertError::NotACa(_))
        ));
    }

    #[test]
    fn broken_linkage_rejected() {
        let p = pki();
        // Drop the intermediate: the leaf's issuer no longer matches.
        let chain = CertificateChain(vec![p.chain.0[0].clone(), p.chain.0[2].clone()]);
        assert!(matches!(
            chain.validate(&p.anchors, NOW),
            Err(CertError::BrokenChain(_))
        ));
    }

    #[test]
    fn empty_chain_rejected() {
        let p = pki();
        assert_eq!(
            CertificateChain(vec![]).validate(&p.anchors, NOW),
            Err(CertError::EmptyChain)
        );
    }

    #[test]
    fn encoding_round_trips() {
        let p = pki();
        let bytes = p.chain.to_bytes();
        let back = CertificateChain::from_bytes(&bytes).unwrap();
        assert_eq!(back, p.chain);
        back.validate(&p.anchors, NOW).unwrap();
    }

    #[test]
    fn single_cert_round_trip() {
        let p = pki();
        let c = &p.chain.0[0];
        assert_eq!(&Certificate::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn truncated_cert_rejected() {
        let p = pki();
        let bytes = p.chain.0[0].to_bytes();
        assert!(Certificate::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }
}
