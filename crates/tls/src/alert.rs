//! TLS alerts — how a RITM client interrupts a connection whose certificate
//! turns out to be revoked or whose revocation status goes stale (paper §III
//! step 7: "the connection is interrupted by the client").

use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertLevel {
    /// Warning (1).
    Warning,
    /// Fatal (2) — the connection must be torn down.
    Fatal,
}

/// Alert description codes (subset used by this substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertDescription {
    /// close_notify (0).
    CloseNotify,
    /// bad_certificate (42).
    BadCertificate,
    /// certificate_revoked (44) — what a RITM client sends on a presence
    /// proof.
    CertificateRevoked,
    /// certificate_expired (45).
    CertificateExpired,
    /// certificate_unknown (46) — used when the revocation status is missing
    /// or stale past 2Δ.
    CertificateUnknown,
    /// handshake_failure (40).
    HandshakeFailure,
}

impl AlertDescription {
    fn to_u8(self) -> u8 {
        match self {
            AlertDescription::CloseNotify => 0,
            AlertDescription::HandshakeFailure => 40,
            AlertDescription::BadCertificate => 42,
            AlertDescription::CertificateRevoked => 44,
            AlertDescription::CertificateExpired => 45,
            AlertDescription::CertificateUnknown => 46,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => AlertDescription::CloseNotify,
            40 => AlertDescription::HandshakeFailure,
            42 => AlertDescription::BadCertificate,
            44 => AlertDescription::CertificateRevoked,
            45 => AlertDescription::CertificateExpired,
            46 => AlertDescription::CertificateUnknown,
            _ => return None,
        })
    }
}

/// A TLS alert message (2 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alert {
    /// Severity.
    pub level: AlertLevel,
    /// Reason.
    pub description: AlertDescription,
}

impl Alert {
    /// A fatal alert with the given description.
    pub fn fatal(description: AlertDescription) -> Self {
        Alert {
            level: AlertLevel::Fatal,
            description,
        }
    }

    /// Encodes the 2-byte alert payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(2);
        w.u8(match self.level {
            AlertLevel::Warning => 1,
            AlertLevel::Fatal => 2,
        });
        w.u8(self.description.to_u8());
        w.into_bytes()
    }

    /// Parses an alert payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or unknown codes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let level = match r.u8("alert level")? {
            1 => AlertLevel::Warning,
            2 => AlertLevel::Fatal,
            _ => return Err(DecodeError::new("unknown alert level", 0)),
        };
        let description = AlertDescription::from_u8(r.u8("alert description")?)
            .ok_or(DecodeError::new("unknown alert description", 1))?;
        r.finish("alert trailing bytes")?;
        Ok(Alert { level, description })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_descriptions() {
        for d in [
            AlertDescription::CloseNotify,
            AlertDescription::HandshakeFailure,
            AlertDescription::BadCertificate,
            AlertDescription::CertificateRevoked,
            AlertDescription::CertificateExpired,
            AlertDescription::CertificateUnknown,
        ] {
            let a = Alert::fatal(d);
            assert_eq!(Alert::from_bytes(&a.to_bytes()).unwrap(), a);
        }
    }

    #[test]
    fn unknown_codes_rejected() {
        assert!(Alert::from_bytes(&[3, 0]).is_err());
        assert!(Alert::from_bytes(&[2, 99]).is_err());
        assert!(Alert::from_bytes(&[2]).is_err());
        assert!(Alert::from_bytes(&[2, 0, 0]).is_err());
    }
}
