//! Sans-io, resumable TLS engines: bytes in, typed actions out.
//!
//! [`ClientEngine`] and [`ServerEngine`] carry the complete handshake logic
//! of this crate; the lockstep `TlsClient`/`ServerConnection` wrappers in
//! [`crate::connection`] are thin compatibility shims over them. The engines
//! are *sans-io*: nothing here reads sockets or clocks. A driver pushes
//! whatever bytes it happens to have — a whole flight, a single byte, a
//! record split at any boundary — into [`ClientEngine::feed`] /
//! [`ServerEngine::feed`] and gets back [`Action`]s telling it what to do:
//! write bytes, wait for more input, surface a completed handshake, or tear
//! the connection down with an alert. An internal [`RecordAssembler`]
//! (shaped like `ritm-rt`'s `FrameReader`) buffers partial records across
//! calls, so one engine instance survives `WouldBlock` at any byte boundary
//! — exactly the property the event runtime needs to drive thousands of
//! concurrent handshakes on a two-thread executor (see [`crate::event`]).
//!
//! The record-level entry points ([`ClientEngine::process_record`] /
//! [`ServerEngine::process_record`]) remain public so packet-granular
//! callers (the discrete-event simulator, the lockstep shims) can keep
//! driving the same state machine; `feed` is the byte-granular path layered
//! on top. Both paths share every state transition, so the byte stream an
//! engine emits is bit-identical to the lockstep baseline regardless of how
//! its input was fragmented (property-tested in `tests/engine_stream.rs`).

use crate::alert::{Alert, AlertDescription};
use crate::certificate::{CertError, CertificateChain};
use crate::connection::{ClientConfig, ClientEvent, ServerContext, ServerEvent, TlsError};
use crate::extensions::Extension;
use crate::handshake::{
    ClientHello, HandshakeMessage, ServerHello, SessionTicket, DEFAULT_CIPHER_SUITE,
};
use crate::record::{ContentType, TlsRecord};
use crate::session::{SessionState, SESSION_LIFETIME_SECS};
use ritm_crypto::digest::Digest20;
use ritm_crypto::wire::{DecodeError, Reader};
use std::sync::Arc;

/// Computes the 12-byte Finished verify-data over `transcript` under
/// `label` (`b"client finished"` / `b"server finished"`).
pub(crate) fn finished_verify_data(transcript: &[u8], label: &[u8]) -> [u8; 12] {
    let mut buf = Vec::with_capacity(transcript.len() + label.len());
    buf.extend_from_slice(label);
    buf.extend_from_slice(transcript);
    let d = Digest20::hash(buf);
    let mut out = [0u8; 12];
    out.copy_from_slice(&d.as_bytes()[..12]);
    out
}

/// Incremental TLS-record reassembler: push arbitrarily fragmented bytes,
/// pull whole [`TlsRecord`]s. The record header is validated as soon as it
/// is complete (unknown content types fail fast, before the body arrives),
/// and the accepted wire shapes are exactly those of [`TlsRecord::decode`],
/// so a stream that parses here parses identically via
/// [`TlsRecord::parse_stream`] — the bit-identity the engine relies on.
#[derive(Debug, Clone, Default)]
pub struct RecordAssembler {
    buf: Vec<u8>,
}

impl RecordAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        RecordAssembler::default()
    }

    /// Appends raw stream bytes (any fragmentation).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (incomplete record prefix).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete record, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown content type — the stream is
    /// not TLS and no amount of further input can fix it.
    pub fn next_record(&mut self) -> Result<Option<TlsRecord>, DecodeError> {
        if let Some(&first) = self.buf.first() {
            if ContentType::from_u8(first).is_none() {
                return Err(DecodeError::new("unknown content type", 0));
            }
        }
        if self.buf.len() < 5 {
            return Ok(None);
        }
        let len = u16::from_be_bytes([self.buf[3], self.buf[4]]) as usize;
        let total = 5 + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let mut r = Reader::new(&self.buf[..total]);
        let record = TlsRecord::decode(&mut r)?;
        self.buf.drain(..total);
        Ok(Some(record))
    }
}

/// What a driver must do next, as told by [`ClientEngine::feed`] /
/// [`ServerEngine::feed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Write these bytes to the peer (already record-framed).
    SendBytes(Vec<u8>),
    /// Nothing actionable yet — read more bytes and feed again.
    NeedMoreData,
    /// The handshake completed.
    HandshakeComplete {
        /// The validated server chain (client side, full handshakes only).
        chain: Option<CertificateChain>,
        /// Session ticket issued by the server, if any (client side).
        ticket: Option<SessionTicket>,
        /// Whether this was an abbreviated (resumed) handshake.
        resumed: bool,
    },
    /// Application data arrived (post-establishment).
    ReceivedData(Vec<u8>),
    /// A RITM revocation-status record arrived (client side; opaque payload
    /// decoded by `ritm-client`).
    RitmStatus(Vec<u8>),
    /// The connection failed. When the failure is local, a
    /// [`Action::SendBytes`] carrying the fatal alert precedes this; when
    /// the *peer* aborted, this carries their alert and nothing is sent.
    Abort {
        /// The fatal alert (ours or the peer's).
        alert: Alert,
    },
    /// The peer closed the connection (close_notify).
    Closed,
}

/// Maps a local failure to the alert description sent to the peer.
fn abort_description(err: &TlsError) -> AlertDescription {
    match err {
        TlsError::Certificate(CertError::OutsideValidity { .. }) => {
            AlertDescription::CertificateExpired
        }
        TlsError::Certificate(_) => AlertDescription::BadCertificate,
        _ => AlertDescription::HandshakeFailure,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    AwaitClientHello,
    AwaitClientKeyExchange,
    AwaitClientFinished { resumed: bool },
    Established,
    Failed,
}

/// Server-side sans-io handshake engine. One instance per connection,
/// sharing long-lived configuration through an
/// [`Arc<ServerContext>`](crate::connection::ServerContext).
#[derive(Debug)]
pub struct ServerEngine {
    ctx: Arc<ServerContext>,
    random: [u8; 32],
    state: ServerState,
    transcript: Vec<u8>,
    session_id: Vec<u8>,
    cert_chain_hash: Digest20,
    now: u64,
    assembler: RecordAssembler,
    aborted: Option<Alert>,
}

impl ServerEngine {
    /// Creates an engine bound to the shared context; `random` is the
    /// server random for this connection.
    pub fn new(ctx: Arc<ServerContext>, random: [u8; 32]) -> Self {
        let cert_chain_hash = Digest20::hash(ctx.chain.to_bytes());
        ServerEngine {
            ctx,
            random,
            state: ServerState::AwaitClientHello,
            transcript: Vec::new(),
            session_id: Vec::new(),
            cert_chain_hash,
            now: 0,
            assembler: RecordAssembler::new(),
            aborted: None,
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == ServerState::Established
    }

    /// Consumes one inbound record and produces response records + events —
    /// the record-granular (lockstep) entry point.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`]; the engine then refuses further input.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<ServerEvent>), TlsError> {
        self.now = now;
        if self.state == ServerState::Failed {
            return Err(TlsError::Closed);
        }
        let mut out = Vec::new();
        let mut events = Vec::new();
        match record.content_type {
            ContentType::Handshake => {
                for msg in HandshakeMessage::parse_all(&record.payload)? {
                    self.handle_handshake(msg, &mut out, &mut events)
                        .inspect_err(|_| self.state = ServerState::Failed)?;
                }
            }
            ContentType::ApplicationData => {
                if self.state != ServerState::Established {
                    self.state = ServerState::Failed;
                    return Err(TlsError::UnexpectedMessage("data before established"));
                }
                events.push(ServerEvent::ReceivedData(record.payload.clone()));
            }
            ContentType::Alert => {
                let alert = Alert::from_bytes(&record.payload)?;
                self.state = ServerState::Failed;
                events.push(ServerEvent::ConnectionClosed);
                if alert.level == crate::alert::AlertLevel::Fatal
                    && alert.description != AlertDescription::CloseNotify
                {
                    return Err(TlsError::FatalAlert(alert));
                }
            }
            ContentType::ChangeCipherSpec => {}
            ContentType::RitmStatus => {
                // Servers ignore RITM records (they are for the client; a
                // stray one indicates an RA bug but must not kill the
                // connection — RAs are non-invasive, §VII-F).
            }
        }
        Ok((out, events))
    }

    fn handle_handshake(
        &mut self,
        msg: HandshakeMessage,
        out: &mut Vec<TlsRecord>,
        events: &mut Vec<ServerEvent>,
    ) -> Result<(), TlsError> {
        match (&self.state, msg) {
            (ServerState::AwaitClientHello, HandshakeMessage::ClientHello(ch)) => {
                // The server ignores the RITM extension (paper §III step 3).
                if !ch.cipher_suites.contains(&DEFAULT_CIPHER_SUITE) {
                    return Err(TlsError::NoCipherOverlap);
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ClientHello(ch.clone()).to_bytes());

                // Try session-id resumption; expired sessions fall back to a
                // full handshake exactly like unknown ids.
                let resumed = !ch.session_id.is_empty()
                    && self
                        .ctx
                        .cache
                        .lock()
                        .lookup_fresh(&ch.session_id, self.now, SESSION_LIFETIME_SECS)
                        .is_some();
                let mut extensions = Vec::new();
                if self.ctx.ritm_terminator {
                    extensions.push(Extension::ritm_confirmation());
                }
                if resumed {
                    self.session_id = ch.session_id.clone();
                    let sh = HandshakeMessage::ServerHello(ServerHello {
                        version: 0x0303,
                        random: self.random,
                        session_id: self.session_id.clone(),
                        cipher_suite: DEFAULT_CIPHER_SUITE,
                        extensions,
                    });
                    self.transcript.extend_from_slice(&sh.to_bytes());
                    let vd = finished_verify_data(&self.transcript, b"server finished");
                    let fin = HandshakeMessage::Finished(vd);
                    self.transcript.extend_from_slice(&fin.to_bytes());
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&[sh, fin]),
                    ));
                    self.state = ServerState::AwaitClientFinished { resumed: true };
                } else {
                    self.session_id = self.ctx.next_session_id();
                    let sh = HandshakeMessage::ServerHello(ServerHello {
                        version: 0x0303,
                        random: self.random,
                        session_id: self.session_id.clone(),
                        cipher_suite: DEFAULT_CIPHER_SUITE,
                        extensions,
                    });
                    let cert = HandshakeMessage::Certificate(self.ctx.chain.clone());
                    let done = HandshakeMessage::ServerHelloDone;
                    for m in [&sh, &cert, &done] {
                        self.transcript.extend_from_slice(&m.to_bytes());
                    }
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&[sh, cert, done]),
                    ));
                    self.state = ServerState::AwaitClientKeyExchange;
                }
                Ok(())
            }
            (ServerState::AwaitClientKeyExchange, HandshakeMessage::ClientKeyExchange(data)) => {
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ClientKeyExchange(data).to_bytes());
                self.state = ServerState::AwaitClientFinished { resumed: false };
                Ok(())
            }
            (ServerState::AwaitClientFinished { resumed }, HandshakeMessage::Finished(vd)) => {
                let resumed = *resumed;
                let expect = finished_verify_data(&self.transcript, b"client finished");
                if vd != expect {
                    return Err(TlsError::BadFinished);
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::Finished(vd).to_bytes());
                if !resumed {
                    // Full handshake: store the session, maybe a ticket,
                    // then send server Finished.
                    let state = SessionState {
                        session_id: self.session_id.clone(),
                        cipher_suite: DEFAULT_CIPHER_SUITE,
                        cert_chain_hash: self.cert_chain_hash,
                        established_at: self.now,
                    };
                    let mut msgs = Vec::new();
                    if self.ctx.offer_tickets {
                        let ticket = self
                            .ctx
                            .cache
                            .lock()
                            .mint_ticket(&state, SESSION_LIFETIME_SECS as u32);
                        let t = HandshakeMessage::NewSessionTicket(ticket);
                        self.transcript.extend_from_slice(&t.to_bytes());
                        msgs.push(t);
                    }
                    self.ctx.cache.lock().store(state);
                    let vd = finished_verify_data(&self.transcript, b"server finished");
                    let fin = HandshakeMessage::Finished(vd);
                    self.transcript.extend_from_slice(&fin.to_bytes());
                    msgs.push(fin);
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&msgs),
                    ));
                }
                self.state = ServerState::Established;
                events.push(ServerEvent::HandshakeComplete { resumed });
                Ok(())
            }
            (state, msg) => {
                let _ = (state, msg);
                Err(TlsError::UnexpectedMessage("server state machine"))
            }
        }
    }

    /// Sends application data (only once established).
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] if the handshake has not completed.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        if self.state != ServerState::Established {
            return Err(TlsError::Closed);
        }
        Ok(TlsRecord::new(ContentType::ApplicationData, data.to_vec()))
    }

    /// Byte-granular entry point: buffer `bytes` (any fragmentation),
    /// process every record that completed, and return the resulting
    /// [`Action`]s in order. Once the engine aborted, every further call
    /// returns the latched [`Action::Abort`].
    pub fn feed(&mut self, now: u64, bytes: &[u8]) -> Vec<Action> {
        if let Some(alert) = self.aborted {
            return vec![Action::Abort { alert }];
        }
        self.assembler.push(bytes);
        let mut actions = Vec::new();
        loop {
            match self.assembler.next_record() {
                Ok(Some(record)) => match self.process_record(&record, now) {
                    Ok((outs, events)) => {
                        if !outs.is_empty() {
                            actions.push(Action::SendBytes(TlsRecord::encode_stream(&outs)));
                        }
                        for ev in events {
                            match ev {
                                ServerEvent::HandshakeComplete { resumed } => {
                                    actions.push(Action::HandshakeComplete {
                                        chain: None,
                                        ticket: None,
                                        resumed,
                                    });
                                }
                                ServerEvent::ReceivedData(d) => {
                                    actions.push(Action::ReceivedData(d));
                                }
                                ServerEvent::ConnectionClosed => actions.push(Action::Closed),
                            }
                        }
                    }
                    Err(err) => {
                        fail(&mut self.aborted, err, &mut actions);
                        self.state = ServerState::Failed;
                        return actions;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    fail(&mut self.aborted, TlsError::Decode(e), &mut actions);
                    self.state = ServerState::Failed;
                    return actions;
                }
            }
        }
        if actions.is_empty() {
            actions.push(Action::NeedMoreData);
        }
        actions
    }
}

/// Shared failure path of the two `feed` implementations: latch the abort,
/// emit the alert bytes (unless the *peer* aborted) and the
/// [`Action::Abort`].
fn fail(aborted: &mut Option<Alert>, err: TlsError, actions: &mut Vec<Action>) {
    let alert = match err {
        TlsError::FatalAlert(alert) => {
            // The peer killed the connection; nothing to send back.
            *aborted = Some(alert);
            actions.push(Action::Abort { alert });
            return;
        }
        other => Alert::fatal(abort_description(&other)),
    };
    *aborted = Some(alert);
    actions.push(Action::SendBytes(
        TlsRecord::new(ContentType::Alert, alert.to_bytes()).to_bytes(),
    ));
    actions.push(Action::Abort { alert });
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    AwaitServerHello,
    AwaitServerHelloDone,
    AwaitServerFinished { resumed: bool },
    Established,
    Failed,
}

/// Client-side sans-io handshake engine.
#[derive(Debug)]
pub struct ClientEngine {
    config: ClientConfig,
    random: [u8; 32],
    state: ClientState,
    transcript: Vec<u8>,
    resumption: Option<SessionState>,
    server_chain: Option<CertificateChain>,
    pending_ticket: Option<SessionTicket>,
    session_id: Vec<u8>,
    server_confirms_ritm: bool,
    assembler: RecordAssembler,
    aborted: Option<Alert>,
}

impl ClientEngine {
    /// Creates a client engine; `resume_from` enables an abbreviated
    /// handshake using a cached session.
    pub fn new(config: ClientConfig, random: [u8; 32], resume_from: Option<SessionState>) -> Self {
        ClientEngine {
            config,
            random,
            state: ClientState::Start,
            transcript: Vec::new(),
            resumption: resume_from,
            server_chain: None,
            pending_ticket: None,
            session_id: Vec::new(),
            server_confirms_ritm: false,
            assembler: RecordAssembler::new(),
            aborted: None,
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == ClientState::Established
    }

    /// The validated server chain (present after a full handshake).
    pub fn server_chain(&self) -> Option<&CertificateChain> {
        self.server_chain.as_ref()
    }

    /// Whether the server confirmed RITM support (ServerHello extension).
    pub fn server_confirms_ritm(&self) -> bool {
        self.server_confirms_ritm
    }

    /// Session ticket issued by the server, if any.
    pub fn take_ticket(&mut self) -> Option<SessionTicket> {
        self.pending_ticket.take()
    }

    /// The established session's state (for caching in a
    /// [`ClientSessionCache`](crate::session::ClientSessionCache)).
    pub fn session_state(&self, now: u64) -> Option<SessionState> {
        if self.state != ClientState::Established {
            return None;
        }
        Some(SessionState {
            session_id: self.session_id.clone(),
            cipher_suite: DEFAULT_CIPHER_SUITE,
            cert_chain_hash: self
                .server_chain
                .as_ref()
                .map(|c| Digest20::hash(c.to_bytes()))
                .or_else(|| self.resumption.as_ref().map(|r| r.cert_chain_hash))?,
            established_at: now,
        })
    }

    /// Starts the handshake, producing the ClientHello record.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) -> TlsRecord {
        assert_eq!(self.state, ClientState::Start, "start() called twice");
        let mut extensions = vec![Extension::sni(&self.config.server_name)];
        if self.config.enable_ritm {
            extensions.push(Extension::ritm_request());
        }
        let session_id = self
            .resumption
            .as_ref()
            .map(|s| s.session_id.clone())
            .unwrap_or_default();
        let ch = HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random: self.random,
            session_id,
            cipher_suites: vec![DEFAULT_CIPHER_SUITE, 0x002f, 0x0035],
            extensions,
        });
        self.transcript.extend_from_slice(&ch.to_bytes());
        self.state = ClientState::AwaitServerHello;
        TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&[ch]))
    }

    /// Consumes one inbound record and produces response records + events —
    /// the record-granular (lockstep) entry point.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`]; the engine then refuses further input.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<ClientEvent>), TlsError> {
        if self.state == ClientState::Failed {
            return Err(TlsError::Closed);
        }
        let mut out = Vec::new();
        let mut events = Vec::new();
        match record.content_type {
            ContentType::Handshake => {
                for msg in HandshakeMessage::parse_all(&record.payload)? {
                    self.handle_handshake(msg, now, &mut out, &mut events)
                        .inspect_err(|_| self.state = ClientState::Failed)?;
                }
            }
            ContentType::ApplicationData => {
                if self.state != ClientState::Established {
                    self.state = ClientState::Failed;
                    return Err(TlsError::UnexpectedMessage("data before established"));
                }
                events.push(ClientEvent::ReceivedData(record.payload.clone()));
            }
            ContentType::RitmStatus => {
                events.push(ClientEvent::RitmStatus(record.payload.clone()));
            }
            ContentType::Alert => {
                let alert = Alert::from_bytes(&record.payload)?;
                self.state = ClientState::Failed;
                events.push(ClientEvent::ConnectionClosed);
                if alert.level == crate::alert::AlertLevel::Fatal
                    && alert.description != AlertDescription::CloseNotify
                {
                    return Err(TlsError::FatalAlert(alert));
                }
            }
            ContentType::ChangeCipherSpec => {}
        }
        Ok((out, events))
    }

    fn handle_handshake(
        &mut self,
        msg: HandshakeMessage,
        now: u64,
        out: &mut Vec<TlsRecord>,
        events: &mut Vec<ClientEvent>,
    ) -> Result<(), TlsError> {
        match (&self.state, msg) {
            (ClientState::AwaitServerHello, HandshakeMessage::ServerHello(sh)) => {
                self.server_confirms_ritm = sh.confirms_ritm();
                let resumed = self
                    .resumption
                    .as_ref()
                    .is_some_and(|r| r.session_id == sh.session_id);
                self.session_id = sh.session_id.clone();
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ServerHello(sh).to_bytes());
                self.state = if resumed {
                    ClientState::AwaitServerFinished { resumed: true }
                } else {
                    ClientState::AwaitServerHelloDone
                };
                Ok(())
            }
            (ClientState::AwaitServerHelloDone, HandshakeMessage::Certificate(chain)) => {
                // Standard validation — the client's step 5a. The RITM
                // revocation check happens in ritm-client on top.
                chain.validate(&self.config.anchors, now)?;
                self.transcript
                    .extend_from_slice(&HandshakeMessage::Certificate(chain.clone()).to_bytes());
                events.push(ClientEvent::CertificateReceived(chain.clone()));
                self.server_chain = Some(chain);
                Ok(())
            }
            (ClientState::AwaitServerHelloDone, HandshakeMessage::ServerHelloDone) => {
                if self.server_chain.is_none() {
                    return Err(TlsError::UnexpectedMessage("hello-done before certificate"));
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ServerHelloDone.to_bytes());
                let cke = HandshakeMessage::ClientKeyExchange(vec![0x42; 48]);
                self.transcript.extend_from_slice(&cke.to_bytes());
                let vd = finished_verify_data(&self.transcript, b"client finished");
                let fin = HandshakeMessage::Finished(vd);
                self.transcript.extend_from_slice(&fin.to_bytes());
                out.push(TlsRecord::new(
                    ContentType::Handshake,
                    HandshakeMessage::encode_all(&[cke, fin]),
                ));
                self.state = ClientState::AwaitServerFinished { resumed: false };
                Ok(())
            }
            (ClientState::AwaitServerFinished { .. }, HandshakeMessage::NewSessionTicket(t)) => {
                self.transcript
                    .extend_from_slice(&HandshakeMessage::NewSessionTicket(t.clone()).to_bytes());
                self.pending_ticket = Some(t);
                Ok(())
            }
            (ClientState::AwaitServerFinished { resumed }, HandshakeMessage::Finished(vd)) => {
                let resumed = *resumed;
                let expect = finished_verify_data(&self.transcript, b"server finished");
                if vd != expect {
                    return Err(TlsError::BadFinished);
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::Finished(vd).to_bytes());
                if resumed {
                    // Abbreviated handshake: client Finished goes last.
                    let vd = finished_verify_data(&self.transcript, b"client finished");
                    let fin = HandshakeMessage::Finished(vd);
                    self.transcript.extend_from_slice(&fin.to_bytes());
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&[fin]),
                    ));
                }
                self.state = ClientState::Established;
                events.push(ClientEvent::HandshakeComplete {
                    resumed,
                    server_confirms_ritm: self.server_confirms_ritm,
                });
                Ok(())
            }
            (state, msg) => {
                let _ = (state, msg);
                Err(TlsError::UnexpectedMessage("client state machine"))
            }
        }
    }

    /// Sends application data (only once established).
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] if the handshake has not completed.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        if self.state != ClientState::Established {
            return Err(TlsError::Closed);
        }
        Ok(TlsRecord::new(ContentType::ApplicationData, data.to_vec()))
    }

    /// Aborts the connection with a fatal alert (e.g. on a revoked
    /// certificate — paper §III steps 5/7), returning the alert record to
    /// send.
    pub fn abort(&mut self, description: AlertDescription) -> TlsRecord {
        self.state = ClientState::Failed;
        let alert = Alert::fatal(description);
        self.aborted = Some(alert);
        TlsRecord::new(ContentType::Alert, alert.to_bytes())
    }

    /// Byte-granular entry point: buffer `bytes` (any fragmentation),
    /// process every record that completed, and return the resulting
    /// [`Action`]s in order. Once the engine aborted, every further call
    /// returns the latched [`Action::Abort`].
    pub fn feed(&mut self, now: u64, bytes: &[u8]) -> Vec<Action> {
        if let Some(alert) = self.aborted {
            return vec![Action::Abort { alert }];
        }
        self.assembler.push(bytes);
        let mut actions = Vec::new();
        loop {
            match self.assembler.next_record() {
                Ok(Some(record)) => match self.process_record(&record, now) {
                    Ok((outs, events)) => {
                        if !outs.is_empty() {
                            actions.push(Action::SendBytes(TlsRecord::encode_stream(&outs)));
                        }
                        for ev in events {
                            match ev {
                                ClientEvent::HandshakeComplete { resumed, .. } => {
                                    actions.push(Action::HandshakeComplete {
                                        chain: self.server_chain.clone(),
                                        ticket: self.pending_ticket.clone(),
                                        resumed,
                                    });
                                }
                                // The chain is surfaced on completion.
                                ClientEvent::CertificateReceived(_) => {}
                                ClientEvent::ReceivedData(d) => {
                                    actions.push(Action::ReceivedData(d));
                                }
                                ClientEvent::RitmStatus(p) => actions.push(Action::RitmStatus(p)),
                                ClientEvent::ConnectionClosed => actions.push(Action::Closed),
                            }
                        }
                    }
                    Err(err) => {
                        fail(&mut self.aborted, err, &mut actions);
                        self.state = ClientState::Failed;
                        return actions;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    fail(&mut self.aborted, TlsError::Decode(e), &mut actions);
                    self.state = ClientState::Failed;
                    return actions;
                }
            }
        }
        if actions.is_empty() {
            actions.push(Action::NeedMoreData);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{Certificate, TrustAnchors};
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaId, SerialNumber};

    const NOW: u64 = 1_400_000_000;

    fn test_pki() -> (CertificateChain, TrustAnchors) {
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let server_key = SigningKey::from_seed([2u8; 32]);
        let ca = CaId::from_name("CA1");
        let leaf = Certificate::issue(
            &ca_key,
            ca,
            SerialNumber::from_u24(0x073e10),
            "example.com",
            NOW - 100,
            NOW + 100_000,
            server_key.verifying_key(),
            false,
        );
        let mut anchors = TrustAnchors::new();
        anchors.add(ca, ca_key.verifying_key());
        (CertificateChain(vec![leaf]), anchors)
    }

    fn client_config(anchors: TrustAnchors) -> ClientConfig {
        ClientConfig {
            server_name: "example.com".into(),
            anchors,
            enable_ritm: true,
        }
    }

    /// Pumps bytes between the two engines in `chunk`-sized pieces until
    /// both complete, returning the actions each side produced.
    fn pump(client: &mut ClientEngine, server: &mut ServerEngine, chunk: usize) {
        let mut to_server = client.start().to_bytes();
        let mut to_client: Vec<u8> = Vec::new();
        for _ in 0..10_000 {
            if client.is_established() && server.is_established() && to_server.is_empty() {
                break;
            }
            let take = chunk.min(to_server.len());
            let (now_bytes, rest) = to_server.split_at(take);
            for a in server.feed(NOW, now_bytes) {
                if let Action::SendBytes(b) = a {
                    to_client.extend_from_slice(&b);
                }
            }
            to_server = rest.to_vec();
            let take = chunk.min(to_client.len());
            let (now_bytes, rest) = to_client.split_at(take);
            for a in client.feed(NOW, now_bytes) {
                if let Action::SendBytes(b) = a {
                    to_server.extend_from_slice(&b);
                }
            }
            to_client = rest.to_vec();
        }
    }

    #[test]
    fn assembler_reassembles_byte_by_byte() {
        let rec = TlsRecord::new(ContentType::Handshake, vec![7; 300]);
        let bytes = rec.to_bytes();
        let mut asm = RecordAssembler::new();
        for &b in &bytes[..bytes.len() - 1] {
            asm.push(&[b]);
            assert_eq!(asm.next_record().unwrap(), None);
        }
        asm.push(&bytes[bytes.len() - 1..]);
        assert_eq!(asm.next_record().unwrap(), Some(rec));
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_rejects_non_tls_immediately() {
        let mut asm = RecordAssembler::new();
        asm.push(b"G"); // 'G' of "GET /" — not a TLS content type.
        assert!(asm.next_record().is_err());
    }

    #[test]
    fn assembler_pops_multiple_records_from_one_push() {
        let recs = vec![
            TlsRecord::new(ContentType::Alert, vec![1, 0]),
            TlsRecord::new(ContentType::ApplicationData, vec![9; 10]),
        ];
        let mut asm = RecordAssembler::new();
        asm.push(&TlsRecord::encode_stream(&recs));
        assert_eq!(asm.next_record().unwrap(), Some(recs[0].clone()));
        assert_eq!(asm.next_record().unwrap(), Some(recs[1].clone()));
        assert_eq!(asm.next_record().unwrap(), None);
    }

    #[test]
    fn engines_complete_handshake_byte_by_byte() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain.clone(), [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut client = ClientEngine::new(client_config(anchors), [2u8; 32], None);
        pump(&mut client, &mut server, 1);
        assert!(client.is_established());
        assert!(server.is_established());
        assert_eq!(client.server_chain(), Some(&chain));
    }

    #[test]
    fn feed_reports_need_more_data_on_partial_record() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut client = ClientEngine::new(client_config(anchors), [2u8; 32], None);
        let ch = client.start().to_bytes();
        assert_eq!(server.feed(NOW, &ch[..3]), vec![Action::NeedMoreData]);
        let actions = server.feed(NOW, &ch[3..]);
        assert!(matches!(actions[0], Action::SendBytes(_)));
    }

    #[test]
    fn garbage_aborts_with_alert_bytes_then_latches() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let actions = server.feed(NOW, b"GET / HTTP/1.1\r\n");
        assert!(matches!(actions[0], Action::SendBytes(_)));
        assert!(matches!(actions[1], Action::Abort { .. }));
        // Latched: further feeds only repeat the abort.
        let _ = anchors;
        assert!(matches!(
            server.feed(NOW, &[22]).as_slice(),
            [Action::Abort { .. }]
        ));
    }

    #[test]
    fn untrusted_chain_aborts_client_with_bad_certificate() {
        let (chain, _) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut client = ClientEngine::new(client_config(TrustAnchors::new()), [2u8; 32], None);
        let ch = client.start().to_bytes();
        let mut flight = Vec::new();
        for a in server.feed(NOW, &ch) {
            if let Action::SendBytes(b) = a {
                flight.extend_from_slice(&b);
            }
        }
        let actions = client.feed(NOW, &flight);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Abort {
                alert: Alert {
                    description: AlertDescription::BadCertificate,
                    ..
                }
            }
        )));
        // The alert bytes precede the abort so drivers can flush them.
        assert!(matches!(actions[0], Action::SendBytes(_)));
    }

    #[test]
    fn expired_chain_aborts_with_certificate_expired() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut client = ClientEngine::new(client_config(anchors), [2u8; 32], None);
        let ch = client.start().to_bytes();
        let mut flight = Vec::new();
        for a in server.feed(NOW, &ch) {
            if let Action::SendBytes(b) = a {
                flight.extend_from_slice(&b);
            }
        }
        // Validate far past not_after.
        let actions = client.feed(NOW + 10_000_000, &flight);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Abort {
                alert: Alert {
                    description: AlertDescription::CertificateExpired,
                    ..
                }
            }
        )));
    }

    #[test]
    fn peer_alert_surfaces_as_abort_without_send() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut client = ClientEngine::new(client_config(anchors), [2u8; 32], None);
        pump(&mut client, &mut server, 4096);
        let alert = client
            .abort(AlertDescription::CertificateRevoked)
            .to_bytes();
        let actions = server.feed(NOW, &alert);
        assert_eq!(
            actions,
            vec![Action::Abort {
                alert: Alert::fatal(AlertDescription::CertificateRevoked)
            }]
        );
    }

    #[test]
    fn ritm_status_surfaces_between_records() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerEngine::new(ctx, [1u8; 32]);
        let mut client = ClientEngine::new(client_config(anchors), [2u8; 32], None);
        pump(&mut client, &mut server, 7);
        let status = TlsRecord::new(ContentType::RitmStatus, vec![0xAB; 64]).to_bytes();
        let actions = client.feed(NOW, &status);
        assert_eq!(actions, vec![Action::RitmStatus(vec![0xAB; 64])]);
    }

    #[test]
    fn completion_action_carries_chain_and_resumed_flag() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain.clone(), [9u8; 20]);
        let mut server = ServerEngine::new(ctx.clone(), [1u8; 32]);
        let mut client = ClientEngine::new(client_config(anchors.clone()), [2u8; 32], None);
        let mut to_server = client.start().to_bytes();
        let mut completed = None;
        for _ in 0..8 {
            let mut to_client = Vec::new();
            for a in server.feed(NOW, &to_server) {
                if let Action::SendBytes(b) = a {
                    to_client.extend_from_slice(&b);
                }
            }
            to_server.clear();
            for a in client.feed(NOW, &to_client) {
                match a {
                    Action::SendBytes(b) => to_server.extend_from_slice(&b),
                    Action::HandshakeComplete {
                        chain: c, resumed, ..
                    } => completed = Some((c, resumed)),
                    _ => {}
                }
            }
            if completed.is_some() && to_server.is_empty() {
                break;
            }
        }
        let (got_chain, resumed) = completed.expect("client completed");
        assert_eq!(got_chain.as_ref(), Some(&chain));
        assert!(!resumed);
    }
}
