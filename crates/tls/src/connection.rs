//! Lockstep TLS connection drivers — compatibility shims over the sans-io
//! engines in [`crate::engine`].
//!
//! Historically this module held the full client/server state machines;
//! they now live in [`crate::engine`] as [`ClientEngine`]/[`ServerEngine`]
//! so the same logic can be driven byte-at-a-time by the event runtime.
//! [`TlsClient`] and [`ServerConnection`] remain as thin wrappers exposing
//! the original record-granular API (`process_record` on complete,
//! pre-framed records) for the discrete-event simulator and existing
//! callers. The protocol itself is unchanged: enough of TLS 1.2 for RITM's
//! purposes — plaintext negotiation carrying real certificate chains (what
//! the RA's DPI inspects), Finished messages bound to the handshake
//! transcript (so middlebox *tampering* is detected, §V "MITM and Blocking
//! Attack"), session-id and session-ticket resumption, alerts, and
//! application-data records.

use crate::alert::{Alert, AlertDescription};
use crate::certificate::{CertError, CertificateChain, TrustAnchors};
use crate::engine::{ClientEngine, ServerEngine};
use crate::record::TlsRecord;
use crate::session::{ServerSessionCache, SessionState};
use parking_lot::Mutex;
use ritm_crypto::digest::Digest20;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by the connection state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A message arrived that the current state cannot accept.
    UnexpectedMessage(&'static str),
    /// Wire-format decoding failed.
    Decode(ritm_crypto::wire::DecodeError),
    /// Certificate chain validation failed.
    Certificate(CertError),
    /// The peer's Finished did not match the transcript.
    BadFinished,
    /// No common cipher suite.
    NoCipherOverlap,
    /// The peer sent a fatal alert.
    FatalAlert(Alert),
    /// The connection was already closed or failed.
    Closed,
}

impl core::fmt::Display for TlsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlsError::UnexpectedMessage(s) => write!(f, "unexpected message in state {s}"),
            TlsError::Decode(e) => write!(f, "tls decode error: {e}"),
            TlsError::Certificate(e) => write!(f, "certificate validation failed: {e}"),
            TlsError::BadFinished => f.write_str("finished verify-data mismatch"),
            TlsError::NoCipherOverlap => f.write_str("no common cipher suite"),
            TlsError::FatalAlert(a) => write!(f, "peer sent fatal alert {:?}", a.description),
            TlsError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<ritm_crypto::wire::DecodeError> for TlsError {
    fn from(e: ritm_crypto::wire::DecodeError) -> Self {
        TlsError::Decode(e)
    }
}

impl From<CertError> for TlsError {
    fn from(e: CertError) -> Self {
        TlsError::Certificate(e)
    }
}

/// Long-lived server-side state shared across connections: the certificate
/// chain, resumption caches, and deployment flags.
#[derive(Debug)]
pub struct ServerContext {
    /// The chain presented in full handshakes.
    pub chain: CertificateChain,
    /// Whether this endpoint is a RITM-augmented TLS terminator (§IV,
    /// close-to-servers model): adds the confirmation extension.
    pub ritm_terminator: bool,
    /// Whether session tickets are offered.
    pub offer_tickets: bool,
    pub(crate) ticket_secret: [u8; 20],
    pub(crate) cache: Mutex<ServerSessionCache>,
    session_counter: AtomicU64,
}

impl ServerContext {
    /// Creates a server context with all options explicit.
    pub fn configured(
        chain: CertificateChain,
        ticket_secret: [u8; 20],
        ritm_terminator: bool,
        offer_tickets: bool,
    ) -> Arc<Self> {
        Arc::new(ServerContext {
            chain,
            ritm_terminator,
            offer_tickets,
            ticket_secret,
            cache: Mutex::new(ServerSessionCache::new(ticket_secret)),
            session_counter: AtomicU64::new(1),
        })
    }

    /// Creates a plain server context.
    pub fn new(chain: CertificateChain, ticket_secret: [u8; 20]) -> Arc<Self> {
        Self::configured(chain, ticket_secret, false, false)
    }

    /// Creates a RITM-terminator context (adds the ServerHello confirmation).
    pub fn new_ritm_terminator(chain: CertificateChain, ticket_secret: [u8; 20]) -> Arc<Self> {
        Self::configured(chain, ticket_secret, true, false)
    }

    /// Returns a context identical to `self` but offering session tickets.
    pub fn with_tickets(self: Arc<Self>) -> Arc<Self> {
        Self::configured(
            self.chain.clone(),
            self.ticket_secret,
            self.ritm_terminator,
            true,
        )
    }

    pub(crate) fn next_session_id(&self) -> Vec<u8> {
        let c = self.session_counter.fetch_add(1, Ordering::Relaxed);
        let mut seed = Vec::with_capacity(28);
        seed.extend_from_slice(b"session-id");
        seed.extend_from_slice(&c.to_be_bytes());
        let d = Digest20::hash(seed);
        let mut id = d.as_bytes().to_vec();
        id.extend_from_slice(&c.to_be_bytes());
        id.truncate(32);
        id
    }
}

/// Events a server connection reports to its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// Handshake finished (`resumed` = abbreviated handshake).
    HandshakeComplete {
        /// Whether this was a resumption.
        resumed: bool,
    },
    /// Application data arrived.
    ReceivedData(Vec<u8>),
    /// The peer closed or failed the connection.
    ConnectionClosed,
}

/// One server-side TLS connection (lockstep shim over [`ServerEngine`]).
#[derive(Debug)]
pub struct ServerConnection {
    engine: ServerEngine,
}

impl ServerConnection {
    /// Creates a connection bound to the shared context; `random` is the
    /// server random for this connection.
    pub fn new(ctx: Arc<ServerContext>, random: [u8; 32]) -> Self {
        ServerConnection {
            engine: ServerEngine::new(ctx, random),
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.engine.is_established()
    }

    /// Consumes one inbound record and produces response records + events.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`]; the connection then refuses further input.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<ServerEvent>), TlsError> {
        self.engine.process_record(record, now)
    }

    /// Sends application data (only once established).
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] if the handshake has not completed.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        self.engine.send_data(data)
    }

    /// The underlying sans-io engine (for byte-granular driving).
    pub fn into_engine(self) -> ServerEngine {
        self.engine
    }
}

/// Client-side configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server name to connect to (used for SNI and the session cache).
    pub server_name: String,
    /// Pinned trust anchors for chain validation.
    pub anchors: TrustAnchors,
    /// Whether to request RITM protection (ClientHello extension, §III).
    pub enable_ritm: bool,
}

/// Events a client connection reports to its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// Handshake finished; for a full handshake the validated chain was
    /// already surfaced via [`ClientEvent::CertificateReceived`].
    HandshakeComplete {
        /// Whether this was a resumption.
        resumed: bool,
        /// Whether the server confirmed RITM support (close-to-server
        /// deployment, §IV) — used for downgrade protection.
        server_confirms_ritm: bool,
    },
    /// The server's chain passed standard validation (client step 5a).
    CertificateReceived(CertificateChain),
    /// Application data arrived.
    ReceivedData(Vec<u8>),
    /// A RITM revocation-status record arrived (opaque payload; the
    /// `ritm-client` crate decodes and enforces it).
    RitmStatus(Vec<u8>),
    /// The connection ended.
    ConnectionClosed,
}

/// One client-side TLS connection (lockstep shim over [`ClientEngine`]).
#[derive(Debug)]
pub struct TlsClient {
    engine: ClientEngine,
}

impl TlsClient {
    /// Creates a client connection; `resume_from` enables an abbreviated
    /// handshake using a cached session.
    pub fn new(config: ClientConfig, random: [u8; 32], resume_from: Option<SessionState>) -> Self {
        TlsClient {
            engine: ClientEngine::new(config, random, resume_from),
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.engine.is_established()
    }

    /// The validated server chain (present after a full handshake).
    pub fn server_chain(&self) -> Option<&CertificateChain> {
        self.engine.server_chain()
    }

    /// Session ticket issued by the server, if any.
    pub fn take_ticket(&mut self) -> Option<crate::handshake::SessionTicket> {
        self.engine.take_ticket()
    }

    /// The established session's state (for caching in a
    /// [`ClientSessionCache`](crate::session::ClientSessionCache)).
    pub fn session_state(&self, now: u64) -> Option<SessionState> {
        self.engine.session_state(now)
    }

    /// Starts the handshake, producing the ClientHello record.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) -> TlsRecord {
        self.engine.start()
    }

    /// Consumes one inbound record and produces response records + events.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`]; the connection then refuses further input.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<ClientEvent>), TlsError> {
        self.engine.process_record(record, now)
    }

    /// Sends application data (only once established).
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] if the handshake has not completed.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        self.engine.send_data(data)
    }

    /// Aborts the connection with a fatal alert (e.g. on a revoked
    /// certificate — paper §III steps 5/7).
    pub fn abort(&mut self, description: AlertDescription) -> TlsRecord {
        self.engine.abort(description)
    }

    /// The underlying sans-io engine (for byte-granular driving).
    pub fn into_engine(self) -> ClientEngine {
        self.engine
    }
}

/// Drives a full in-memory handshake between `client` and `server`,
/// returning all events both sides emitted. Used heavily by tests and by
/// higher-level crates that do not need packet-level simulation.
pub fn drive_handshake(
    client: &mut TlsClient,
    server: &mut ServerConnection,
    now: u64,
) -> Result<(Vec<ClientEvent>, Vec<ServerEvent>), TlsError> {
    let mut client_events = Vec::new();
    let mut server_events = Vec::new();
    let mut to_server = vec![client.start()];
    let mut to_client: Vec<TlsRecord> = Vec::new();
    for _ in 0..8 {
        for rec in to_server.drain(..) {
            let (outs, evs) = server.process_record(&rec, now)?;
            to_client.extend(outs);
            server_events.extend(evs);
        }
        for rec in to_client.drain(..) {
            let (outs, evs) = client.process_record(&rec, now)?;
            to_server.extend(outs);
            client_events.extend(evs);
        }
        if client.is_established() && server.is_established() && to_server.is_empty() {
            break;
        }
    }
    Ok((client_events, server_events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{Certificate, TrustAnchors};
    use crate::handshake::DEFAULT_CIPHER_SUITE;
    use crate::record::ContentType;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaId, SerialNumber};

    const NOW: u64 = 1_400_000_000;

    fn test_pki() -> (CertificateChain, TrustAnchors) {
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let server_key = SigningKey::from_seed([2u8; 32]);
        let ca = CaId::from_name("CA1");
        let leaf = Certificate::issue(
            &ca_key,
            ca,
            SerialNumber::from_u24(0x073e10),
            "example.com",
            NOW - 100,
            NOW + 100_000,
            server_key.verifying_key(),
            false,
        );
        let mut anchors = TrustAnchors::new();
        anchors.add(ca, ca_key.verifying_key());
        (CertificateChain(vec![leaf]), anchors)
    }

    fn client_config(anchors: TrustAnchors) -> ClientConfig {
        ClientConfig {
            server_name: "example.com".into(),
            anchors,
            enable_ritm: true,
        }
    }

    #[test]
    fn full_handshake_completes() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain.clone(), [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        let (cev, sev) = drive_handshake(&mut client, &mut server, NOW).unwrap();
        assert!(client.is_established());
        assert!(server.is_established());
        assert!(cev.contains(&ClientEvent::HandshakeComplete {
            resumed: false,
            server_confirms_ritm: false
        }));
        assert!(sev.contains(&ServerEvent::HandshakeComplete { resumed: false }));
        assert_eq!(client.server_chain(), Some(&chain));
    }

    #[test]
    fn ritm_terminator_confirms_support() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new_ritm_terminator(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        let (cev, _) = drive_handshake(&mut client, &mut server, NOW).unwrap();
        assert!(cev.iter().any(|e| matches!(
            e,
            ClientEvent::HandshakeComplete {
                server_confirms_ritm: true,
                ..
            }
        )));
    }

    #[test]
    fn session_id_resumption_skips_certificate() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx.clone(), [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors.clone()), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let session = client.session_state(NOW).unwrap();

        let mut server2 = ServerConnection::new(ctx, [3u8; 32]);
        let mut client2 = TlsClient::new(client_config(anchors), [4u8; 32], Some(session));
        let (cev, sev) = drive_handshake(&mut client2, &mut server2, NOW + 10).unwrap();
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::HandshakeComplete { resumed: true, .. })));
        assert!(sev.contains(&ServerEvent::HandshakeComplete { resumed: true }));
        // No Certificate message was delivered on resumption.
        assert!(!cev
            .iter()
            .any(|e| matches!(e, ClientEvent::CertificateReceived(_))));
    }

    #[test]
    fn session_tickets_are_issued_and_usable() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]).with_tickets();
        let mut server = ServerConnection::new(ctx.clone(), [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors.clone()), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let ticket = client.take_ticket().expect("ticket issued");
        // The server can recover session state from its own ticket.
        let recovered = ctx
            .cache
            .lock()
            .accept_ticket(&ticket)
            .expect("valid ticket");
        assert_eq!(recovered.cipher_suite, DEFAULT_CIPHER_SUITE);
    }

    #[test]
    fn unknown_session_id_falls_back_to_full_handshake() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let bogus = SessionState {
            session_id: vec![7; 32],
            cipher_suite: DEFAULT_CIPHER_SUITE,
            cert_chain_hash: Digest20::ZERO,
            established_at: NOW,
        };
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], Some(bogus));
        let (cev, _) = drive_handshake(&mut client, &mut server, NOW).unwrap();
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::HandshakeComplete { resumed: false, .. })));
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::CertificateReceived(_))));
    }

    #[test]
    fn expired_session_falls_back_to_full_handshake() {
        // Satellite: a cached session past its ticket lifetime must not
        // resume — the server treats it like an unknown id.
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx.clone(), [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors.clone()), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let session = client.session_state(NOW).unwrap();

        // Well past SESSION_LIFETIME_SECS: full handshake with certificate.
        let later = NOW + crate::session::SESSION_LIFETIME_SECS + 1;
        let mut server2 = ServerConnection::new(ctx.clone(), [3u8; 32]);
        let mut client2 = TlsClient::new(
            client_config(anchors.clone()),
            [4u8; 32],
            Some(session.clone()),
        );
        let (cev, sev) = drive_handshake(&mut client2, &mut server2, later).unwrap();
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::HandshakeComplete { resumed: false, .. })));
        assert!(sev.contains(&ServerEvent::HandshakeComplete { resumed: false }));
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::CertificateReceived(_))));

        // Just inside the lifetime the same session still resumes.
        let mut server3 = ServerConnection::new(ctx, [5u8; 32]);
        let mut client3 = TlsClient::new(client_config(anchors), [6u8; 32], Some(session));
        let (cev, _) = drive_handshake(
            &mut client3,
            &mut server3,
            NOW + crate::session::SESSION_LIFETIME_SECS - 1,
        )
        .unwrap();
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::HandshakeComplete { resumed: true, .. })));
    }

    #[test]
    fn untrusted_chain_fails_handshake() {
        let (chain, _) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(TrustAnchors::new()), [2u8; 32], None);
        let err = drive_handshake(&mut client, &mut server, NOW).unwrap_err();
        assert!(matches!(err, TlsError::Certificate(_)));
    }

    #[test]
    fn tampered_server_hello_breaks_finished() {
        // A MITM rewriting handshake bytes is caught by the transcript
        // binding (§V): here the client sees a modified ServerHello.
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);

        let ch = client.start();
        let (srv_out, _) = server.process_record(&ch, NOW).unwrap();
        // Tamper: flip a byte of the server random inside the first record.
        let mut tampered = srv_out[0].clone();
        tampered.payload[10] ^= 0xff;
        let (cli_out, _) = client.process_record(&tampered, NOW).unwrap();
        // Client's Finished is now computed over a different transcript;
        // the server must reject it.
        let mut failed = false;
        for rec in cli_out {
            if server.process_record(&rec, NOW).is_err() {
                failed = true;
            }
        }
        assert!(failed, "server accepted a handshake with tampered bytes");
    }

    #[test]
    fn data_flows_after_establishment() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();

        let rec = client.send_data(b"GET /").unwrap();
        let (_, evs) = server.process_record(&rec, NOW).unwrap();
        assert_eq!(evs, vec![ServerEvent::ReceivedData(b"GET /".to_vec())]);

        let rec = server.send_data(b"200 OK").unwrap();
        let (_, evs) = client.process_record(&rec, NOW).unwrap();
        assert_eq!(evs, vec![ClientEvent::ReceivedData(b"200 OK".to_vec())]);
    }

    #[test]
    fn data_before_establishment_rejected() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        assert!(client.send_data(b"x").is_err());
        assert!(server.send_data(b"x").is_err());
        let rec = TlsRecord::new(ContentType::ApplicationData, vec![1]);
        assert!(server.process_record(&rec, NOW).is_err());
    }

    #[test]
    fn ritm_status_record_surfaces_to_client() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let rec = TlsRecord::new(ContentType::RitmStatus, vec![0xAB; 64]);
        let (_, evs) = client.process_record(&rec, NOW).unwrap();
        assert_eq!(evs, vec![ClientEvent::RitmStatus(vec![0xAB; 64])]);
        // And servers ignore stray status records.
        let (outs, evs) = server.process_record(&rec, NOW).unwrap();
        assert!(outs.is_empty() && evs.is_empty());
    }

    #[test]
    fn client_abort_closes_server() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let alert = client.abort(AlertDescription::CertificateRevoked);
        let err = server.process_record(&alert, NOW).unwrap_err();
        assert!(matches!(err, TlsError::FatalAlert(_)));
        assert!(client.send_data(b"x").is_err(), "client is closed");
    }
}
