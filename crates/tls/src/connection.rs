//! TLS client/server connection state machines.
//!
//! These implement enough of TLS 1.2 for RITM's purposes: a plaintext
//! negotiation phase carrying real certificate chains (what the RA's DPI
//! inspects), Finished messages bound to the handshake transcript (so
//! middlebox *tampering* with the handshake is detected, §V "MITM and
//! Blocking Attack"), session-id and session-ticket resumption, alerts, and
//! application-data records. Record payload encryption is modelled as
//! plaintext (documented in DESIGN.md): RITM never reads post-handshake
//! payloads, only record boundaries.

use crate::alert::{Alert, AlertDescription};
use crate::certificate::{CertError, CertificateChain, TrustAnchors};
use crate::extensions::Extension;
use crate::handshake::{ClientHello, HandshakeMessage, ServerHello, DEFAULT_CIPHER_SUITE};
use crate::record::{ContentType, TlsRecord};
use crate::session::{ServerSessionCache, SessionState};
use parking_lot::Mutex;
use ritm_crypto::digest::Digest20;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors surfaced by the connection state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// A message arrived that the current state cannot accept.
    UnexpectedMessage(&'static str),
    /// Wire-format decoding failed.
    Decode(ritm_crypto::wire::DecodeError),
    /// Certificate chain validation failed.
    Certificate(CertError),
    /// The peer's Finished did not match the transcript.
    BadFinished,
    /// No common cipher suite.
    NoCipherOverlap,
    /// The peer sent a fatal alert.
    FatalAlert(Alert),
    /// The connection was already closed or failed.
    Closed,
}

impl core::fmt::Display for TlsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TlsError::UnexpectedMessage(s) => write!(f, "unexpected message in state {s}"),
            TlsError::Decode(e) => write!(f, "tls decode error: {e}"),
            TlsError::Certificate(e) => write!(f, "certificate validation failed: {e}"),
            TlsError::BadFinished => f.write_str("finished verify-data mismatch"),
            TlsError::NoCipherOverlap => f.write_str("no common cipher suite"),
            TlsError::FatalAlert(a) => write!(f, "peer sent fatal alert {:?}", a.description),
            TlsError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for TlsError {}

impl From<ritm_crypto::wire::DecodeError> for TlsError {
    fn from(e: ritm_crypto::wire::DecodeError) -> Self {
        TlsError::Decode(e)
    }
}

impl From<CertError> for TlsError {
    fn from(e: CertError) -> Self {
        TlsError::Certificate(e)
    }
}

fn finished_verify_data(transcript: &[u8], label: &[u8]) -> [u8; 12] {
    let mut buf = Vec::with_capacity(transcript.len() + label.len());
    buf.extend_from_slice(label);
    buf.extend_from_slice(transcript);
    let d = Digest20::hash(buf);
    let mut out = [0u8; 12];
    out.copy_from_slice(&d.as_bytes()[..12]);
    out
}

/// Long-lived server-side state shared across connections: the certificate
/// chain, resumption caches, and deployment flags.
#[derive(Debug)]
pub struct ServerContext {
    /// The chain presented in full handshakes.
    pub chain: CertificateChain,
    /// Whether this endpoint is a RITM-augmented TLS terminator (§IV,
    /// close-to-servers model): adds the confirmation extension.
    pub ritm_terminator: bool,
    /// Whether session tickets are offered.
    pub offer_tickets: bool,
    ticket_secret: [u8; 20],
    cache: Mutex<ServerSessionCache>,
    session_counter: AtomicU64,
}

impl ServerContext {
    /// Creates a server context with all options explicit.
    pub fn configured(
        chain: CertificateChain,
        ticket_secret: [u8; 20],
        ritm_terminator: bool,
        offer_tickets: bool,
    ) -> Arc<Self> {
        Arc::new(ServerContext {
            chain,
            ritm_terminator,
            offer_tickets,
            ticket_secret,
            cache: Mutex::new(ServerSessionCache::new(ticket_secret)),
            session_counter: AtomicU64::new(1),
        })
    }

    /// Creates a plain server context.
    pub fn new(chain: CertificateChain, ticket_secret: [u8; 20]) -> Arc<Self> {
        Self::configured(chain, ticket_secret, false, false)
    }

    /// Creates a RITM-terminator context (adds the ServerHello confirmation).
    pub fn new_ritm_terminator(chain: CertificateChain, ticket_secret: [u8; 20]) -> Arc<Self> {
        Self::configured(chain, ticket_secret, true, false)
    }

    /// Returns a context identical to `self` but offering session tickets.
    pub fn with_tickets(self: Arc<Self>) -> Arc<Self> {
        Self::configured(
            self.chain.clone(),
            self.ticket_secret,
            self.ritm_terminator,
            true,
        )
    }

    fn next_session_id(&self) -> Vec<u8> {
        let c = self.session_counter.fetch_add(1, Ordering::Relaxed);
        let mut seed = Vec::with_capacity(28);
        seed.extend_from_slice(b"session-id");
        seed.extend_from_slice(&c.to_be_bytes());
        let d = Digest20::hash(seed);
        let mut id = d.as_bytes().to_vec();
        id.extend_from_slice(&c.to_be_bytes());
        id.truncate(32);
        id
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    AwaitClientHello,
    AwaitClientKeyExchange,
    AwaitClientFinished { resumed: bool },
    Established,
    Failed,
}

/// Events a server connection reports to its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// Handshake finished (`resumed` = abbreviated handshake).
    HandshakeComplete {
        /// Whether this was a resumption.
        resumed: bool,
    },
    /// Application data arrived.
    ReceivedData(Vec<u8>),
    /// The peer closed or failed the connection.
    ConnectionClosed,
}

/// One server-side TLS connection.
#[derive(Debug)]
pub struct ServerConnection {
    ctx: Arc<ServerContext>,
    random: [u8; 32],
    state: ServerState,
    transcript: Vec<u8>,
    session_id: Vec<u8>,
    cert_chain_hash: Digest20,
    now: u64,
}

impl ServerConnection {
    /// Creates a connection bound to the shared context; `random` is the
    /// server random for this connection.
    pub fn new(ctx: Arc<ServerContext>, random: [u8; 32]) -> Self {
        let cert_chain_hash = Digest20::hash(ctx.chain.to_bytes());
        ServerConnection {
            ctx,
            random,
            state: ServerState::AwaitClientHello,
            transcript: Vec::new(),
            session_id: Vec::new(),
            cert_chain_hash,
            now: 0,
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == ServerState::Established
    }

    /// Consumes one inbound record and produces response records + events.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`]; the connection then refuses further input.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<ServerEvent>), TlsError> {
        self.now = now;
        if self.state == ServerState::Failed {
            return Err(TlsError::Closed);
        }
        let mut out = Vec::new();
        let mut events = Vec::new();
        match record.content_type {
            ContentType::Handshake => {
                for msg in HandshakeMessage::parse_all(&record.payload)? {
                    self.handle_handshake(msg, &mut out, &mut events)
                        .inspect_err(|_| self.state = ServerState::Failed)?;
                }
            }
            ContentType::ApplicationData => {
                if self.state != ServerState::Established {
                    self.state = ServerState::Failed;
                    return Err(TlsError::UnexpectedMessage("data before established"));
                }
                events.push(ServerEvent::ReceivedData(record.payload.clone()));
            }
            ContentType::Alert => {
                let alert = Alert::from_bytes(&record.payload)?;
                self.state = ServerState::Failed;
                events.push(ServerEvent::ConnectionClosed);
                if alert.level == crate::alert::AlertLevel::Fatal
                    && alert.description != AlertDescription::CloseNotify
                {
                    return Err(TlsError::FatalAlert(alert));
                }
            }
            ContentType::ChangeCipherSpec => {}
            ContentType::RitmStatus => {
                // Servers ignore RITM records (they are for the client; a
                // stray one indicates an RA bug but must not kill the
                // connection — RAs are non-invasive, §VII-F).
            }
        }
        Ok((out, events))
    }

    fn handle_handshake(
        &mut self,
        msg: HandshakeMessage,
        out: &mut Vec<TlsRecord>,
        events: &mut Vec<ServerEvent>,
    ) -> Result<(), TlsError> {
        match (&self.state, msg) {
            (ServerState::AwaitClientHello, HandshakeMessage::ClientHello(ch)) => {
                // The server ignores the RITM extension (paper §III step 3).
                if !ch.cipher_suites.contains(&DEFAULT_CIPHER_SUITE) {
                    return Err(TlsError::NoCipherOverlap);
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ClientHello(ch.clone()).to_bytes());

                // Try session-id resumption.
                let resumed = !ch.session_id.is_empty()
                    && self.ctx.cache.lock().lookup(&ch.session_id).is_some();
                let mut extensions = Vec::new();
                if self.ctx.ritm_terminator {
                    extensions.push(Extension::ritm_confirmation());
                }
                if resumed {
                    self.session_id = ch.session_id.clone();
                    let sh = HandshakeMessage::ServerHello(ServerHello {
                        version: 0x0303,
                        random: self.random,
                        session_id: self.session_id.clone(),
                        cipher_suite: DEFAULT_CIPHER_SUITE,
                        extensions,
                    });
                    self.transcript.extend_from_slice(&sh.to_bytes());
                    let vd = finished_verify_data(&self.transcript, b"server finished");
                    let fin = HandshakeMessage::Finished(vd);
                    self.transcript.extend_from_slice(&fin.to_bytes());
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&[sh, fin]),
                    ));
                    self.state = ServerState::AwaitClientFinished { resumed: true };
                } else {
                    self.session_id = self.ctx.next_session_id();
                    let sh = HandshakeMessage::ServerHello(ServerHello {
                        version: 0x0303,
                        random: self.random,
                        session_id: self.session_id.clone(),
                        cipher_suite: DEFAULT_CIPHER_SUITE,
                        extensions,
                    });
                    let cert = HandshakeMessage::Certificate(self.ctx.chain.clone());
                    let done = HandshakeMessage::ServerHelloDone;
                    for m in [&sh, &cert, &done] {
                        self.transcript.extend_from_slice(&m.to_bytes());
                    }
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&[sh, cert, done]),
                    ));
                    self.state = ServerState::AwaitClientKeyExchange;
                }
                Ok(())
            }
            (ServerState::AwaitClientKeyExchange, HandshakeMessage::ClientKeyExchange(data)) => {
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ClientKeyExchange(data).to_bytes());
                self.state = ServerState::AwaitClientFinished { resumed: false };
                Ok(())
            }
            (ServerState::AwaitClientFinished { resumed }, HandshakeMessage::Finished(vd)) => {
                let resumed = *resumed;
                let expect = finished_verify_data(&self.transcript, b"client finished");
                if vd != expect {
                    return Err(TlsError::BadFinished);
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::Finished(vd).to_bytes());
                if !resumed {
                    // Full handshake: store the session, maybe a ticket,
                    // then send server Finished.
                    let state = SessionState {
                        session_id: self.session_id.clone(),
                        cipher_suite: DEFAULT_CIPHER_SUITE,
                        cert_chain_hash: self.cert_chain_hash,
                        established_at: self.now,
                    };
                    let mut msgs = Vec::new();
                    if self.ctx.offer_tickets {
                        let ticket = self.ctx.cache.lock().mint_ticket(&state, 3600);
                        let t = HandshakeMessage::NewSessionTicket(ticket);
                        self.transcript.extend_from_slice(&t.to_bytes());
                        msgs.push(t);
                    }
                    self.ctx.cache.lock().store(state);
                    let vd = finished_verify_data(&self.transcript, b"server finished");
                    let fin = HandshakeMessage::Finished(vd);
                    self.transcript.extend_from_slice(&fin.to_bytes());
                    msgs.push(fin);
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&msgs),
                    ));
                }
                self.state = ServerState::Established;
                events.push(ServerEvent::HandshakeComplete { resumed });
                Ok(())
            }
            (state, msg) => {
                let _ = (state, msg);
                Err(TlsError::UnexpectedMessage("server state machine"))
            }
        }
    }

    /// Sends application data (only once established).
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] if the handshake has not completed.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        if self.state != ServerState::Established {
            return Err(TlsError::Closed);
        }
        Ok(TlsRecord::new(ContentType::ApplicationData, data.to_vec()))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    AwaitServerHello,
    AwaitServerHelloDone,
    AwaitServerFinished { resumed: bool },
    Established,
    Failed,
}

/// Client-side configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server name to connect to (used for SNI and the session cache).
    pub server_name: String,
    /// Pinned trust anchors for chain validation.
    pub anchors: TrustAnchors,
    /// Whether to request RITM protection (ClientHello extension, §III).
    pub enable_ritm: bool,
}

/// Events a client connection reports to its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// Handshake finished; for a full handshake the validated chain was
    /// already surfaced via [`ClientEvent::CertificateReceived`].
    HandshakeComplete {
        /// Whether this was a resumption.
        resumed: bool,
        /// Whether the server confirmed RITM support (close-to-server
        /// deployment, §IV) — used for downgrade protection.
        server_confirms_ritm: bool,
    },
    /// The server's chain passed standard validation (client step 5a).
    CertificateReceived(CertificateChain),
    /// Application data arrived.
    ReceivedData(Vec<u8>),
    /// A RITM revocation-status record arrived (opaque payload; the
    /// `ritm-client` crate decodes and enforces it).
    RitmStatus(Vec<u8>),
    /// The connection ended.
    ConnectionClosed,
}

/// One client-side TLS connection.
#[derive(Debug)]
pub struct TlsClient {
    config: ClientConfig,
    random: [u8; 32],
    state: ClientState,
    transcript: Vec<u8>,
    resumption: Option<SessionState>,
    server_chain: Option<CertificateChain>,
    pending_ticket: Option<crate::handshake::SessionTicket>,
    session_id: Vec<u8>,
    server_confirms_ritm: bool,
}

impl TlsClient {
    /// Creates a client connection; `resume_from` enables an abbreviated
    /// handshake using a cached session.
    pub fn new(config: ClientConfig, random: [u8; 32], resume_from: Option<SessionState>) -> Self {
        TlsClient {
            config,
            random,
            state: ClientState::Start,
            transcript: Vec::new(),
            resumption: resume_from,
            server_chain: None,
            pending_ticket: None,
            session_id: Vec::new(),
            server_confirms_ritm: false,
        }
    }

    /// `true` once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == ClientState::Established
    }

    /// The validated server chain (present after a full handshake).
    pub fn server_chain(&self) -> Option<&CertificateChain> {
        self.server_chain.as_ref()
    }

    /// Session ticket issued by the server, if any.
    pub fn take_ticket(&mut self) -> Option<crate::handshake::SessionTicket> {
        self.pending_ticket.take()
    }

    /// The established session's state (for caching in a
    /// [`ClientSessionCache`](crate::session::ClientSessionCache)).
    pub fn session_state(&self, now: u64) -> Option<SessionState> {
        if self.state != ClientState::Established {
            return None;
        }
        Some(SessionState {
            session_id: self.session_id.clone(),
            cipher_suite: DEFAULT_CIPHER_SUITE,
            cert_chain_hash: self
                .server_chain
                .as_ref()
                .map(|c| Digest20::hash(c.to_bytes()))
                .or_else(|| self.resumption.as_ref().map(|r| r.cert_chain_hash))?,
            established_at: now,
        })
    }

    /// Starts the handshake, producing the ClientHello record.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) -> TlsRecord {
        assert_eq!(self.state, ClientState::Start, "start() called twice");
        let mut extensions = vec![Extension::sni(&self.config.server_name)];
        if self.config.enable_ritm {
            extensions.push(Extension::ritm_request());
        }
        let session_id = self
            .resumption
            .as_ref()
            .map(|s| s.session_id.clone())
            .unwrap_or_default();
        let ch = HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random: self.random,
            session_id,
            cipher_suites: vec![DEFAULT_CIPHER_SUITE, 0x002f, 0x0035],
            extensions,
        });
        self.transcript.extend_from_slice(&ch.to_bytes());
        self.state = ClientState::AwaitServerHello;
        TlsRecord::new(ContentType::Handshake, HandshakeMessage::encode_all(&[ch]))
    }

    /// Consumes one inbound record and produces response records + events.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`]; the connection then refuses further input.
    pub fn process_record(
        &mut self,
        record: &TlsRecord,
        now: u64,
    ) -> Result<(Vec<TlsRecord>, Vec<ClientEvent>), TlsError> {
        if self.state == ClientState::Failed {
            return Err(TlsError::Closed);
        }
        let mut out = Vec::new();
        let mut events = Vec::new();
        match record.content_type {
            ContentType::Handshake => {
                for msg in HandshakeMessage::parse_all(&record.payload)? {
                    self.handle_handshake(msg, now, &mut out, &mut events)
                        .inspect_err(|_| self.state = ClientState::Failed)?;
                }
            }
            ContentType::ApplicationData => {
                if self.state != ClientState::Established {
                    self.state = ClientState::Failed;
                    return Err(TlsError::UnexpectedMessage("data before established"));
                }
                events.push(ClientEvent::ReceivedData(record.payload.clone()));
            }
            ContentType::RitmStatus => {
                events.push(ClientEvent::RitmStatus(record.payload.clone()));
            }
            ContentType::Alert => {
                let alert = Alert::from_bytes(&record.payload)?;
                self.state = ClientState::Failed;
                events.push(ClientEvent::ConnectionClosed);
                if alert.level == crate::alert::AlertLevel::Fatal
                    && alert.description != AlertDescription::CloseNotify
                {
                    return Err(TlsError::FatalAlert(alert));
                }
            }
            ContentType::ChangeCipherSpec => {}
        }
        Ok((out, events))
    }

    fn handle_handshake(
        &mut self,
        msg: HandshakeMessage,
        now: u64,
        out: &mut Vec<TlsRecord>,
        events: &mut Vec<ClientEvent>,
    ) -> Result<(), TlsError> {
        match (&self.state, msg) {
            (ClientState::AwaitServerHello, HandshakeMessage::ServerHello(sh)) => {
                self.server_confirms_ritm = sh.confirms_ritm();
                let resumed = self
                    .resumption
                    .as_ref()
                    .is_some_and(|r| r.session_id == sh.session_id);
                self.session_id = sh.session_id.clone();
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ServerHello(sh).to_bytes());
                self.state = if resumed {
                    ClientState::AwaitServerFinished { resumed: true }
                } else {
                    ClientState::AwaitServerHelloDone
                };
                Ok(())
            }
            (ClientState::AwaitServerHelloDone, HandshakeMessage::Certificate(chain)) => {
                // Standard validation — the client's step 5a. The RITM
                // revocation check happens in ritm-client on top.
                chain.validate(&self.config.anchors, now)?;
                self.transcript
                    .extend_from_slice(&HandshakeMessage::Certificate(chain.clone()).to_bytes());
                events.push(ClientEvent::CertificateReceived(chain.clone()));
                self.server_chain = Some(chain);
                Ok(())
            }
            (ClientState::AwaitServerHelloDone, HandshakeMessage::ServerHelloDone) => {
                if self.server_chain.is_none() {
                    return Err(TlsError::UnexpectedMessage("hello-done before certificate"));
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::ServerHelloDone.to_bytes());
                let cke = HandshakeMessage::ClientKeyExchange(vec![0x42; 48]);
                self.transcript.extend_from_slice(&cke.to_bytes());
                let vd = finished_verify_data(&self.transcript, b"client finished");
                let fin = HandshakeMessage::Finished(vd);
                self.transcript.extend_from_slice(&fin.to_bytes());
                out.push(TlsRecord::new(
                    ContentType::Handshake,
                    HandshakeMessage::encode_all(&[cke, fin]),
                ));
                self.state = ClientState::AwaitServerFinished { resumed: false };
                Ok(())
            }
            (ClientState::AwaitServerFinished { .. }, HandshakeMessage::NewSessionTicket(t)) => {
                self.transcript
                    .extend_from_slice(&HandshakeMessage::NewSessionTicket(t.clone()).to_bytes());
                self.pending_ticket = Some(t);
                Ok(())
            }
            (ClientState::AwaitServerFinished { resumed }, HandshakeMessage::Finished(vd)) => {
                let resumed = *resumed;
                let expect = finished_verify_data(&self.transcript, b"server finished");
                if vd != expect {
                    return Err(TlsError::BadFinished);
                }
                self.transcript
                    .extend_from_slice(&HandshakeMessage::Finished(vd).to_bytes());
                if resumed {
                    // Abbreviated handshake: client Finished goes last.
                    let vd = finished_verify_data(&self.transcript, b"client finished");
                    let fin = HandshakeMessage::Finished(vd);
                    self.transcript.extend_from_slice(&fin.to_bytes());
                    out.push(TlsRecord::new(
                        ContentType::Handshake,
                        HandshakeMessage::encode_all(&[fin]),
                    ));
                }
                self.state = ClientState::Established;
                events.push(ClientEvent::HandshakeComplete {
                    resumed,
                    server_confirms_ritm: self.server_confirms_ritm,
                });
                Ok(())
            }
            (state, msg) => {
                let _ = (state, msg);
                Err(TlsError::UnexpectedMessage("client state machine"))
            }
        }
    }

    /// Sends application data (only once established).
    ///
    /// # Errors
    ///
    /// [`TlsError::Closed`] if the handshake has not completed.
    pub fn send_data(&mut self, data: &[u8]) -> Result<TlsRecord, TlsError> {
        if self.state != ClientState::Established {
            return Err(TlsError::Closed);
        }
        Ok(TlsRecord::new(ContentType::ApplicationData, data.to_vec()))
    }

    /// Aborts the connection with a fatal alert (e.g. on a revoked
    /// certificate — paper §III steps 5/7).
    pub fn abort(&mut self, description: AlertDescription) -> TlsRecord {
        self.state = ClientState::Failed;
        TlsRecord::new(ContentType::Alert, Alert::fatal(description).to_bytes())
    }
}

/// Drives a full in-memory handshake between `client` and `server`,
/// returning all events both sides emitted. Used heavily by tests and by
/// higher-level crates that do not need packet-level simulation.
pub fn drive_handshake(
    client: &mut TlsClient,
    server: &mut ServerConnection,
    now: u64,
) -> Result<(Vec<ClientEvent>, Vec<ServerEvent>), TlsError> {
    let mut client_events = Vec::new();
    let mut server_events = Vec::new();
    let mut to_server = vec![client.start()];
    let mut to_client: Vec<TlsRecord> = Vec::new();
    for _ in 0..8 {
        for rec in to_server.drain(..) {
            let (outs, evs) = server.process_record(&rec, now)?;
            to_client.extend(outs);
            server_events.extend(evs);
        }
        for rec in to_client.drain(..) {
            let (outs, evs) = client.process_record(&rec, now)?;
            to_server.extend(outs);
            client_events.extend(evs);
        }
        if client.is_established() && server.is_established() && to_server.is_empty() {
            break;
        }
    }
    Ok((client_events, server_events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{Certificate, TrustAnchors};
    use ritm_crypto::ed25519::SigningKey;
    use ritm_dictionary::{CaId, SerialNumber};

    const NOW: u64 = 1_400_000_000;

    fn test_pki() -> (CertificateChain, TrustAnchors) {
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let server_key = SigningKey::from_seed([2u8; 32]);
        let ca = CaId::from_name("CA1");
        let leaf = Certificate::issue(
            &ca_key,
            ca,
            SerialNumber::from_u24(0x073e10),
            "example.com",
            NOW - 100,
            NOW + 100_000,
            server_key.verifying_key(),
            false,
        );
        let mut anchors = TrustAnchors::new();
        anchors.add(ca, ca_key.verifying_key());
        (CertificateChain(vec![leaf]), anchors)
    }

    fn client_config(anchors: TrustAnchors) -> ClientConfig {
        ClientConfig {
            server_name: "example.com".into(),
            anchors,
            enable_ritm: true,
        }
    }

    #[test]
    fn full_handshake_completes() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain.clone(), [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        let (cev, sev) = drive_handshake(&mut client, &mut server, NOW).unwrap();
        assert!(client.is_established());
        assert!(server.is_established());
        assert!(cev.contains(&ClientEvent::HandshakeComplete {
            resumed: false,
            server_confirms_ritm: false
        }));
        assert!(sev.contains(&ServerEvent::HandshakeComplete { resumed: false }));
        assert_eq!(client.server_chain(), Some(&chain));
    }

    #[test]
    fn ritm_terminator_confirms_support() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new_ritm_terminator(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        let (cev, _) = drive_handshake(&mut client, &mut server, NOW).unwrap();
        assert!(cev.iter().any(|e| matches!(
            e,
            ClientEvent::HandshakeComplete {
                server_confirms_ritm: true,
                ..
            }
        )));
    }

    #[test]
    fn session_id_resumption_skips_certificate() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx.clone(), [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors.clone()), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let session = client.session_state(NOW).unwrap();

        let mut server2 = ServerConnection::new(ctx, [3u8; 32]);
        let mut client2 = TlsClient::new(client_config(anchors), [4u8; 32], Some(session));
        let (cev, sev) = drive_handshake(&mut client2, &mut server2, NOW + 10).unwrap();
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::HandshakeComplete { resumed: true, .. })));
        assert!(sev.contains(&ServerEvent::HandshakeComplete { resumed: true }));
        // No Certificate message was delivered on resumption.
        assert!(!cev
            .iter()
            .any(|e| matches!(e, ClientEvent::CertificateReceived(_))));
    }

    #[test]
    fn session_tickets_are_issued_and_usable() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]).with_tickets();
        let mut server = ServerConnection::new(ctx.clone(), [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors.clone()), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let ticket = client.take_ticket().expect("ticket issued");
        // The server can recover session state from its own ticket.
        let recovered = ctx
            .cache
            .lock()
            .accept_ticket(&ticket)
            .expect("valid ticket");
        assert_eq!(recovered.cipher_suite, DEFAULT_CIPHER_SUITE);
    }

    #[test]
    fn unknown_session_id_falls_back_to_full_handshake() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let bogus = SessionState {
            session_id: vec![7; 32],
            cipher_suite: DEFAULT_CIPHER_SUITE,
            cert_chain_hash: Digest20::ZERO,
            established_at: NOW,
        };
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], Some(bogus));
        let (cev, _) = drive_handshake(&mut client, &mut server, NOW).unwrap();
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::HandshakeComplete { resumed: false, .. })));
        assert!(cev
            .iter()
            .any(|e| matches!(e, ClientEvent::CertificateReceived(_))));
    }

    #[test]
    fn untrusted_chain_fails_handshake() {
        let (chain, _) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(TrustAnchors::new()), [2u8; 32], None);
        let err = drive_handshake(&mut client, &mut server, NOW).unwrap_err();
        assert!(matches!(err, TlsError::Certificate(_)));
    }

    #[test]
    fn tampered_server_hello_breaks_finished() {
        // A MITM rewriting handshake bytes is caught by the transcript
        // binding (§V): here the client sees a modified ServerHello.
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);

        let ch = client.start();
        let (srv_out, _) = server.process_record(&ch, NOW).unwrap();
        // Tamper: flip a byte of the server random inside the first record.
        let mut tampered = srv_out[0].clone();
        tampered.payload[10] ^= 0xff;
        let (cli_out, _) = client.process_record(&tampered, NOW).unwrap();
        // Client's Finished is now computed over a different transcript;
        // the server must reject it.
        let mut failed = false;
        for rec in cli_out {
            if server.process_record(&rec, NOW).is_err() {
                failed = true;
            }
        }
        assert!(failed, "server accepted a handshake with tampered bytes");
    }

    #[test]
    fn data_flows_after_establishment() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();

        let rec = client.send_data(b"GET /").unwrap();
        let (_, evs) = server.process_record(&rec, NOW).unwrap();
        assert_eq!(evs, vec![ServerEvent::ReceivedData(b"GET /".to_vec())]);

        let rec = server.send_data(b"200 OK").unwrap();
        let (_, evs) = client.process_record(&rec, NOW).unwrap();
        assert_eq!(evs, vec![ClientEvent::ReceivedData(b"200 OK".to_vec())]);
    }

    #[test]
    fn data_before_establishment_rejected() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        assert!(client.send_data(b"x").is_err());
        assert!(server.send_data(b"x").is_err());
        let rec = TlsRecord::new(ContentType::ApplicationData, vec![1]);
        assert!(server.process_record(&rec, NOW).is_err());
    }

    #[test]
    fn ritm_status_record_surfaces_to_client() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let rec = TlsRecord::new(ContentType::RitmStatus, vec![0xAB; 64]);
        let (_, evs) = client.process_record(&rec, NOW).unwrap();
        assert_eq!(evs, vec![ClientEvent::RitmStatus(vec![0xAB; 64])]);
        // And servers ignore stray status records.
        let (outs, evs) = server.process_record(&rec, NOW).unwrap();
        assert!(outs.is_empty() && evs.is_empty());
    }

    #[test]
    fn client_abort_closes_server() {
        let (chain, anchors) = test_pki();
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let mut server = ServerConnection::new(ctx, [1u8; 32]);
        let mut client = TlsClient::new(client_config(anchors), [2u8; 32], None);
        drive_handshake(&mut client, &mut server, NOW).unwrap();
        let alert = client.abort(AlertDescription::CertificateRevoked);
        let err = server.process_record(&alert, NOW).unwrap_err();
        assert!(matches!(err, TlsError::FatalAlert(_)));
        assert!(client.send_data(b"x").is_err(), "client is closed");
    }
}
