//! The TLS record layer.
//!
//! Records carry handshake, alert, and application-data payloads. RITM adds
//! one *dedicated content type* for revocation statuses (paper §VIII,
//! "RA-to-client communication", option 1): an RA appends a
//! [`ContentType::RitmStatus`] record to a server-to-client TCP segment, and
//! a RITM-aware client strips it before handing the stream to its TLS stack,
//! so the TLS protocol itself is never disturbed.

use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// TLS protocol version constant for TLS 1.2 (`0x0303`).
pub const VERSION_TLS12: u16 = 0x0303;

/// Maximum record payload length (RFC 5246 §6.2.1).
pub const MAX_RECORD_LEN: usize = 1 << 14;

/// Content type of a TLS record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// ChangeCipherSpec (20).
    ChangeCipherSpec,
    /// Alert (21).
    Alert,
    /// Handshake (22).
    Handshake,
    /// ApplicationData (23).
    ApplicationData,
    /// RITM revocation status (24) — the dedicated content type from
    /// §VIII used to piggyback statuses without breaking the handshake.
    RitmStatus,
}

impl ContentType {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::RitmStatus => 24,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            24 => ContentType::RitmStatus,
            _ => return None,
        })
    }
}

/// One TLS record: a typed, length-prefixed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlsRecord {
    /// What the payload contains.
    pub content_type: ContentType,
    /// Protocol version advertised in the record header.
    pub version: u16,
    /// The raw payload (plaintext in this substrate; the paper's protocol
    /// only needs the *handshake* in plaintext, and record boundaries).
    pub payload: Vec<u8>,
}

impl TlsRecord {
    /// Creates a TLS 1.2 record.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_RECORD_LEN`].
    pub fn new(content_type: ContentType, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= MAX_RECORD_LEN, "record payload too large");
        TlsRecord {
            content_type,
            version: VERSION_TLS12,
            payload,
        }
    }

    /// Encodes header + payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(5 + self.payload.len());
        w.u8(self.content_type.to_u8());
        w.u16(self.version);
        w.vec16(&self.payload);
        w.into_bytes()
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        5 + self.payload.len()
    }

    /// Decodes a single record from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or an unknown content type.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pos = r.position();
        let ct = ContentType::from_u8(r.u8("record content type")?)
            .ok_or(DecodeError::new("unknown content type", pos))?;
        let version = r.u16("record version")?;
        let payload = r.vec16("record payload")?.to_vec();
        Ok(TlsRecord {
            content_type: ct,
            version,
            payload,
        })
    }

    /// Parses a byte stream into consecutive records (how middleboxes and
    /// endpoints consume TCP payloads).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream does not consist of whole
    /// records.
    pub fn parse_stream(bytes: &[u8]) -> Result<Vec<TlsRecord>, DecodeError> {
        let mut r = Reader::new(bytes);
        let mut out = Vec::new();
        while !r.is_done() {
            out.push(TlsRecord::decode(&mut r)?);
        }
        Ok(out)
    }

    /// Serializes a sequence of records back into a byte stream, pre-sized
    /// via summed [`TlsRecord::encoded_len`] — the returned buffer never
    /// reallocates.
    pub fn encode_stream(records: &[TlsRecord]) -> Vec<u8> {
        let total: usize = records.iter().map(TlsRecord::encoded_len).sum();
        let mut out = Vec::with_capacity(total);
        for rec in records {
            out.extend_from_slice(&rec.to_bytes());
        }
        debug_assert_eq!(out.len(), total, "encoded_len must match encoding");
        out
    }
}

/// Fast check whether a TCP payload *looks like* TLS — the first step of the
/// RA's DPI (paper §VI: "verifies whether a packet belongs to the TLS
/// handshake protocol"). Cheap and conservative: content type, version
/// plausibility, and a sane length field.
pub fn looks_like_tls(payload: &[u8]) -> bool {
    if payload.len() < 5 {
        return false;
    }
    let Some(_) = ContentType::from_u8(payload[0]) else {
        return false;
    };
    // Major version 3 (SSL3/TLS1.x) is the plausibility test real DPI uses.
    if payload[1] != 0x03 || payload[2] > 0x04 {
        return false;
    }
    let len = u16::from_be_bytes([payload[3], payload[4]]) as usize;
    len <= MAX_RECORD_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single() {
        let rec = TlsRecord::new(ContentType::Handshake, vec![1, 2, 3]);
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), rec.encoded_len());
        let mut r = Reader::new(&bytes);
        assert_eq!(TlsRecord::decode(&mut r).unwrap(), rec);
        assert!(r.is_done());
    }

    #[test]
    fn stream_round_trip() {
        let records = vec![
            TlsRecord::new(ContentType::Handshake, vec![0; 100]),
            TlsRecord::new(ContentType::RitmStatus, vec![9; 700]),
            TlsRecord::new(ContentType::ApplicationData, vec![1; 50]),
        ];
        let stream = TlsRecord::encode_stream(&records);
        assert_eq!(TlsRecord::parse_stream(&stream).unwrap(), records);
    }

    #[test]
    fn encode_stream_is_exactly_presized() {
        let records = vec![
            TlsRecord::new(ContentType::Handshake, vec![0; 321]),
            TlsRecord::new(ContentType::RitmStatus, vec![9; 77]),
            TlsRecord::new(ContentType::Alert, vec![]),
        ];
        let total: usize = records.iter().map(TlsRecord::encoded_len).sum();
        let stream = TlsRecord::encode_stream(&records);
        assert_eq!(stream.len(), total);
        assert_eq!(stream.capacity(), stream.len(), "pre-sized, no realloc");
    }

    #[test]
    fn truncated_stream_rejected() {
        let rec = TlsRecord::new(ContentType::Alert, vec![2, 40]);
        let bytes = rec.to_bytes();
        assert!(TlsRecord::parse_stream(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn unknown_content_type_rejected() {
        let mut bytes = TlsRecord::new(ContentType::Alert, vec![]).to_bytes();
        bytes[0] = 99;
        assert!(TlsRecord::parse_stream(&bytes).is_err());
    }

    #[test]
    fn content_type_round_trips() {
        for v in [20u8, 21, 22, 23, 24] {
            let ct = ContentType::from_u8(v).unwrap();
            assert_eq!(ct.to_u8(), v);
        }
        assert_eq!(ContentType::from_u8(25), None);
    }

    #[test]
    fn dpi_heuristic() {
        let tls = TlsRecord::new(ContentType::Handshake, vec![1, 2, 3]).to_bytes();
        assert!(looks_like_tls(&tls));
        assert!(!looks_like_tls(b"GET / HTTP/1.1\r\n"));
        assert!(!looks_like_tls(&[22, 0x02, 0x00, 0, 3])); // SSLv2-ish
        assert!(!looks_like_tls(&[22]));
        // Huge length field.
        assert!(!looks_like_tls(&[22, 3, 3, 0xff, 0xff]));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_payload_panics() {
        TlsRecord::new(ContentType::ApplicationData, vec![0; MAX_RECORD_LEN + 1]);
    }
}
