//! TLS handshake messages: ClientHello, ServerHello, Certificate,
//! ServerHelloDone, ClientKeyExchange, Finished, NewSessionTicket.
//!
//! Message framing follows RFC 5246 (`msg_type(1) ‖ length(3) ‖ body`).
//! The RITM ClientHello extension (paper §III step 1) rides in the standard
//! extensions block.

use crate::certificate::CertificateChain;
use crate::extensions::Extension;
use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// The standard TLS 1.2 cipher suite this substrate always negotiates
/// (`TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256`).
pub const DEFAULT_CIPHER_SUITE: u16 = 0xc02f;

/// ClientHello body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Highest protocol version the client offers.
    pub version: u16,
    /// 32-byte client random.
    pub random: [u8; 32],
    /// Session id offered for resumption (empty for a full handshake).
    pub session_id: Vec<u8>,
    /// Offered cipher suites.
    pub cipher_suites: Vec<u16>,
    /// TLS extensions (where the RITM extension lives).
    pub extensions: Vec<Extension>,
}

impl ClientHello {
    /// Whether the RITM extension is present (what an RA's DPI checks).
    pub fn has_ritm_extension(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| e.ext_type == crate::extensions::RITM_EXTENSION_TYPE)
    }
}

/// ServerHello body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Negotiated protocol version.
    pub version: u16,
    /// 32-byte server random.
    pub random: [u8; 32],
    /// Session id (echoed for resumption, fresh otherwise).
    pub session_id: Vec<u8>,
    /// Selected cipher suite.
    pub cipher_suite: u16,
    /// TLS extensions (the close-to-server deployment confirms RITM support
    /// here, §IV).
    pub extensions: Vec<Extension>,
}

impl ServerHello {
    /// Whether the server-side RITM deployment confirmation is present.
    pub fn confirms_ritm(&self) -> bool {
        self.extensions
            .iter()
            .any(|e| e.ext_type == crate::extensions::RITM_CONFIRM_EXTENSION_TYPE)
    }
}

/// A session ticket (RFC 5077) for server-stateless resumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTicket {
    /// Ticket lifetime hint in seconds.
    pub lifetime: u32,
    /// Opaque ticket bytes.
    pub ticket: Vec<u8>,
}

/// One handshake-layer message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// Type 1.
    ClientHello(ClientHello),
    /// Type 2.
    ServerHello(ServerHello),
    /// Type 11.
    Certificate(CertificateChain),
    /// Type 14.
    ServerHelloDone,
    /// Type 16 (opaque key-exchange bytes in this substrate).
    ClientKeyExchange(Vec<u8>),
    /// Type 20: 12-byte verify-data over the transcript.
    Finished([u8; 12]),
    /// Type 4 (RFC 5077).
    NewSessionTicket(SessionTicket),
}

impl HandshakeMessage {
    /// RFC 5246 message type code.
    pub fn msg_type(&self) -> u8 {
        match self {
            HandshakeMessage::ClientHello(_) => 1,
            HandshakeMessage::ServerHello(_) => 2,
            HandshakeMessage::NewSessionTicket(_) => 4,
            HandshakeMessage::Certificate(_) => 11,
            HandshakeMessage::ServerHelloDone => 14,
            HandshakeMessage::ClientKeyExchange(_) => 16,
            HandshakeMessage::Finished(_) => 20,
        }
    }

    /// Exact encoded size (`msg_type ‖ u24 length ‖ body`), computed
    /// without serializing.
    pub fn encoded_len(&self) -> usize {
        4 + self.body_len()
    }

    fn body_len(&self) -> usize {
        match self {
            HandshakeMessage::ClientHello(ch) => {
                2 + 32
                    + 1
                    + ch.session_id.len()
                    + 2
                    + 2 * ch.cipher_suites.len()
                    + Extension::block_len(&ch.extensions)
            }
            HandshakeMessage::ServerHello(sh) => {
                2 + 32 + 1 + sh.session_id.len() + 2 + Extension::block_len(&sh.extensions)
            }
            HandshakeMessage::Certificate(chain) => chain.encoded_len(),
            HandshakeMessage::ServerHelloDone => 0,
            HandshakeMessage::ClientKeyExchange(data) => 2 + data.len(),
            HandshakeMessage::Finished(vd) => vd.len(),
            HandshakeMessage::NewSessionTicket(t) => 4 + 2 + t.ticket.len(),
        }
    }

    /// Encodes `msg_type ‖ u24 length ‖ body` (pre-sized to
    /// [`HandshakeMessage::encoded_len`]; never reallocates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = self.body_bytes();
        let mut w = Writer::with_capacity(4 + body.len());
        w.u8(self.msg_type());
        w.vec24(&body);
        w.into_bytes()
    }

    fn body_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            HandshakeMessage::ClientHello(ch) => {
                w.u16(ch.version);
                w.bytes(&ch.random);
                w.vec8(&ch.session_id);
                let mut suites = Writer::new();
                for s in &ch.cipher_suites {
                    suites.u16(*s);
                }
                w.vec16(suites.as_bytes());
                Extension::encode_block(&ch.extensions, &mut w);
            }
            HandshakeMessage::ServerHello(sh) => {
                w.u16(sh.version);
                w.bytes(&sh.random);
                w.vec8(&sh.session_id);
                w.u16(sh.cipher_suite);
                Extension::encode_block(&sh.extensions, &mut w);
            }
            HandshakeMessage::Certificate(chain) => {
                w.bytes(&chain.to_bytes());
            }
            HandshakeMessage::ServerHelloDone => {}
            HandshakeMessage::ClientKeyExchange(data) => {
                w.vec16(data);
            }
            HandshakeMessage::Finished(vd) => {
                w.bytes(vd);
            }
            HandshakeMessage::NewSessionTicket(t) => {
                w.u32(t.lifetime);
                w.vec16(&t.ticket);
            }
        }
        w.into_bytes()
    }

    /// Decodes one handshake message.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or an unknown message type.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pos = r.position();
        let msg_type = r.u8("handshake type")?;
        let body = r.vec24("handshake body")?;
        let mut b = Reader::new(body);
        let msg = match msg_type {
            1 => {
                let version = b.u16("ch version")?;
                let random = b.array("ch random")?;
                let session_id = b.vec8("ch session id")?.to_vec();
                let suites_raw = b.vec16("ch cipher suites")?;
                if suites_raw.len() % 2 != 0 {
                    return Err(DecodeError::new("odd cipher suite bytes", pos));
                }
                let cipher_suites = suites_raw
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect();
                let extensions = Extension::decode_block(&mut b)?;
                HandshakeMessage::ClientHello(ClientHello {
                    version,
                    random,
                    session_id,
                    cipher_suites,
                    extensions,
                })
            }
            2 => {
                let version = b.u16("sh version")?;
                let random = b.array("sh random")?;
                let session_id = b.vec8("sh session id")?.to_vec();
                let cipher_suite = b.u16("sh cipher suite")?;
                let extensions = Extension::decode_block(&mut b)?;
                HandshakeMessage::ServerHello(ServerHello {
                    version,
                    random,
                    session_id,
                    cipher_suite,
                    extensions,
                })
            }
            4 => {
                let lifetime = b.u32("ticket lifetime")?;
                let ticket = b.vec16("ticket bytes")?.to_vec();
                HandshakeMessage::NewSessionTicket(SessionTicket { lifetime, ticket })
            }
            11 => {
                let chain = CertificateChain::from_bytes(body)?;
                // CertificateChain::from_bytes consumed the whole body.
                return Ok(HandshakeMessage::Certificate(chain));
            }
            14 => HandshakeMessage::ServerHelloDone,
            16 => HandshakeMessage::ClientKeyExchange(b.vec16("cke data")?.to_vec()),
            20 => HandshakeMessage::Finished(b.array("finished verify data")?),
            _ => return Err(DecodeError::new("unknown handshake type", pos)),
        };
        b.finish("handshake body trailing bytes")?;
        Ok(msg)
    }

    /// Parses every handshake message in a record payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the payload is not whole messages.
    pub fn parse_all(payload: &[u8]) -> Result<Vec<HandshakeMessage>, DecodeError> {
        let mut r = Reader::new(payload);
        let mut out = Vec::new();
        while !r.is_done() {
            out.push(HandshakeMessage::decode(&mut r)?);
        }
        Ok(out)
    }

    /// Serializes a batch of handshake messages into one record payload,
    /// pre-sized via summed [`HandshakeMessage::encoded_len`] (the same
    /// exact pre-sizing the proof/status encoders use) — the returned
    /// buffer never reallocates.
    pub fn encode_all(messages: &[HandshakeMessage]) -> Vec<u8> {
        let total: usize = messages.iter().map(HandshakeMessage::encoded_len).sum();
        let mut out = Vec::with_capacity(total);
        for m in messages {
            out.extend_from_slice(&m.to_bytes());
        }
        debug_assert_eq!(out.len(), total, "encoded_len must match encoding");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extensions::Extension;

    fn sample_client_hello() -> ClientHello {
        ClientHello {
            version: 0x0303,
            random: [7u8; 32],
            session_id: vec![1, 2, 3],
            cipher_suites: vec![DEFAULT_CIPHER_SUITE, 0x002f],
            extensions: vec![Extension::ritm_request()],
        }
    }

    fn one_of_each() -> Vec<HandshakeMessage> {
        let ca_key = ritm_crypto::ed25519::SigningKey::from_seed([1u8; 32]);
        let cert = crate::certificate::Certificate::issue(
            &ca_key,
            ritm_dictionary_ca_id(),
            ritm_dictionary::SerialNumber::from_u24(7),
            "caplen.example",
            0,
            u64::MAX,
            ritm_crypto::ed25519::SigningKey::from_seed([2u8; 32]).verifying_key(),
            false,
        );
        vec![
            HandshakeMessage::ClientHello(sample_client_hello()),
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [9u8; 32],
                session_id: vec![5; 32],
                cipher_suite: DEFAULT_CIPHER_SUITE,
                extensions: vec![Extension::ritm_confirmation(), Extension::sni("x.example")],
            }),
            HandshakeMessage::Certificate(crate::certificate::CertificateChain(vec![cert])),
            HandshakeMessage::ServerHelloDone,
            HandshakeMessage::ClientKeyExchange(vec![3u8; 48]),
            HandshakeMessage::Finished([6u8; 12]),
            HandshakeMessage::NewSessionTicket(SessionTicket {
                lifetime: 300,
                ticket: vec![8u8; 96],
            }),
        ]
    }

    fn ritm_dictionary_ca_id() -> ritm_dictionary::CaId {
        ritm_dictionary::CaId::from_name("CapLenCA")
    }

    #[test]
    fn encoded_len_is_exact_for_every_variant() {
        for msg in one_of_each() {
            assert_eq!(msg.to_bytes().len(), msg.encoded_len(), "{msg:?}");
        }
    }

    #[test]
    fn encode_all_is_exactly_presized() {
        let messages = one_of_each();
        let total: usize = messages.iter().map(HandshakeMessage::encoded_len).sum();
        let out = HandshakeMessage::encode_all(&messages);
        assert_eq!(out.len(), total);
        assert_eq!(out.capacity(), out.len(), "pre-sized, no realloc");
    }

    #[test]
    fn client_hello_round_trip() {
        let msg = HandshakeMessage::ClientHello(sample_client_hello());
        let bytes = msg.to_bytes();
        let back = HandshakeMessage::parse_all(&bytes).unwrap();
        assert_eq!(back, vec![msg]);
    }

    #[test]
    fn ritm_extension_detected() {
        let ch = sample_client_hello();
        assert!(ch.has_ritm_extension());
        let mut no_ritm = ch.clone();
        no_ritm.extensions.clear();
        assert!(!no_ritm.has_ritm_extension());
    }

    #[test]
    fn server_hello_round_trip() {
        let msg = HandshakeMessage::ServerHello(ServerHello {
            version: 0x0303,
            random: [9u8; 32],
            session_id: vec![5; 32],
            cipher_suite: DEFAULT_CIPHER_SUITE,
            extensions: vec![Extension::ritm_confirmation()],
        });
        let back = HandshakeMessage::parse_all(&msg.to_bytes()).unwrap();
        assert_eq!(back, vec![msg.clone()]);
        if let HandshakeMessage::ServerHello(sh) = &back[0] {
            assert!(sh.confirms_ritm());
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn multiple_messages_in_one_payload() {
        let msgs = vec![
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random: [1u8; 32],
                session_id: vec![],
                cipher_suite: DEFAULT_CIPHER_SUITE,
                extensions: vec![],
            }),
            HandshakeMessage::ServerHelloDone,
        ];
        let payload = HandshakeMessage::encode_all(&msgs);
        assert_eq!(HandshakeMessage::parse_all(&payload).unwrap(), msgs);
    }

    #[test]
    fn finished_and_cke_round_trip() {
        for msg in [
            HandshakeMessage::Finished([3u8; 12]),
            HandshakeMessage::ClientKeyExchange(vec![0xAA; 48]),
            HandshakeMessage::NewSessionTicket(SessionTicket {
                lifetime: 3600,
                ticket: vec![1; 64],
            }),
            HandshakeMessage::ServerHelloDone,
        ] {
            let back = HandshakeMessage::parse_all(&msg.to_bytes()).unwrap();
            assert_eq!(back, vec![msg]);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = HandshakeMessage::ServerHelloDone.to_bytes();
        bytes[0] = 99;
        assert!(HandshakeMessage::parse_all(&bytes).is_err());
    }

    #[test]
    fn trailing_garbage_in_body_rejected() {
        let msg = HandshakeMessage::Finished([0u8; 12]);
        let mut bytes = msg.to_bytes();
        // Grow the body by one byte and fix the u24 length.
        bytes.push(0xFF);
        bytes[3] += 1;
        assert!(HandshakeMessage::parse_all(&bytes).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = HandshakeMessage::ClientHello(sample_client_hello()).to_bytes();
        for cut in [1, 3, 10, bytes.len() - 1] {
            assert!(
                HandshakeMessage::parse_all(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }
}
