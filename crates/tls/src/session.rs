//! TLS session resumption (paper §III: "RITM supports two mechanisms of TLS
//! resumption, namely session identifiers and session tickets").
//!
//! Both sides keep small caches; the abbreviated handshake skips the
//! Certificate message, which is why the RA keeps per-connection state
//! (Eq. 4) including the serial seen at full-handshake time — resumed
//! connections still receive periodic revocation statuses.

use crate::handshake::SessionTicket;
use ritm_crypto::digest::Digest20;
use std::collections::HashMap;

/// Default session lifetime in seconds (also the minted ticket lifetime).
/// Sessions older than this fall back to a full handshake.
pub const SESSION_LIFETIME_SECS: u64 = 3600;

/// Data both endpoints retain about an established session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    /// The session id issued by the server.
    pub session_id: Vec<u8>,
    /// Cipher suite negotiated originally.
    pub cipher_suite: u16,
    /// Hash of the certificate chain presented originally (lets a resuming
    /// client remember which certificate the session is bound to).
    pub cert_chain_hash: Digest20,
    /// Unix time the session was established.
    pub established_at: u64,
}

impl SessionState {
    /// `true` while the session is within `lifetime` seconds of its
    /// establishment (clock skew towards the past counts as fresh).
    pub fn is_fresh(&self, now: u64, lifetime: u64) -> bool {
        now.saturating_sub(self.established_at) <= lifetime
    }
}

/// Server-side session cache, keyed by session id.
#[derive(Debug, Default)]
pub struct ServerSessionCache {
    sessions: HashMap<Vec<u8>, SessionState>,
    /// Secret used to mint and validate stateless tickets.
    ticket_secret: [u8; 20],
}

impl ServerSessionCache {
    /// Creates a cache with the given ticket-protection secret.
    pub fn new(ticket_secret: [u8; 20]) -> Self {
        ServerSessionCache {
            sessions: HashMap::new(),
            ticket_secret,
        }
    }

    /// Stores a session for id-based resumption.
    pub fn store(&mut self, state: SessionState) {
        self.sessions.insert(state.session_id.clone(), state);
    }

    /// Looks up a session by id.
    pub fn lookup(&self, session_id: &[u8]) -> Option<&SessionState> {
        self.sessions.get(session_id)
    }

    /// Looks up a session by id, treating sessions older than `lifetime`
    /// seconds as absent — expired entries must fall back to a full
    /// handshake exactly like unknown ids.
    pub fn lookup_fresh(
        &self,
        session_id: &[u8],
        now: u64,
        lifetime: u64,
    ) -> Option<&SessionState> {
        self.sessions
            .get(session_id)
            .filter(|s| s.is_fresh(now, lifetime))
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is cached.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Mints a stateless session ticket: the session state authenticated by
    /// a MAC under the server's ticket secret (stand-in for RFC 5077 ticket
    /// encryption — confidentiality is not needed by the simulation).
    pub fn mint_ticket(&self, state: &SessionState, lifetime: u32) -> SessionTicket {
        let body = Self::ticket_body(state);
        let mac = self.ticket_mac(&body);
        let mut ticket = body;
        ticket.extend_from_slice(mac.as_bytes());
        SessionTicket { lifetime, ticket }
    }

    /// Validates a ticket and recovers the session state.
    pub fn accept_ticket(&self, ticket: &SessionTicket) -> Option<SessionState> {
        let t = &ticket.ticket;
        if t.len() < 20 {
            return None;
        }
        let (body, mac) = t.split_at(t.len() - 20);
        if self.ticket_mac(body).as_bytes()[..] != mac[..] {
            return None;
        }
        Self::parse_ticket_body(body)
    }

    fn ticket_body(state: &SessionState) -> Vec<u8> {
        let mut w = ritm_crypto::wire::Writer::new();
        w.vec8(&state.session_id);
        w.u16(state.cipher_suite);
        w.bytes(state.cert_chain_hash.as_bytes());
        w.u64(state.established_at);
        w.into_bytes()
    }

    fn parse_ticket_body(body: &[u8]) -> Option<SessionState> {
        let mut r = ritm_crypto::wire::Reader::new(body);
        let session_id = r.vec8("ticket session id").ok()?.to_vec();
        let cipher_suite = r.u16("ticket suite").ok()?;
        let cert_chain_hash = Digest20::from_bytes(r.array("ticket cert hash").ok()?);
        let established_at = r.u64("ticket time").ok()?;
        r.finish("ticket trailing").ok()?;
        Some(SessionState {
            session_id,
            cipher_suite,
            cert_chain_hash,
            established_at,
        })
    }

    fn ticket_mac(&self, body: &[u8]) -> Digest20 {
        let mut buf = Vec::with_capacity(20 + body.len());
        buf.extend_from_slice(&self.ticket_secret);
        buf.extend_from_slice(body);
        Digest20::hash(buf)
    }
}

/// Client-side session cache, keyed by server name.
#[derive(Debug, Default)]
pub struct ClientSessionCache {
    by_server: HashMap<String, (SessionState, Option<SessionTicket>)>,
}

impl ClientSessionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ClientSessionCache::default()
    }

    /// Remembers a session (and optional ticket) for `server`.
    pub fn store(&mut self, server: &str, state: SessionState, ticket: Option<SessionTicket>) {
        self.by_server.insert(server.to_owned(), (state, ticket));
    }

    /// Returns the stored session for `server`.
    pub fn lookup(&self, server: &str) -> Option<&(SessionState, Option<SessionTicket>)> {
        self.by_server.get(server)
    }

    /// Forgets the session for `server` (e.g. after a failed resumption).
    pub fn evict(&mut self, server: &str) {
        self.by_server.remove(server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(id: u8) -> SessionState {
        SessionState {
            session_id: vec![id; 32],
            cipher_suite: 0xc02f,
            cert_chain_hash: Digest20::hash([id]),
            established_at: 1_000,
        }
    }

    #[test]
    fn id_cache_round_trip() {
        let mut cache = ServerSessionCache::new([1u8; 20]);
        cache.store(state(1));
        assert_eq!(cache.lookup(&[1u8; 32]), Some(&state(1)));
        assert_eq!(cache.lookup(&[2u8; 32]), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fresh_lookup_expires_old_sessions() {
        let mut cache = ServerSessionCache::new([1u8; 20]);
        cache.store(state(1)); // established_at = 1_000
        assert!(cache.lookup_fresh(&[1u8; 32], 1_000 + 3600, 3600).is_some());
        assert!(cache.lookup_fresh(&[1u8; 32], 1_000 + 3601, 3600).is_none());
        // A clock slightly behind the establishment time still resumes.
        assert!(cache.lookup_fresh(&[1u8; 32], 500, 3600).is_some());
    }

    #[test]
    fn ticket_round_trip() {
        let cache = ServerSessionCache::new([2u8; 20]);
        let t = cache.mint_ticket(&state(3), 3600);
        assert_eq!(t.lifetime, 3600);
        assert_eq!(cache.accept_ticket(&t), Some(state(3)));
    }

    #[test]
    fn tampered_ticket_rejected() {
        let cache = ServerSessionCache::new([2u8; 20]);
        let mut t = cache.mint_ticket(&state(3), 3600);
        t.ticket[0] ^= 1;
        assert_eq!(cache.accept_ticket(&t), None);
    }

    #[test]
    fn ticket_from_other_server_rejected() {
        let a = ServerSessionCache::new([2u8; 20]);
        let b = ServerSessionCache::new([3u8; 20]);
        let t = a.mint_ticket(&state(3), 60);
        assert_eq!(b.accept_ticket(&t), None);
    }

    #[test]
    fn short_ticket_rejected() {
        let cache = ServerSessionCache::new([2u8; 20]);
        assert_eq!(
            cache.accept_ticket(&SessionTicket {
                lifetime: 1,
                ticket: vec![0; 5]
            }),
            None
        );
    }

    #[test]
    fn client_cache_evicts() {
        let mut c = ClientSessionCache::new();
        c.store("example.com", state(1), None);
        assert!(c.lookup("example.com").is_some());
        c.evict("example.com");
        assert!(c.lookup("example.com").is_none());
    }
}
