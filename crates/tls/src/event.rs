//! Event-runtime adapters: drive a sans-io engine as a `ritm-rt` task.
//!
//! [`drive_handshake_task`] pumps a non-blocking `TcpStream` through a
//! [`ClientEngine`] or [`ServerEngine`]: read whatever bytes the socket
//! has, [`feed`](HandshakeEngine::feed) them, obey the returned
//! [`Action`]s. Because the engine survives `WouldBlock` at any byte
//! boundary, thousands of concurrent handshakes can run as tasks on the
//! ≤2-thread executor, parking in the `Reactor` between readiness ticks —
//! the paper's requirement that one RA/edge process terminate many client
//! connections at once without a thread per connection.

use crate::alert::Alert;
use crate::certificate::CertificateChain;
use crate::engine::{Action, ClientEngine, ServerEngine};
use crate::handshake::SessionTicket;
use ritm_rt::net::{read_some, write_all};
use ritm_rt::Reactor;
use std::net::TcpStream;
use std::sync::Arc;

/// Either side of a handshake, as seen by the task driver: an optional
/// opening flight, then bytes-in → actions-out until completion.
pub trait HandshakeEngine {
    /// The opening flight to send before reading anything (the
    /// ClientHello for clients; `None` for servers).
    fn initial_send(&mut self) -> Option<Vec<u8>>;

    /// Feeds received bytes, returning the resulting actions in order.
    fn feed(&mut self, now: u64, bytes: &[u8]) -> Vec<Action>;
}

impl HandshakeEngine for ClientEngine {
    fn initial_send(&mut self) -> Option<Vec<u8>> {
        Some(self.start().to_bytes())
    }

    fn feed(&mut self, now: u64, bytes: &[u8]) -> Vec<Action> {
        ClientEngine::feed(self, now, bytes)
    }
}

impl HandshakeEngine for ServerEngine {
    fn initial_send(&mut self) -> Option<Vec<u8>> {
        None
    }

    fn feed(&mut self, now: u64, bytes: &[u8]) -> Vec<Action> {
        ServerEngine::feed(self, now, bytes)
    }
}

/// What a completed handshake produced.
#[derive(Debug, Clone)]
pub struct HandshakeOutcome {
    /// The validated server chain (client side, full handshakes).
    pub chain: Option<CertificateChain>,
    /// Session ticket issued by the server, if any.
    pub ticket: Option<SessionTicket>,
    /// Whether this was an abbreviated (resumed) handshake.
    pub resumed: bool,
    /// Raw RITM status payloads stapled into the stream by an on-path RA,
    /// in arrival order (decoded and enforced by `ritm-client`).
    pub statuses: Vec<Vec<u8>>,
}

/// Why a handshake task failed.
#[derive(Debug)]
pub enum HandshakeTaskError {
    /// A socket operation failed terminally.
    Io(std::io::Error),
    /// The handshake aborted with a fatal alert (ours or the peer's).
    Aborted(Alert),
    /// The peer closed the connection before the handshake completed.
    PeerClosed,
}

impl core::fmt::Display for HandshakeTaskError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HandshakeTaskError::Io(e) => write!(f, "handshake i/o error: {e}"),
            HandshakeTaskError::Aborted(a) => {
                write!(f, "handshake aborted: {:?}", a.description)
            }
            HandshakeTaskError::PeerClosed => f.write_str("peer closed during handshake"),
        }
    }
}

impl std::error::Error for HandshakeTaskError {}

impl From<std::io::Error> for HandshakeTaskError {
    fn from(e: std::io::Error) -> Self {
        HandshakeTaskError::Io(e)
    }
}

/// Drives `engine` over `stream` until the handshake completes or fails,
/// returning the engine (for application data) and the outcome. Any RITM
/// status records seen before completion are collected into
/// [`HandshakeOutcome::statuses`] — stapled statuses arrive *before* the
/// final flight, so they are already present when this returns.
///
/// # Errors
///
/// [`HandshakeTaskError`] on socket failure, abort, or early close. Local
/// aborts flush their fatal alert to the peer before returning.
pub async fn drive_handshake_task<E: HandshakeEngine>(
    reactor: Arc<Reactor>,
    stream: TcpStream,
    mut engine: E,
    now: u64,
) -> Result<(E, TcpStream, HandshakeOutcome), HandshakeTaskError> {
    stream.set_nonblocking(true)?;
    if let Some(flight) = engine.initial_send() {
        write_all(&reactor, &stream, &flight).await?;
    }
    let mut statuses = Vec::new();
    let mut completed: Option<(Option<CertificateChain>, Option<SessionTicket>, bool)> = None;
    let mut buf = [0u8; 4096];
    loop {
        let n = read_some(&reactor, &stream, &mut buf).await?;
        if n == 0 {
            return Err(HandshakeTaskError::PeerClosed);
        }
        for action in engine.feed(now, &buf[..n]) {
            match action {
                Action::SendBytes(bytes) => write_all(&reactor, &stream, &bytes).await?,
                Action::HandshakeComplete {
                    chain,
                    ticket,
                    resumed,
                } => completed = Some((chain, ticket, resumed)),
                Action::RitmStatus(payload) => statuses.push(payload),
                Action::Abort { alert } => return Err(HandshakeTaskError::Aborted(alert)),
                Action::Closed => return Err(HandshakeTaskError::PeerClosed),
                Action::NeedMoreData | Action::ReceivedData(_) => {}
            }
        }
        if let Some((chain, ticket, resumed)) = completed.take() {
            return Ok((
                engine,
                stream,
                HandshakeOutcome {
                    chain,
                    ticket,
                    resumed,
                    statuses,
                },
            ));
        }
    }
}
