//! # ritm-tls — wire-format TLS substrate for the RITM reproduction
//!
//! The paper's protocol rides on TLS 1.2: clients announce RITM support via
//! a ClientHello extension, RAs parse server certificates out of plaintext
//! handshakes, and revocation statuses are piggybacked with a dedicated
//! record content type (§VIII). This crate implements that substrate from
//! scratch:
//!
//! * [`record`] — the record layer (including [`record::ContentType::RitmStatus`])
//!   and the DPI fast-path heuristic;
//! * [`handshake`] — ClientHello / ServerHello / Certificate / Finished /
//!   NewSessionTicket framing;
//! * [`extensions`] — the RITM request & confirmation extensions;
//! * [`certificate`] — certificates, chains, trust anchors (an X.509/DER
//!   substitute, see DESIGN.md);
//! * [`session`] — session-id and session-ticket resumption;
//! * [`alert`] — connection interruption;
//! * [`engine`] — sans-io resumable client/server handshake engines
//!   (`feed` bytes in, typed [`engine::Action`]s out, any fragmentation);
//! * [`connection`] — the lockstep record-granular API, now a thin
//!   compatibility shim over the engines;
//! * [`event`] — adapters driving an engine as a `ritm-rt` task over a
//!   non-blocking socket.
//!
//! # Examples
//!
//! ```
//! use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
//! use ritm_tls::connection::{drive_handshake, ClientConfig, ServerConnection, ServerContext, TlsClient};
//! use ritm_crypto::SigningKey;
//! use ritm_dictionary::{CaId, SerialNumber};
//!
//! let now = 1_400_000_000;
//! let ca_key = SigningKey::from_seed([1u8; 32]);
//! let server_key = SigningKey::from_seed([2u8; 32]);
//! let leaf = Certificate::issue(
//!     &ca_key, CaId::from_name("CA1"), SerialNumber::from_u24(7),
//!     "example.com", now - 1, now + 1_000, server_key.verifying_key(), false,
//! );
//! let mut anchors = TrustAnchors::new();
//! anchors.add(CaId::from_name("CA1"), ca_key.verifying_key());
//!
//! let ctx = ServerContext::new(CertificateChain(vec![leaf]), [0u8; 20]);
//! let mut server = ritm_tls::connection::ServerConnection::new(ctx, [1u8; 32]);
//! let mut client = TlsClient::new(
//!     ClientConfig { server_name: "example.com".into(), anchors, enable_ritm: true },
//!     [2u8; 32],
//!     None,
//! );
//! drive_handshake(&mut client, &mut server, now)?;
//! assert!(client.is_established());
//! # Ok::<(), ritm_tls::connection::TlsError>(())
//! ```

pub mod alert;
pub mod certificate;
pub mod connection;
pub mod engine;
pub mod event;
pub mod extensions;
pub mod handshake;
pub mod record;
pub mod session;

pub use alert::{Alert, AlertDescription, AlertLevel};
pub use certificate::{CertError, Certificate, CertificateChain, TrustAnchors};
pub use connection::{
    drive_handshake, ClientConfig, ClientEvent, ServerConnection, ServerContext, ServerEvent,
    TlsClient, TlsError,
};
pub use engine::{Action, ClientEngine, RecordAssembler, ServerEngine};
pub use event::{drive_handshake_task, HandshakeEngine, HandshakeOutcome, HandshakeTaskError};
pub use extensions::{Extension, RITM_CONFIRM_EXTENSION_TYPE, RITM_EXTENSION_TYPE};
pub use handshake::{ClientHello, HandshakeMessage, ServerHello, SessionTicket};
pub use record::{looks_like_tls, ContentType, TlsRecord};
pub use session::SESSION_LIFETIME_SECS;
