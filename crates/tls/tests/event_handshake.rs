//! End-to-end: both sans-io engines driven as `ritm-rt` tasks over real
//! non-blocking sockets, exercising the resumable reassembly path under
//! whatever fragmentation the kernel produces.

use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_rt::Executor;
use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm_tls::connection::{ClientConfig, ServerContext};
use ritm_tls::engine::{ClientEngine, ServerEngine};
use ritm_tls::event::{drive_handshake_task, HandshakeOutcome, HandshakeTaskError};
use ritm_tls::session::{SessionState, SESSION_LIFETIME_SECS};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 1_000_000;

fn pki() -> (CertificateChain, TrustAnchors) {
    let ca_key = SigningKey::from_seed([1u8; 32]);
    let server_key = SigningKey::from_seed([2u8; 32]);
    let leaf = Certificate::issue(
        &ca_key,
        CaId::from_name("EventCA"),
        SerialNumber::from_u24(11),
        "event.example.com",
        NOW - 100,
        NOW + 100_000,
        server_key.verifying_key(),
        false,
    );
    let mut anchors = TrustAnchors::new();
    anchors.add(CaId::from_name("EventCA"), ca_key.verifying_key());
    (CertificateChain(vec![leaf]), anchors)
}

fn config(anchors: TrustAnchors) -> ClientConfig {
    ClientConfig {
        server_name: "event.example.com".into(),
        anchors,
        enable_ritm: true,
    }
}

type ServerResult = Result<(bool, HandshakeOutcome), HandshakeTaskError>;
type ClientResult = Result<(ClientEngine, HandshakeOutcome), HandshakeTaskError>;

/// Runs one client+server handshake pair as runtime tasks, returning both
/// sides' results. `session` seeds the client for an abbreviated handshake.
fn run_pair(
    ctx: Arc<ServerContext>,
    anchors: TrustAnchors,
    session: Option<SessionState>,
    now: u64,
) -> (ServerResult, ClientResult) {
    let exec = Executor::new(2);
    let handle = exec.handle();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    let addr = listener.local_addr().expect("addr");

    let (server_tx, server_rx) = mpsc::channel::<ServerResult>();
    let reactor = handle.reactor();
    handle.spawn(async move {
        let result = async {
            let (stream, _) = ritm_rt::net::accept(&reactor, &listener).await?;
            let engine = ServerEngine::new(ctx, [1u8; 32]);
            let (engine, _stream, outcome) =
                drive_handshake_task(Arc::clone(&reactor), stream, engine, now).await?;
            Ok((engine.is_established(), outcome))
        }
        .await;
        let _ = server_tx.send(result);
    });

    let (client_tx, client_rx) = mpsc::channel::<ClientResult>();
    let reactor = handle.reactor();
    handle.spawn(async move {
        let result = async {
            let stream = TcpStream::connect(addr)?;
            let engine = ClientEngine::new(config(anchors), [2u8; 32], session);
            let (engine, _stream, outcome) =
                drive_handshake_task(Arc::clone(&reactor), stream, engine, now).await?;
            Ok((engine, outcome))
        }
        .await;
        let _ = client_tx.send(result);
    });

    let server = server_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server task finished");
    let client = client_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("client task finished");
    exec.shutdown();
    (server, client)
}

#[test]
fn full_handshake_as_runtime_tasks() {
    let (chain, anchors) = pki();
    let ctx = ServerContext::configured(chain.clone(), [9u8; 20], false, true);
    let (server, client) = run_pair(ctx, anchors, None, NOW);

    let (established, server_outcome) = server.expect("server handshake");
    assert!(established);
    assert!(!server_outcome.resumed);

    let (engine, outcome) = client.expect("client handshake");
    assert!(engine.is_established());
    assert!(!outcome.resumed);
    assert_eq!(
        outcome.chain.as_ref(),
        Some(&chain),
        "chain surfaced to task"
    );
    assert!(outcome.ticket.is_some(), "ticket minted on full handshake");
}

#[test]
fn fresh_session_resumes_over_sockets() {
    let (chain, anchors) = pki();
    let ctx = ServerContext::new(chain, [9u8; 20]);

    let (_, client) = run_pair(Arc::clone(&ctx), anchors.clone(), None, NOW);
    let (engine, _) = client.expect("first handshake");
    let session = engine.session_state(NOW).expect("session captured");

    // Well inside the lifetime: abbreviated handshake.
    let (server, client) = run_pair(ctx, anchors, Some(session), NOW + 5);
    let (established, server_outcome) = server.expect("server resumption");
    assert!(established);
    assert!(server_outcome.resumed, "server took the abbreviated path");
    let (engine, outcome) = client.expect("client resumption");
    assert!(engine.is_established());
    assert!(outcome.resumed);
    assert!(
        outcome.chain.is_none(),
        "no Certificate flight when resuming"
    );
}

#[test]
fn expired_session_falls_back_to_full_handshake_over_sockets() {
    let (chain, anchors) = pki();
    let ctx = ServerContext::new(chain.clone(), [9u8; 20]);

    let (_, client) = run_pair(Arc::clone(&ctx), anchors.clone(), None, NOW);
    let (engine, _) = client.expect("first handshake");
    let session = engine.session_state(NOW).expect("session captured");

    // Past the server's lifetime window: the offer is ignored and the full
    // handshake (Certificate flight and all) runs instead of an abort.
    let late = NOW + SESSION_LIFETIME_SECS + 1;
    let (server, client) = run_pair(ctx, anchors, Some(session), late);
    let (established, server_outcome) = server.expect("server fallback");
    assert!(established);
    assert!(!server_outcome.resumed, "expired session must not resume");
    let (engine, outcome) = client.expect("client fallback");
    assert!(engine.is_established());
    assert!(!outcome.resumed);
    assert_eq!(outcome.chain.as_ref(), Some(&chain), "full flight re-ran");
}
