//! Property-based tests for the TLS substrate: wire-format round-trips over
//! arbitrary field values, and robustness of every parser against garbage
//! and truncation (parsers must reject, never panic, never misparse).

use proptest::prelude::*;
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_tls::certificate::{Certificate, CertificateChain};
use ritm_tls::extensions::Extension;
use ritm_tls::handshake::{ClientHello, HandshakeMessage, ServerHello, SessionTicket};
use ritm_tls::record::{ContentType, TlsRecord};

fn arb_content_type() -> impl Strategy<Value = ContentType> {
    prop_oneof![
        Just(ContentType::ChangeCipherSpec),
        Just(ContentType::Alert),
        Just(ContentType::Handshake),
        Just(ContentType::ApplicationData),
        Just(ContentType::RitmStatus),
    ]
}

fn arb_extension() -> impl Strategy<Value = Extension> {
    (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(ext_type, data)| Extension { ext_type, data })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn record_streams_round_trip(
        records in prop::collection::vec(
            (arb_content_type(), prop::collection::vec(any::<u8>(), 0..512)),
            0..6,
        )
    ) {
        let records: Vec<TlsRecord> = records
            .into_iter()
            .map(|(ct, payload)| TlsRecord::new(ct, payload))
            .collect();
        let stream = TlsRecord::encode_stream(&records);
        prop_assert_eq!(TlsRecord::parse_stream(&stream).unwrap(), records);
    }

    #[test]
    fn record_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = TlsRecord::parse_stream(&bytes);
    }

    #[test]
    fn client_hello_round_trips(
        random in any::<[u8; 32]>(),
        session_id in prop::collection::vec(any::<u8>(), 0..32),
        suites in prop::collection::vec(any::<u16>(), 1..8),
        extensions in prop::collection::vec(arb_extension(), 0..4),
        ritm in any::<bool>(),
    ) {
        let mut extensions = extensions;
        if ritm {
            extensions.push(Extension::ritm_request());
        }
        let msg = HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random,
            session_id,
            cipher_suites: suites,
            extensions,
        });
        let parsed = HandshakeMessage::parse_all(&msg.to_bytes()).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &msg);
        if let HandshakeMessage::ClientHello(ch) = &parsed[0] {
            prop_assert_eq!(ch.has_ritm_extension(), ritm);
        }
    }

    #[test]
    fn server_hello_and_ticket_round_trip(
        random in any::<[u8; 32]>(),
        session_id in prop::collection::vec(any::<u8>(), 0..32),
        suite in any::<u16>(),
        lifetime in any::<u32>(),
        ticket in prop::collection::vec(any::<u8>(), 0..128),
        confirm in any::<bool>(),
    ) {
        let mut extensions = Vec::new();
        if confirm {
            extensions.push(Extension::ritm_confirmation());
        }
        let msgs = vec![
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random,
                session_id,
                cipher_suite: suite,
                extensions,
            }),
            HandshakeMessage::NewSessionTicket(SessionTicket { lifetime, ticket }),
            HandshakeMessage::ServerHelloDone,
        ];
        let payload = HandshakeMessage::encode_all(&msgs);
        let parsed = HandshakeMessage::parse_all(&payload).unwrap();
        prop_assert_eq!(&parsed, &msgs);
        if let HandshakeMessage::ServerHello(sh) = &parsed[0] {
            prop_assert_eq!(sh.confirms_ritm(), confirm);
        }
    }

    #[test]
    fn handshake_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = HandshakeMessage::parse_all(&bytes);
    }

    #[test]
    fn certificates_round_trip_and_stay_valid(
        seed in any::<[u8; 32]>(),
        serial in 1u32..0xffffff,
        subject in "[a-z]{1,20}\\.(com|org|net)",
        not_before in 0u64..1_000_000,
        lifetime in 1u64..10_000_000,
    ) {
        let ca_key = SigningKey::from_seed(seed);
        let subject_key = SigningKey::from_seed([9u8; 32]);
        let cert = Certificate::issue(
            &ca_key,
            CaId::from_name("PropCA"),
            SerialNumber::from_u24(serial),
            &subject,
            not_before,
            not_before + lifetime,
            subject_key.verifying_key(),
            false,
        );
        let back = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert_eq!(&back, &cert);
        prop_assert!(back.verify(&ca_key.verifying_key(), not_before + lifetime / 2).is_ok());
        // Truncations never parse nor panic.
        let bytes = cert.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            prop_assert!(Certificate::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn chain_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = CertificateChain::from_bytes(&bytes);
    }

    #[test]
    fn dpi_classifier_never_panics_and_non_tls_is_stable(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // The RA's per-packet entry point must be total.
        let c1 = ritm_agent::dpi::classify(&bytes);
        let c2 = ritm_agent::dpi::classify(&bytes);
        prop_assert_eq!(c1, c2, "classification must be deterministic");
    }
}
