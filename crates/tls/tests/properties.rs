//! Property-based tests for the TLS substrate: wire-format round-trips over
//! arbitrary field values, and robustness of every parser against garbage
//! and truncation (parsers must reject, never panic, never misparse).

use proptest::prelude::*;
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm_tls::connection::{ClientConfig, ServerConnection, ServerContext, TlsClient};
use ritm_tls::engine::{Action, ClientEngine, RecordAssembler, ServerEngine};
use ritm_tls::extensions::Extension;
use ritm_tls::handshake::{ClientHello, HandshakeMessage, ServerHello, SessionTicket};
use ritm_tls::record::{ContentType, TlsRecord};

/// Handshake wall-clock for the engine properties (certs below are valid
/// around it).
const NOW: u64 = 1_000_000;

fn engine_pki() -> (CertificateChain, TrustAnchors) {
    let ca_key = SigningKey::from_seed([1u8; 32]);
    let server_key = SigningKey::from_seed([2u8; 32]);
    let leaf = Certificate::issue(
        &ca_key,
        CaId::from_name("PropCA"),
        SerialNumber::from_u24(7),
        "prop.example.com",
        NOW - 100,
        NOW + 100_000,
        server_key.verifying_key(),
        false,
    );
    let mut anchors = TrustAnchors::new();
    anchors.add(CaId::from_name("PropCA"), ca_key.verifying_key());
    (CertificateChain(vec![leaf]), anchors)
}

fn engine_config(anchors: TrustAnchors) -> ClientConfig {
    ClientConfig {
        server_name: "prop.example.com".into(),
        anchors,
        enable_ritm: true,
    }
}

/// Runs the lockstep (record-granular) drivers to completion, returning
/// the exact bytes each side put on the wire.
fn lockstep_transcript(chain: CertificateChain, anchors: TrustAnchors) -> (Vec<u8>, Vec<u8>) {
    let ctx = ServerContext::new(chain, [9u8; 20]);
    let mut client = TlsClient::new(engine_config(anchors), [2u8; 32], None);
    let mut server = ServerConnection::new(ctx, [1u8; 32]);
    let mut client_bytes = Vec::new();
    let mut server_bytes = Vec::new();
    let mut to_server = vec![client.start()];
    for _ in 0..8 {
        let mut to_client = Vec::new();
        for rec in to_server.drain(..) {
            client_bytes.extend_from_slice(&rec.to_bytes());
            let (outs, _) = server.process_record(&rec, NOW).unwrap();
            to_client.extend(outs);
        }
        for rec in to_client.drain(..) {
            server_bytes.extend_from_slice(&rec.to_bytes());
            let (outs, _) = client.process_record(&rec, NOW).unwrap();
            to_server.extend(outs);
        }
        if client.is_established() && to_server.is_empty() {
            break;
        }
    }
    assert!(client.is_established() && server.is_established());
    (client_bytes, server_bytes)
}

fn arb_content_type() -> impl Strategy<Value = ContentType> {
    prop_oneof![
        Just(ContentType::ChangeCipherSpec),
        Just(ContentType::Alert),
        Just(ContentType::Handshake),
        Just(ContentType::ApplicationData),
        Just(ContentType::RitmStatus),
    ]
}

fn arb_extension() -> impl Strategy<Value = Extension> {
    (any::<u16>(), prop::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(ext_type, data)| Extension { ext_type, data })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn record_streams_round_trip(
        records in prop::collection::vec(
            (arb_content_type(), prop::collection::vec(any::<u8>(), 0..512)),
            0..6,
        )
    ) {
        let records: Vec<TlsRecord> = records
            .into_iter()
            .map(|(ct, payload)| TlsRecord::new(ct, payload))
            .collect();
        let stream = TlsRecord::encode_stream(&records);
        prop_assert_eq!(TlsRecord::parse_stream(&stream).unwrap(), records);
    }

    #[test]
    fn record_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = TlsRecord::parse_stream(&bytes);
    }

    #[test]
    fn client_hello_round_trips(
        random in any::<[u8; 32]>(),
        session_id in prop::collection::vec(any::<u8>(), 0..32),
        suites in prop::collection::vec(any::<u16>(), 1..8),
        extensions in prop::collection::vec(arb_extension(), 0..4),
        ritm in any::<bool>(),
    ) {
        let mut extensions = extensions;
        if ritm {
            extensions.push(Extension::ritm_request());
        }
        let msg = HandshakeMessage::ClientHello(ClientHello {
            version: 0x0303,
            random,
            session_id,
            cipher_suites: suites,
            extensions,
        });
        let parsed = HandshakeMessage::parse_all(&msg.to_bytes()).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        prop_assert_eq!(&parsed[0], &msg);
        if let HandshakeMessage::ClientHello(ch) = &parsed[0] {
            prop_assert_eq!(ch.has_ritm_extension(), ritm);
        }
    }

    #[test]
    fn server_hello_and_ticket_round_trip(
        random in any::<[u8; 32]>(),
        session_id in prop::collection::vec(any::<u8>(), 0..32),
        suite in any::<u16>(),
        lifetime in any::<u32>(),
        ticket in prop::collection::vec(any::<u8>(), 0..128),
        confirm in any::<bool>(),
    ) {
        let mut extensions = Vec::new();
        if confirm {
            extensions.push(Extension::ritm_confirmation());
        }
        let msgs = vec![
            HandshakeMessage::ServerHello(ServerHello {
                version: 0x0303,
                random,
                session_id,
                cipher_suite: suite,
                extensions,
            }),
            HandshakeMessage::NewSessionTicket(SessionTicket { lifetime, ticket }),
            HandshakeMessage::ServerHelloDone,
        ];
        let payload = HandshakeMessage::encode_all(&msgs);
        let parsed = HandshakeMessage::parse_all(&payload).unwrap();
        prop_assert_eq!(&parsed, &msgs);
        if let HandshakeMessage::ServerHello(sh) = &parsed[0] {
            prop_assert_eq!(sh.confirms_ritm(), confirm);
        }
    }

    #[test]
    fn handshake_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = HandshakeMessage::parse_all(&bytes);
    }

    #[test]
    fn certificates_round_trip_and_stay_valid(
        seed in any::<[u8; 32]>(),
        serial in 1u32..0xffffff,
        subject in "[a-z]{1,20}\\.(com|org|net)",
        not_before in 0u64..1_000_000,
        lifetime in 1u64..10_000_000,
    ) {
        let ca_key = SigningKey::from_seed(seed);
        let subject_key = SigningKey::from_seed([9u8; 32]);
        let cert = Certificate::issue(
            &ca_key,
            CaId::from_name("PropCA"),
            SerialNumber::from_u24(serial),
            &subject,
            not_before,
            not_before + lifetime,
            subject_key.verifying_key(),
            false,
        );
        let back = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert_eq!(&back, &cert);
        prop_assert!(back.verify(&ca_key.verifying_key(), not_before + lifetime / 2).is_ok());
        // Truncations never parse nor panic.
        let bytes = cert.to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            prop_assert!(Certificate::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn chain_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = CertificateChain::from_bytes(&bytes);
    }

    #[test]
    fn dpi_classifier_never_panics_and_non_tls_is_stable(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        // The RA's per-packet entry point must be total.
        let c1 = ritm_agent::dpi::classify(&bytes);
        let c2 = ritm_agent::dpi::classify(&bytes);
        prop_assert_eq!(c1, c2, "classification must be deterministic");
    }

    #[test]
    fn record_assembler_is_total(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        // Arbitrary bytes in arbitrary chunks: errors are typed, never
        // panics, and an error is sticky evidence (not a crash).
        let mut asm = RecordAssembler::new();
        for chunk in &chunks {
            asm.push(chunk);
            while let Ok(Some(_)) = asm.next_record() {}
        }
    }

    #[test]
    fn engine_feed_is_total_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let (chain, anchors) = engine_pki();
        let split = split.min(bytes.len());

        // Server engine fed arbitrary bytes in two arbitrary chunks.
        let mut server = ServerEngine::new(ServerContext::new(chain, [9u8; 20]), [1u8; 32]);
        let first = server.feed(NOW, &bytes[..split]);
        let second = server.feed(NOW, &bytes[split..]);
        // Once aborted, the engine stays aborted (no revival on new bytes).
        if first.iter().any(|a| matches!(a, Action::Abort { .. })) {
            prop_assert!(
                second.iter().all(|a| matches!(a, Action::Abort { .. })),
                "latched abort must not emit traffic: {second:?}",
            );
        }

        // Client engine likewise (after its opening flight).
        let mut client = ClientEngine::new(engine_config(anchors), [2u8; 32], None);
        let _ = client.start();
        let _ = client.feed(NOW, &bytes[..split]);
        let _ = client.feed(NOW, &bytes[split..]);
    }

    #[test]
    fn engines_match_lockstep_under_fragmentation(
        chunks in prop::collection::vec(1usize..97, 1..64),
    ) {
        let (chain, anchors) = engine_pki();
        let (golden_client, golden_server) =
            lockstep_transcript(chain.clone(), anchors.clone());

        // Same keys, same randoms, fresh context: the engine pair must put
        // bit-identical bytes on the wire no matter how reads fragment.
        let mut client = ClientEngine::new(engine_config(anchors), [2u8; 32], None);
        let mut server = ServerEngine::new(ServerContext::new(chain, [9u8; 20]), [1u8; 32]);
        let start = client.start().to_bytes();
        let mut sent_client = start.clone();
        let mut sent_server: Vec<u8> = Vec::new();
        let mut queue_cs = start; // bytes in flight client→server
        let mut queue_sc: Vec<u8> = Vec::new();
        let mut next_chunk = 0usize;
        let mut take = |queue: &mut Vec<u8>| -> Vec<u8> {
            let n = chunks[next_chunk % chunks.len()].min(queue.len());
            next_chunk += 1;
            queue.drain(..n).collect()
        };
        for _ in 0..20_000 {
            if client.is_established()
                && server.is_established()
                && queue_cs.is_empty()
                && queue_sc.is_empty()
            {
                break;
            }
            if !queue_cs.is_empty() {
                let chunk = take(&mut queue_cs);
                for action in server.feed(NOW, &chunk) {
                    match action {
                        Action::SendBytes(b) => {
                            sent_server.extend_from_slice(&b);
                            queue_sc.extend_from_slice(&b);
                        }
                        Action::Abort { alert } => {
                            return Err(TestCaseError::fail(format!("server aborted: {alert:?}")));
                        }
                        _ => {}
                    }
                }
            }
            if !queue_sc.is_empty() {
                let chunk = take(&mut queue_sc);
                for action in client.feed(NOW, &chunk) {
                    match action {
                        Action::SendBytes(b) => {
                            sent_client.extend_from_slice(&b);
                            queue_cs.extend_from_slice(&b);
                        }
                        Action::Abort { alert } => {
                            return Err(TestCaseError::fail(format!("client aborted: {alert:?}")));
                        }
                        _ => {}
                    }
                }
            }
        }
        prop_assert!(client.is_established(), "client engine must complete");
        prop_assert!(server.is_established(), "server engine must complete");
        prop_assert_eq!(sent_client, golden_client, "client bytes diverge from lockstep");
        prop_assert_eq!(sent_server, golden_server, "server bytes diverge from lockstep");
    }
}
