//! Property tests for the network simulator: identical inputs must yield
//! identical traces (the reproducibility guarantee every experiment relies
//! on), and transparent middleboxes must never alter payloads or timing
//! beyond their declared delay.

use proptest::prelude::*;
use ritm_net::middlebox::{MiddleboxNode, Passthrough};
use ritm_net::sim::{Context, NetNode, Path, Simulator, TraceEntry};
use ritm_net::tcp::{Addr, Direction, FourTuple, SocketAddr, TcpSegment};
use ritm_net::time::SimDuration;

struct Sink;
impl NetNode for Sink {
    fn on_segment(&mut self, _s: TcpSegment, _ctx: &mut Context) {}
}

struct Echo;
impl NetNode for Echo {
    fn on_segment(&mut self, seg: TcpSegment, ctx: &mut Context) {
        if seg.direction == Direction::ToServer {
            let mut reply = seg;
            reply.direction = Direction::ToClient;
            ctx.send(reply);
        }
    }
}

fn tuple() -> FourTuple {
    FourTuple {
        client: SocketAddr::new(1, 1000),
        server: SocketAddr::new(2, 443),
    }
}

fn run_once(
    payloads: &[Vec<u8>],
    latencies: (u64, u64),
    with_middlebox: bool,
) -> Vec<(u64, usize, Vec<u8>)> {
    let mut sim = Simulator::new();
    let c = sim.add_node(Box::new(Sink));
    let mut nodes = vec![c];
    if with_middlebox {
        nodes.push(sim.add_node(Box::new(MiddleboxNode::new(Passthrough))));
    }
    let s = sim.add_node(Box::new(Echo));
    nodes.push(s);
    let lats = if with_middlebox {
        vec![
            SimDuration::from_micros(latencies.0),
            SimDuration::from_micros(latencies.1),
        ]
    } else {
        vec![SimDuration::from_micros(latencies.0 + latencies.1)]
    };
    sim.add_path(Addr(1), Addr(2), Path::new(nodes, lats));
    sim.enable_trace();
    for (i, p) in payloads.iter().enumerate() {
        sim.inject(
            c,
            TcpSegment::data(tuple(), Direction::ToServer, i as u64 * 2000, 0, p.clone()),
        );
    }
    sim.run_to_quiescence();
    sim.trace()
        .iter()
        .map(|TraceEntry { at, to, segment }| (at.as_micros(), *to, segment.payload.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two identical runs produce byte-identical traces.
    #[test]
    fn simulation_is_deterministic(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..100), 1..8),
        l1 in 1u64..10_000,
        l2 in 1u64..10_000,
    ) {
        let a = run_once(&payloads, (l1, l2), true);
        let b = run_once(&payloads, (l1, l2), true);
        prop_assert_eq!(a, b);
    }

    /// A passthrough middlebox changes neither payloads nor end-to-end
    /// arrival order; total latency equals the hop sum.
    #[test]
    fn passthrough_is_transparent(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..100), 1..8),
        l1 in 1u64..10_000,
        l2 in 1u64..10_000,
    ) {
        let with_mb = run_once(&payloads, (l1, l2), true);
        let direct = run_once(&payloads, (l1, l2), false);
        // Compare endpoint deliveries only (the middlebox trace entries are
        // extra): filter to the echo server and the client.
        let endpoint_payloads = |trace: &[(u64, usize, Vec<u8>)], node: usize| -> Vec<Vec<u8>> {
            trace.iter().filter(|(_, to, _)| *to == node).map(|(_, _, p)| p.clone()).collect()
        };
        // Server is the last node id in each topology: 2 with middlebox, 1 without.
        prop_assert_eq!(
            endpoint_payloads(&with_mb, 2),
            endpoint_payloads(&direct, 1),
            "server must receive identical payloads"
        );
        // Arrival times at the server match exactly (latency sum preserved).
        let times_mb: Vec<u64> = with_mb.iter().filter(|(_, to, _)| *to == 2).map(|(t, _, _)| *t).collect();
        let times_direct: Vec<u64> = direct.iter().filter(|(_, to, _)| *to == 1).map(|(t, _, _)| *t).collect();
        prop_assert_eq!(times_mb, times_direct);
    }
}
