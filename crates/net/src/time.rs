//! Simulated time.
//!
//! All simulation time is integer microseconds: deterministic, cheap to
//! order, and fine-grained enough for the µs-scale processing costs of
//! Table III while spanning the multi-month billing simulations of Fig. 6.

/// A point in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Whole seconds (truncated) — what `time()` returns to protocol code,
    /// matching the paper's Unix-seconds convention.
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Microseconds since epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds from fractional seconds (e.g. sampled latencies).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t.as_secs(), 2);
        assert_eq!(t.since(SimTime::from_secs(1)).as_micros(), 1_500_000);
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn float_round_trip() {
        let d = SimDuration::from_secs_f64(0.123456);
        assert_eq!(d.as_micros(), 123_456);
        assert!((d.as_secs_f64() - 0.123456).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_duration_panics() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", SimTime::from_secs(3)).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(3)).is_empty());
    }
}
