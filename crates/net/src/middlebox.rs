//! The middlebox abstraction: in-path nodes that inspect, modify, or
//! passively forward TCP segments.
//!
//! RITM's Revocation Agent is implemented (in `ritm-agent`) as a
//! [`Middlebox`]; wrapping it in a [`MiddleboxNode`] puts it on a simulated
//! path. Non-RITM traffic must pass through untouched — the paper's
//! backward-compatibility requirement (§VII-F, "RAs are completely
//! non-invasive for non-supported clients").

use crate::sim::{Context, NetNode};
use crate::tcp::TcpSegment;
use crate::time::{SimDuration, SimTime};

/// Pure middlebox logic: consumes a segment, returns the segments to emit.
pub trait Middlebox {
    /// Processes one in-flight segment. The returned segments are forwarded
    /// along the path in their own direction; returning the input unchanged
    /// makes the middlebox transparent; returning an empty vector drops the
    /// segment.
    fn process(&mut self, segment: TcpSegment, now: SimTime) -> Vec<TcpSegment>;

    /// Per-segment processing delay to charge in the simulation (e.g. the
    /// DPI + proof-construction costs of Table III).
    fn processing_delay(&self, _segment: &TcpSegment) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Adapts a [`Middlebox`] into a simulator [`NetNode`].
pub struct MiddleboxNode<M: Middlebox> {
    inner: M,
}

impl<M: Middlebox> MiddleboxNode<M> {
    /// Wraps `inner`.
    pub fn new(inner: M) -> Self {
        MiddleboxNode { inner }
    }

    /// Borrows the wrapped middlebox.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutably borrows the wrapped middlebox.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }
}

impl<M: Middlebox> NetNode for MiddleboxNode<M> {
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
        let delay = self.inner.processing_delay(&segment);
        for out in self.inner.process(segment, ctx.now) {
            ctx.send_after(out, delay);
        }
    }
}

/// A fully transparent middlebox (control case: path without an RA).
#[derive(Debug, Default, Clone, Copy)]
pub struct Passthrough;

impl Middlebox for Passthrough {
    fn process(&mut self, segment: TcpSegment, _now: SimTime) -> Vec<TcpSegment> {
        vec![segment]
    }
}

/// A middlebox that drops every segment matching a predicate — used to model
/// the blocking adversary of §V.
pub struct Dropper<F> {
    predicate: F,
    /// Number of segments dropped so far.
    pub dropped: u64,
}

impl<F: FnMut(&TcpSegment) -> bool> Dropper<F> {
    /// Drops segments for which `predicate` returns `true`.
    pub fn new(predicate: F) -> Self {
        Dropper {
            predicate,
            dropped: 0,
        }
    }
}

impl<F: FnMut(&TcpSegment) -> bool> Middlebox for Dropper<F> {
    fn process(&mut self, segment: TcpSegment, _now: SimTime) -> Vec<TcpSegment> {
        if (self.predicate)(&segment) {
            self.dropped += 1;
            Vec::new()
        } else {
            vec![segment]
        }
    }
}

impl<M: Middlebox> Middlebox for std::rc::Rc<std::cell::RefCell<M>> {
    fn process(&mut self, segment: TcpSegment, now: SimTime) -> Vec<TcpSegment> {
        self.borrow_mut().process(segment, now)
    }
    fn processing_delay(&self, segment: &TcpSegment) -> SimDuration {
        self.borrow().processing_delay(segment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Path, Simulator};
    use crate::tcp::{Addr, Direction, FourTuple, SocketAddr};

    fn tuple() -> FourTuple {
        FourTuple {
            client: SocketAddr::new(1, 5000),
            server: SocketAddr::new(2, 443),
        }
    }

    struct Sink;
    impl NetNode for Sink {
        fn on_segment(&mut self, _s: TcpSegment, _ctx: &mut Context) {}
    }

    #[test]
    fn passthrough_forwards_unchanged() {
        let mut sim = Simulator::new();
        let c = sim.add_node(Box::new(Sink));
        let mb = sim.add_node(Box::new(MiddleboxNode::new(Passthrough)));
        let s = sim.add_node(Box::new(Sink));
        sim.add_path(
            Addr(1),
            Addr(2),
            Path::new(vec![c, mb, s], vec![SimDuration::from_millis(1); 2]),
        );
        sim.enable_trace();
        let seg = TcpSegment::data(tuple(), Direction::ToServer, 9, 0, vec![42]);
        sim.inject(c, seg.clone());
        sim.run_to_quiescence();
        assert_eq!(sim.trace().len(), 2);
        assert_eq!(sim.trace()[1].segment, seg, "payload untouched");
    }

    #[test]
    fn dropper_blocks_matching_segments() {
        let mut sim = Simulator::new();
        let c = sim.add_node(Box::new(Sink));
        let mb = sim.add_node(Box::new(MiddleboxNode::new(Dropper::new(
            |s: &TcpSegment| s.payload.first() == Some(&0xBB),
        ))));
        let s = sim.add_node(Box::new(Sink));
        sim.add_path(
            Addr(1),
            Addr(2),
            Path::new(vec![c, mb, s], vec![SimDuration::from_millis(1); 2]),
        );
        sim.enable_trace();
        sim.inject(
            c,
            TcpSegment::data(tuple(), Direction::ToServer, 0, 0, vec![0xAA]),
        );
        sim.inject(
            c,
            TcpSegment::data(tuple(), Direction::ToServer, 1, 0, vec![0xBB]),
        );
        sim.run_to_quiescence();
        // 0xAA reaches the server (2 deliveries); 0xBB dies at the middlebox
        // (1 delivery).
        assert_eq!(sim.trace().len(), 3);
        assert_eq!(sim.trace().iter().filter(|t| t.to == s).count(), 1);
    }

    #[test]
    fn processing_delay_is_charged() {
        struct Slow;
        impl Middlebox for Slow {
            fn process(&mut self, seg: TcpSegment, _now: SimTime) -> Vec<TcpSegment> {
                vec![seg]
            }
            fn processing_delay(&self, _s: &TcpSegment) -> SimDuration {
                SimDuration::from_millis(7)
            }
        }
        let mut sim = Simulator::new();
        let c = sim.add_node(Box::new(Sink));
        let mb = sim.add_node(Box::new(MiddleboxNode::new(Slow)));
        let s = sim.add_node(Box::new(Sink));
        sim.add_path(
            Addr(1),
            Addr(2),
            Path::new(vec![c, mb, s], vec![SimDuration::from_millis(1); 2]),
        );
        sim.enable_trace();
        sim.inject(
            c,
            TcpSegment::data(tuple(), Direction::ToServer, 0, 0, vec![1]),
        );
        sim.run_to_quiescence();
        // 1 ms to mb, +7 ms processing, +1 ms to server = 9 ms.
        assert_eq!(sim.trace().last().unwrap().at.as_micros(), 9_000);
    }
}
