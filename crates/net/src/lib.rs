//! # ritm-net — deterministic discrete-event network simulator
//!
//! The substrate under RITM's end-to-end experiments: TCP-like segments
//! ([`tcp`]) travel along multi-hop paths ([`sim::Path`]) where middleboxes
//! ([`middlebox`]) may inspect and rewrite them — the vantage point a
//! Revocation Agent occupies (paper Fig. 1). Latency models ([`latency`])
//! drive the CDN download-time experiments (Fig. 5). Time ([`time`]) is
//! integer microseconds for full determinism.
//!
//! # Examples
//!
//! ```
//! use ritm_net::sim::{Context, NetNode, Path, Simulator};
//! use ritm_net::tcp::{Addr, Direction, FourTuple, SocketAddr, TcpSegment};
//! use ritm_net::time::SimDuration;
//!
//! struct Sink;
//! impl NetNode for Sink {
//!     fn on_segment(&mut self, _s: TcpSegment, _ctx: &mut Context) {}
//! }
//!
//! let mut sim = Simulator::new();
//! let client = sim.add_node(Box::new(Sink));
//! let server = sim.add_node(Box::new(Sink));
//! sim.add_path(Addr(1), Addr(2), Path::new(vec![client, server], vec![SimDuration::from_millis(20)]));
//! let tuple = FourTuple { client: SocketAddr::new(1, 5000), server: SocketAddr::new(2, 443) };
//! sim.inject(client, TcpSegment::data(tuple, Direction::ToServer, 0, 0, vec![1, 2, 3]));
//! sim.run_to_quiescence();
//! assert_eq!(sim.now().as_micros(), 20_000);
//! ```

pub mod latency;
pub mod middlebox;
pub mod sim;
pub mod tcp;
pub mod time;

pub use latency::LatencyModel;
pub use middlebox::{Middlebox, MiddleboxNode, Passthrough};
pub use sim::{Context, NetNode, NodeId, Path, Simulator};
pub use tcp::{Addr, Direction, FourTuple, SeqTranslator, SocketAddr, StreamSegmenter, TcpSegment};
pub use time::{SimDuration, SimTime};
