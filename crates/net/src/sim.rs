//! A deterministic discrete-event network simulator.
//!
//! Nodes exchange [`TcpSegment`]s along configured paths. Every hop has a
//! latency; middleboxes sit *on* the path and decide per segment whether to
//! forward, modify, or absorb it — exactly the vantage point an RA occupies
//! in the paper (Fig. 1). Determinism: events at equal times fire in
//! insertion order, and all randomness comes from caller-provided RNGs.

use crate::tcp::{Addr, Direction, TcpSegment};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Index of a node registered with the simulator.
pub type NodeId = usize;

/// What a node asks the simulator to do after handling an event.
#[derive(Debug)]
pub enum Action {
    /// Send a segment onward along its connection's path (the simulator
    /// picks the next hop from this node's position and direction).
    Send {
        /// Segment to transmit.
        segment: TcpSegment,
        /// Extra delay before the segment leaves this node (models
        /// processing time, e.g. proof construction).
        delay: SimDuration,
    },
    /// Arm a timer that calls back into this node.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Opaque id returned to the node.
        timer_id: u64,
    },
}

/// Handed to nodes during callbacks; collects their actions.
#[derive(Debug)]
pub struct Context {
    /// Current simulated time.
    pub now: SimTime,
    /// The node being called.
    pub node: NodeId,
    actions: Vec<Action>,
}

impl Context {
    /// Forwards `segment` along its path (next hop chosen by direction).
    pub fn send(&mut self, segment: TcpSegment) {
        self.actions.push(Action::Send {
            segment,
            delay: SimDuration::ZERO,
        });
    }

    /// Forwards `segment` after a processing delay.
    pub fn send_after(&mut self, segment: TcpSegment, delay: SimDuration) {
        self.actions.push(Action::Send { segment, delay });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, delay: SimDuration, timer_id: u64) {
        self.actions.push(Action::Timer { delay, timer_id });
    }
}

/// A participant in the simulation.
pub trait NetNode {
    /// Called when a segment is delivered to this node.
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context);

    /// Called when a timer armed by this node fires.
    fn on_timer(&mut self, _timer_id: u64, _ctx: &mut Context) {}
}

/// The ordered chain of nodes a connection traverses, client first.
#[derive(Debug, Clone)]
pub struct Path {
    /// Node ids, `[client, …middleboxes…, server]`.
    pub nodes: Vec<NodeId>,
    /// Latency of each hop; `hop_latency.len() == nodes.len() - 1`.
    pub hop_latency: Vec<SimDuration>,
}

impl Path {
    /// Creates a path, validating shape.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes.len() >= 2` and latencies match hops.
    pub fn new(nodes: Vec<NodeId>, hop_latency: Vec<SimDuration>) -> Self {
        assert!(nodes.len() >= 2, "a path needs two endpoints");
        assert_eq!(hop_latency.len(), nodes.len() - 1, "one latency per hop");
        Path { nodes, hop_latency }
    }

    /// Total one-way propagation latency.
    pub fn total_latency(&self) -> SimDuration {
        self.hop_latency
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }

    fn position_of(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver { to: NodeId, segment: TcpSegment },
    Timer { node: NodeId, timer_id: u64 },
}

#[derive(Debug)]
struct QueuedEvent {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One recorded delivery, when tracing is enabled.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Delivery time.
    pub at: SimTime,
    /// Receiving node.
    pub to: NodeId,
    /// The delivered segment.
    pub segment: TcpSegment,
}

/// The simulator: nodes, paths, and a time-ordered event queue.
pub struct Simulator {
    nodes: Vec<Option<Box<dyn NetNode>>>,
    /// Paths keyed by (client addr, server addr).
    paths: HashMap<(Addr, Addr), Path>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: SimTime,
    seq: u64,
    trace: Option<Vec<TraceEntry>>,
    /// Count of segment deliveries (for loop detection / stats).
    pub deliveries: u64,
}

impl core::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("paths", &self.paths.len())
            .field("queued", &self.queue.len())
            .field("now", &self.now)
            .finish()
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            nodes: Vec::new(),
            paths: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            trace: None,
            deliveries: 0,
        }
    }

    /// Registers a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn NetNode>) -> NodeId {
        self.nodes.push(Some(node));
        self.nodes.len() - 1
    }

    /// Installs the path for connections between `client_addr` and
    /// `server_addr` (both directions).
    pub fn add_path(&mut self, client_addr: Addr, server_addr: Addr, path: Path) {
        self.paths.insert((client_addr, server_addr), path);
    }

    /// Starts recording every delivery.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The trace so far (empty if tracing was never enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Jumps the clock forward (e.g. to start a run at a Unix-time epoch).
    ///
    /// # Panics
    ///
    /// Panics if events are pending or `t` is in the past.
    pub fn set_now(&mut self, t: SimTime) {
        assert!(
            self.queue.is_empty(),
            "cannot jump time with pending events"
        );
        assert!(t >= self.now, "time must not go backwards");
        self.now = t;
    }

    /// Time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Processes every event scheduled at or before `t`, then advances the
    /// clock to exactly `t`. Returns the number of events processed. This is
    /// how harnesses interleave out-of-band work (CA refreshes, RA↔CDN
    /// syncs) with in-flight traffic.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let mut processed = 0;
        while self.peek_time().is_some_and(|at| at <= t) {
            processed += self.run(1);
        }
        if t > self.now {
            self.now = t;
        }
        processed
    }

    /// Injects a segment as if `from` had sent it, at the current time.
    ///
    /// # Panics
    ///
    /// Panics if no path exists for the segment's tuple or `from` is not on
    /// it.
    pub fn inject(&mut self, from: NodeId, segment: TcpSegment) {
        self.route(from, segment, SimDuration::ZERO);
    }

    /// Arms a timer for `node` (e.g. to bootstrap periodic behaviour).
    pub fn arm_timer(&mut self, node: NodeId, delay: SimDuration, timer_id: u64) {
        self.push_event(self.now + delay, EventKind::Timer { node, timer_id });
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, kind }));
    }

    fn route(&mut self, from: NodeId, segment: TcpSegment, extra_delay: SimDuration) {
        let key = (segment.tuple.client.addr, segment.tuple.server.addr);
        let path = self
            .paths
            .get(&key)
            .unwrap_or_else(|| panic!("no path for connection {}", segment.tuple));
        let pos = path
            .position_of(from)
            .unwrap_or_else(|| panic!("node {from} is not on the path for {}", segment.tuple));
        let (next, latency) = match segment.direction {
            Direction::ToServer => {
                assert!(
                    pos + 1 < path.nodes.len(),
                    "server cannot send toward itself"
                );
                (path.nodes[pos + 1], path.hop_latency[pos])
            }
            Direction::ToClient => {
                assert!(pos > 0, "client cannot send toward itself");
                (path.nodes[pos - 1], path.hop_latency[pos - 1])
            }
        };
        let at = self.now + extra_delay + latency;
        self.push_event(at, EventKind::Deliver { to: next, segment });
    }

    /// Runs until the queue drains or `max_events` fire. Returns the number
    /// of events processed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.now = ev.at;
            processed += 1;
            match ev.kind {
                EventKind::Deliver { to, segment } => {
                    self.deliveries += 1;
                    if let Some(trace) = &mut self.trace {
                        trace.push(TraceEntry {
                            at: ev.at,
                            to,
                            segment: segment.clone(),
                        });
                    }
                    self.dispatch(to, |node, ctx| node.on_segment(segment, ctx));
                }
                EventKind::Timer { node, timer_id } => {
                    self.dispatch(node, |n, ctx| n.on_timer(timer_id, ctx));
                }
            }
        }
        processed
    }

    /// Runs until the queue is empty (bounded by a large safety cap).
    ///
    /// # Panics
    ///
    /// Panics if the cap of 10 million events is hit — almost certainly a
    /// routing loop.
    pub fn run_to_quiescence(&mut self) -> u64 {
        const CAP: u64 = 10_000_000;
        let n = self.run(CAP);
        assert!(
            self.queue.is_empty() || n < CAP,
            "simulation did not quiesce within {CAP} events"
        );
        n
    }

    fn dispatch<F>(&mut self, node_id: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn NetNode>, &mut Context),
    {
        let mut node = self.nodes[node_id]
            .take()
            .unwrap_or_else(|| panic!("node {node_id} re-entered"));
        let mut ctx = Context {
            now: self.now,
            node: node_id,
            actions: Vec::new(),
        };
        f(&mut node, &mut ctx);
        self.nodes[node_id] = Some(node);
        for action in ctx.actions {
            match action {
                Action::Send { segment, delay } => self.route(node_id, segment, delay),
                Action::Timer { delay, timer_id } => {
                    self.push_event(
                        self.now + delay,
                        EventKind::Timer {
                            node: node_id,
                            timer_id,
                        },
                    );
                }
            }
        }
    }

    /// Borrows a node back out of the simulator (for post-run inspection).
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid.
    pub fn node(&self, id: NodeId) -> &dyn NetNode {
        self.nodes[id].as_deref().expect("node present")
    }

    /// Mutable access to a node (e.g. to read results after the run).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Box<dyn NetNode> {
        self.nodes[id].as_mut().expect("node present")
    }
}

impl<N: NetNode> NetNode for std::rc::Rc<std::cell::RefCell<N>> {
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
        self.borrow_mut().on_segment(segment, ctx);
    }
    fn on_timer(&mut self, timer_id: u64, ctx: &mut Context) {
        self.borrow_mut().on_timer(timer_id, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{FourTuple, SocketAddr};

    fn tuple() -> FourTuple {
        FourTuple {
            client: SocketAddr::new(1, 1000),
            server: SocketAddr::new(2, 443),
        }
    }

    /// Echoes every received segment back toward its origin.
    struct Echo {
        received: Vec<TcpSegment>,
    }

    impl NetNode for Echo {
        fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
            self.received.push(segment.clone());
            if segment.direction == Direction::ToServer {
                let mut reply = segment;
                reply.direction = Direction::ToClient;
                ctx.send(reply);
            }
        }
    }

    /// Counts deliveries; forwards everything unchanged.
    struct Forwarder {
        seen: usize,
    }

    impl NetNode for Forwarder {
        fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
            self.seen += 1;
            ctx.send(segment);
        }
    }

    /// Collects segments without replying.
    struct Sink {
        received: Vec<(SimTime, TcpSegment)>,
    }

    impl NetNode for Sink {
        fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
            self.received.push((ctx.now, segment));
        }
    }

    #[test]
    fn two_node_round_trip_latency() {
        let mut sim = Simulator::new();
        let client = sim.add_node(Box::new(Sink { received: vec![] }));
        let server = sim.add_node(Box::new(Echo { received: vec![] }));
        sim.add_path(
            Addr(1),
            Addr(2),
            Path::new(vec![client, server], vec![SimDuration::from_millis(30)]),
        );
        let seg = TcpSegment::data(tuple(), Direction::ToServer, 0, 0, b"hello".to_vec());
        sim.inject(client, seg);
        sim.run_to_quiescence();

        let sink = sim.nodes[client].as_ref().unwrap();
        let _ = sink;
        // Downcast via trace instead: check times.
        let mut sim2 = Simulator::new();
        let c2 = sim2.add_node(Box::new(Sink { received: vec![] }));
        let s2 = sim2.add_node(Box::new(Echo { received: vec![] }));
        sim2.add_path(
            Addr(1),
            Addr(2),
            Path::new(vec![c2, s2], vec![SimDuration::from_millis(30)]),
        );
        sim2.enable_trace();
        sim2.inject(
            c2,
            TcpSegment::data(tuple(), Direction::ToServer, 0, 0, b"hi".to_vec()),
        );
        sim2.run_to_quiescence();
        let trace = sim2.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].at, SimTime(30_000), "one-way 30 ms");
        assert_eq!(trace[1].at, SimTime(60_000), "round trip 60 ms");
        assert_eq!(trace[1].to, c2);
    }

    #[test]
    fn middlebox_sees_both_directions() {
        let mut sim = Simulator::new();
        let client = sim.add_node(Box::new(Sink { received: vec![] }));
        let mb = sim.add_node(Box::new(Forwarder { seen: 0 }));
        let server = sim.add_node(Box::new(Echo { received: vec![] }));
        sim.add_path(
            Addr(1),
            Addr(2),
            Path::new(
                vec![client, mb, server],
                vec![SimDuration::from_millis(5), SimDuration::from_millis(10)],
            ),
        );
        sim.enable_trace();
        sim.inject(
            client,
            TcpSegment::data(tuple(), Direction::ToServer, 0, 0, vec![1]),
        );
        sim.run_to_quiescence();
        // client→mb→server, then server→mb→client: 4 deliveries total.
        assert_eq!(sim.deliveries, 4);
        // Final delivery back at the client at 2*(5+10) ms.
        assert_eq!(sim.trace().last().unwrap().at, SimTime(30_000));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<(u64, SimTime)>,
        }
        impl NetNode for TimerNode {
            fn on_segment(&mut self, _s: TcpSegment, _ctx: &mut Context) {}
            fn on_timer(&mut self, timer_id: u64, ctx: &mut Context) {
                self.fired.push((timer_id, ctx.now));
                if timer_id < 3 {
                    ctx.set_timer(SimDuration::from_secs(1), timer_id + 1);
                }
            }
        }
        let mut sim = Simulator::new();
        let n = sim.add_node(Box::new(TimerNode { fired: vec![] }));
        sim.arm_timer(n, SimDuration::from_secs(1), 1);
        sim.run_to_quiescence();
        // Read back.
        let boxed = sim.node_mut(n);
        // We can't downcast without Any; assert via a second run instead.
        let _ = boxed;
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn equal_time_events_fifo() {
        let mut sim = Simulator::new();
        let sink = sim.add_node(Box::new(Sink { received: vec![] }));
        let src = sim.add_node(Box::new(Sink { received: vec![] }));
        sim.add_path(
            Addr(1),
            Addr(2),
            Path::new(vec![sink, src], vec![SimDuration::from_millis(1)]),
        );
        sim.enable_trace();
        for i in 0..5u8 {
            let seg = TcpSegment::data(tuple(), Direction::ToServer, i as u64, 0, vec![i]);
            sim.inject(sink, seg);
        }
        sim.run_to_quiescence();
        let payloads: Vec<u8> = sim.trace().iter().map(|t| t.segment.payload[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4], "FIFO at equal timestamps");
    }

    #[test]
    #[should_panic(expected = "no path")]
    fn missing_path_panics() {
        let mut sim = Simulator::new();
        let a = sim.add_node(Box::new(Sink { received: vec![] }));
        sim.inject(
            a,
            TcpSegment::data(tuple(), Direction::ToServer, 0, 0, vec![]),
        );
    }

    #[test]
    #[should_panic(expected = "one latency per hop")]
    fn malformed_path_panics() {
        Path::new(vec![0, 1, 2], vec![SimDuration::ZERO]);
    }
}
