//! TCP-like segments and the connection 4-tuple.
//!
//! RAs identify RITM-supported connections by the `(sIP, sPort, dIP, dPort)`
//! tuple (Eq. 4 of the paper) and, when piggybacking a revocation status,
//! must extend a segment's payload and adjust sequence numbers for the rest
//! of the session (§VIII, option 1/3). This module models exactly the fields
//! that machinery needs.

use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// An IPv4-style address (host id) in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u32);

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// A socket endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketAddr {
    /// Host address.
    pub addr: Addr,
    /// Port.
    pub port: u16,
}

impl SocketAddr {
    /// Creates an endpoint.
    pub fn new(addr: u32, port: u16) -> Self {
        SocketAddr {
            addr: Addr(addr),
            port,
        }
    }
}

impl core::fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// The connection 4-tuple as the *client* sees it (client = source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FourTuple {
    /// Client endpoint (`sIP:sPort` in Eq. 4).
    pub client: SocketAddr,
    /// Server endpoint (`dIP:dPort` in Eq. 4).
    pub server: SocketAddr,
}

impl core::fmt::Display for FourTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} -> {}", self.client, self.server)
    }
}

/// Direction of a segment relative to the 4-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server.
    ToServer,
    /// Server → client.
    ToClient,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::ToServer => Direction::ToClient,
            Direction::ToClient => Direction::ToServer,
        }
    }
}

/// TCP segment control flags (only the ones the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Connection open.
    pub syn: bool,
    /// Connection close.
    pub fin: bool,
    /// Abort.
    pub rst: bool,
}

/// A TCP-like segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Connection this segment belongs to.
    pub tuple: FourTuple,
    /// Direction of travel.
    pub direction: Direction,
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Acknowledgement number (next expected byte from the peer).
    pub ack: u64,
    /// Control flags.
    pub flags: TcpFlags,
    /// Payload bytes (TLS records in this system).
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// A data segment.
    pub fn data(
        tuple: FourTuple,
        direction: Direction,
        seq: u64,
        ack: u64,
        payload: Vec<u8>,
    ) -> Self {
        TcpSegment {
            tuple,
            direction,
            seq,
            ack,
            flags: TcpFlags::default(),
            payload,
        }
    }

    /// Sequence number of the byte *after* this payload.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.payload.len() as u64
    }

    /// On-wire size: a 40-byte IP+TCP header plus payload (used for
    /// bandwidth accounting).
    pub fn wire_len(&self) -> usize {
        40 + self.payload.len()
    }

    /// Serializes the segment (for traces and hashing).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(self.tuple.client.addr.0);
        w.u16(self.tuple.client.port);
        w.u32(self.tuple.server.addr.0);
        w.u16(self.tuple.server.port);
        w.u8(match self.direction {
            Direction::ToServer => 0,
            Direction::ToClient => 1,
        });
        w.u64(self.seq);
        w.u64(self.ack);
        w.u8(u8::from(self.flags.syn)
            | u8::from(self.flags.fin) << 1
            | u8::from(self.flags.rst) << 2);
        w.vec24(&self.payload);
        w.into_bytes()
    }

    /// Parses a segment.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tuple = FourTuple {
            client: SocketAddr::new(r.u32("client addr")?, r.u16("client port")?),
            server: SocketAddr::new(r.u32("server addr")?, r.u16("server port")?),
        };
        let direction = match r.u8("direction")? {
            0 => Direction::ToServer,
            1 => Direction::ToClient,
            _ => return Err(DecodeError::new("bad direction", r.position())),
        };
        let seq = r.u64("seq")?;
        let ack = r.u64("ack")?;
        let fl = r.u8("flags")?;
        let flags = TcpFlags {
            syn: fl & 1 != 0,
            fin: fl & 2 != 0,
            rst: fl & 4 != 0,
        };
        let payload = r.vec24("payload")?.to_vec();
        r.finish("segment trailing")?;
        Ok(TcpSegment {
            tuple,
            direction,
            seq,
            ack,
            flags,
            payload,
        })
    }
}

/// Per-connection sequence-number translation for a middlebox that injects
/// bytes into the server→client stream (paper §VIII: "the RA must adjust the
/// sequence numbers of the TCP session").
///
/// After the RA has injected `delta` bytes toward the client:
/// * server→client segments keep their `seq` but the client believes the
///   stream is `delta` bytes longer, so the RA **shifts `seq` up** for bytes
///   sent after the injection point;
/// * client→server segments acknowledge `delta` more bytes than the server
///   sent, so the RA **shifts `ack` down**.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqTranslator {
    /// Total bytes injected into the server→client stream so far.
    injected: u64,
}

impl SeqTranslator {
    /// Creates a no-op translator.
    pub fn new() -> Self {
        SeqTranslator::default()
    }

    /// Total injected bytes.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Records that `n` bytes were appended to a server→client segment.
    pub fn record_injection(&mut self, n: usize) {
        self.injected += n as u64;
    }

    /// Rewrites a segment in flight. Must be called on *every* segment of
    /// the connection after the first injection.
    pub fn translate(&self, seg: &mut TcpSegment) {
        match seg.direction {
            Direction::ToClient => {
                seg.seq += self.injected;
                // The server's ack of client bytes is unaffected.
            }
            Direction::ToServer => {
                seg.ack = seg.ack.saturating_sub(self.injected);
            }
        }
    }
}

/// Turns one direction of a byte stream into sequenced [`TcpSegment`]s —
/// the bridge from real sockets (the event runtime's relay tasks) into the
/// segment-granular interfaces ([`Middlebox`](crate::middlebox::Middlebox),
/// flow reassembly) that expect Eq. (4)-shaped traffic.
#[derive(Debug, Clone)]
pub struct StreamSegmenter {
    tuple: FourTuple,
    direction: Direction,
    seq: u64,
}

impl StreamSegmenter {
    /// Creates a segmenter for one direction of `tuple`, starting at
    /// sequence number `isn`.
    pub fn new(tuple: FourTuple, direction: Direction, isn: u64) -> Self {
        StreamSegmenter {
            tuple,
            direction,
            seq: isn,
        }
    }

    /// Next sequence number this direction will emit.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Wraps `payload` in the next in-order segment.
    pub fn push(&mut self, payload: &[u8]) -> TcpSegment {
        let seg = TcpSegment {
            tuple: self.tuple,
            direction: self.direction,
            seq: self.seq,
            ack: 0,
            flags: TcpFlags::default(),
            payload: payload.to_vec(),
        };
        self.seq += payload.len() as u64;
        seg
    }

    /// Emits an empty FIN segment closing this direction.
    pub fn fin(&mut self) -> TcpSegment {
        let mut seg = self.push(&[]);
        seg.flags.fin = true;
        seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> FourTuple {
        FourTuple {
            client: SocketAddr::new(0x0c22_384e, 9012), // 12.34.56.78 (paper Fig. 3)
            server: SocketAddr::new(0x624c_3620, 443),  // 98.76.54.32
        }
    }

    #[test]
    fn display_matches_paper_example() {
        let t = tuple();
        assert_eq!(t.to_string(), "12.34.56.78:9012 -> 98.76.54.32:443");
    }

    #[test]
    fn segment_round_trip() {
        let seg = TcpSegment {
            tuple: tuple(),
            direction: Direction::ToClient,
            seq: 1000,
            ack: 555,
            flags: TcpFlags {
                syn: false,
                fin: true,
                rst: false,
            },
            payload: vec![1, 2, 3],
        };
        assert_eq!(TcpSegment::from_bytes(&seg.to_bytes()).unwrap(), seg);
    }

    #[test]
    fn seq_end_and_wire_len() {
        let seg = TcpSegment::data(tuple(), Direction::ToServer, 100, 0, vec![0; 10]);
        assert_eq!(seg.seq_end(), 110);
        assert_eq!(seg.wire_len(), 50);
    }

    #[test]
    fn translator_shifts_both_directions() {
        let mut tr = SeqTranslator::new();
        tr.record_injection(700);
        let mut down = TcpSegment::data(tuple(), Direction::ToClient, 5000, 42, vec![1]);
        tr.translate(&mut down);
        assert_eq!(down.seq, 5700);
        assert_eq!(down.ack, 42, "server's ack of client bytes untouched");

        let mut up = TcpSegment::data(tuple(), Direction::ToServer, 42, 5701, vec![]);
        tr.translate(&mut up);
        assert_eq!(up.ack, 5001, "client acks are shifted back down");
        assert_eq!(up.seq, 42);
    }

    #[test]
    fn translator_accumulates() {
        let mut tr = SeqTranslator::new();
        tr.record_injection(100);
        tr.record_injection(200);
        assert_eq!(tr.injected(), 300);
    }

    #[test]
    fn noop_translator_is_identity() {
        let tr = SeqTranslator::new();
        let orig = TcpSegment::data(tuple(), Direction::ToClient, 7, 8, vec![9]);
        let mut seg = orig.clone();
        tr.translate(&mut seg);
        assert_eq!(seg, orig);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::ToServer.flip(), Direction::ToClient);
        assert_eq!(Direction::ToClient.flip(), Direction::ToServer);
    }

    #[test]
    fn truncated_segment_rejected() {
        let seg = TcpSegment::data(tuple(), Direction::ToServer, 1, 2, vec![3; 10]);
        let bytes = seg.to_bytes();
        assert!(TcpSegment::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }
}
