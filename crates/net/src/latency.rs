//! Latency distributions for links and vantage points.
//!
//! `rand_distr` is not available offline, so the normal and log-normal
//! samplers are implemented directly (Box–Muller). Log-normal RTTs are the
//! standard model for wide-area latency and drive the Fig. 5 download-time
//! CDFs.

use crate::time::SimDuration;
use rand::Rng;

/// A latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Always the same value (seconds).
    Constant(f64),
    /// Uniform between min and max seconds.
    Uniform {
        /// Lower bound (seconds).
        min: f64,
        /// Upper bound (seconds).
        max: f64,
    },
    /// Log-normal with the given location/scale of the underlying normal,
    /// plus a fixed floor (propagation delay), all in seconds.
    LogNormal {
        /// Location parameter µ of `ln X`.
        mu: f64,
        /// Scale parameter σ of `ln X`.
        sigma: f64,
        /// Additive floor, e.g. speed-of-light propagation.
        floor: f64,
    },
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let secs = match *self {
            LatencyModel::Constant(s) => s,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max);
                rng.gen_range(min..=max)
            }
            LatencyModel::LogNormal { mu, sigma, floor } => {
                floor + (mu + sigma * standard_normal(rng)).exp()
            }
        };
        SimDuration::from_secs_f64(secs.max(0.0))
    }

    /// The distribution mean in seconds (analytic).
    pub fn mean_secs(&self) -> f64 {
        match *self {
            LatencyModel::Constant(s) => s,
            LatencyModel::Uniform { min, max } => (min + max) / 2.0,
            LatencyModel::LogNormal { mu, sigma, floor } => {
                floor + (mu + sigma * sigma / 2.0).exp()
            }
        }
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Constant(0.05);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(50));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            min: 0.01,
            max: 0.02,
        };
        for _ in 0..1000 {
            let s = m.sample(&mut rng).as_secs_f64();
            assert!((0.01..=0.02).contains(&s));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn lognormal_mean_close_to_analytic() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LatencyModel::LogNormal {
            mu: -3.0,
            sigma: 0.5,
            floor: 0.01,
        };
        let n = 50_000;
        let mean = (0..n)
            .map(|_| m.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - m.mean_secs()).abs() / m.mean_secs() < 0.05,
            "empirical {mean} vs analytic {}",
            m.mean_secs()
        );
    }

    #[test]
    fn samples_never_negative() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = LatencyModel::LogNormal {
            mu: -8.0,
            sigma: 3.0,
            floor: 0.0,
        };
        for _ in 0..1000 {
            let _ = m.sample(&mut rng); // from_secs_f64 would panic if negative
        }
    }
}
