//! Simulator-node adapters for the TLS endpoints.
//!
//! These wrap [`RitmClient`] and [`ServerConnection`] as
//! [`NetNode`]s so full RITM connections run over the packet-level network
//! simulator with an RA middlebox in between.

use ritm_client::{RitmClient, RitmEvent};
use ritm_net::sim::{Context, NetNode};
use ritm_net::tcp::{Direction, FourTuple, TcpSegment};
use ritm_net::time::SimDuration;
use ritm_tls::connection::{ServerConnection, TlsError};
use ritm_tls::record::TlsRecord;

/// Timer id used by the client's periodic staleness check.
pub const CLIENT_TICK_TIMER: u64 = 1;
/// Base timer id for server scheduled sends; timer `SERVER_SEND_BASE + k`
/// sends the k-th scheduled payload.
pub const SERVER_SEND_BASE: u64 = 1_000;

/// The client endpoint node.
pub struct ClientNode {
    /// The wrapped RITM client (readable after the run).
    pub client: RitmClient,
    tuple: FourTuple,
    sent_bytes: u64,
    recv_bytes: u64,
    /// Every event the client emitted, with its time (seconds).
    pub events: Vec<(u64, RitmEvent)>,
    /// First TLS error, if any.
    pub error: Option<TlsError>,
    /// Period of the staleness tick (0 disables re-arming).
    pub tick_period: SimDuration,
    /// Ticks left before the node stops re-arming (bounds the simulation).
    pub remaining_ticks: u32,
}

impl ClientNode {
    /// Wraps `client` for connection `tuple`.
    pub fn new(client: RitmClient, tuple: FourTuple) -> Self {
        ClientNode {
            client,
            tuple,
            sent_bytes: 0,
            recv_bytes: 0,
            events: Vec::new(),
            error: None,
            tick_period: SimDuration::from_secs(1),
            remaining_ticks: 600,
        }
    }

    /// Builds the opening segment (ClientHello). Inject it via
    /// [`ritm_net::Simulator::inject`] to start the connection.
    pub fn start_segment(&mut self) -> TcpSegment {
        let rec = self.client.start();
        self.segment_for(rec)
    }

    fn segment_for(&mut self, rec: TlsRecord) -> TcpSegment {
        let bytes = rec.to_bytes();
        let seg = TcpSegment::data(
            self.tuple,
            Direction::ToServer,
            self.sent_bytes,
            self.recv_bytes,
            bytes,
        );
        self.sent_bytes = seg.seq_end();
        seg
    }

    fn emit(&mut self, records: Vec<TlsRecord>, ctx: &mut Context) {
        for rec in records {
            let seg = self.segment_for(rec);
            ctx.send(seg);
        }
    }
}

impl NetNode for ClientNode {
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
        if self.error.is_some() {
            return;
        }
        self.recv_bytes = self.recv_bytes.max(segment.seq_end());
        let now = ctx.now.as_secs();
        let Ok(records) = TlsRecord::parse_stream(&segment.payload) else {
            return;
        };
        for rec in records {
            match self.client.process_record(&rec, now) {
                Ok((outs, evs)) => {
                    self.events.extend(evs.into_iter().map(|e| (now, e)));
                    self.emit(outs, ctx);
                }
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
    }

    fn on_timer(&mut self, timer_id: u64, ctx: &mut Context) {
        if timer_id != CLIENT_TICK_TIMER || self.error.is_some() {
            return;
        }
        let now = ctx.now.as_secs();
        if let Some((alert, ev)) = self.client.tick(now) {
            self.events.push((now, ev));
            let seg = self.segment_for(alert);
            ctx.send(seg);
            return; // connection over; stop ticking
        }
        if self.tick_period > SimDuration::ZERO && self.remaining_ticks > 0 {
            self.remaining_ticks -= 1;
            ctx.set_timer(self.tick_period, CLIENT_TICK_TIMER);
        }
    }
}

/// The server endpoint node.
pub struct ServerNode {
    /// The wrapped TLS server connection.
    pub conn: ServerConnection,
    tuple: FourTuple,
    sent_bytes: u64,
    recv_bytes: u64,
    /// Application payloads scheduled via timers (`SERVER_SEND_BASE + k`).
    pub scheduled: Vec<Vec<u8>>,
    /// Application data received from the client.
    pub received: Vec<Vec<u8>>,
    /// First TLS error, if any (a client abort shows up here).
    pub error: Option<TlsError>,
}

impl ServerNode {
    /// Wraps `conn` for connection `tuple`.
    pub fn new(conn: ServerConnection, tuple: FourTuple) -> Self {
        ServerNode {
            conn,
            tuple,
            sent_bytes: 0,
            recv_bytes: 0,
            scheduled: Vec::new(),
            received: Vec::new(),
            error: None,
        }
    }

    /// Registers payload `k` for later transmission by timer
    /// `SERVER_SEND_BASE + k` (arm via `Simulator::arm_timer`). Returns `k`.
    pub fn schedule_payload(&mut self, data: Vec<u8>) -> u64 {
        self.scheduled.push(data);
        self.scheduled.len() as u64 - 1
    }

    fn segment_for(&mut self, rec: TlsRecord) -> TcpSegment {
        let bytes = rec.to_bytes();
        let seg = TcpSegment::data(
            self.tuple,
            Direction::ToClient,
            self.sent_bytes,
            self.recv_bytes,
            bytes,
        );
        self.sent_bytes = seg.seq_end();
        seg
    }
}

impl NetNode for ServerNode {
    fn on_segment(&mut self, segment: TcpSegment, ctx: &mut Context) {
        if self.error.is_some() {
            return;
        }
        self.recv_bytes = self.recv_bytes.max(segment.seq_end());
        let now = ctx.now.as_secs();
        let Ok(records) = TlsRecord::parse_stream(&segment.payload) else {
            return;
        };
        for rec in records {
            match self.conn.process_record(&rec, now) {
                Ok((outs, evs)) => {
                    for ev in evs {
                        if let ritm_tls::connection::ServerEvent::ReceivedData(d) = ev {
                            self.received.push(d);
                        }
                    }
                    for out in outs {
                        let seg = self.segment_for(out);
                        ctx.send(seg);
                    }
                }
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
    }

    fn on_timer(&mut self, timer_id: u64, ctx: &mut Context) {
        if self.error.is_some() || timer_id < SERVER_SEND_BASE {
            return;
        }
        let k = (timer_id - SERVER_SEND_BASE) as usize;
        let Some(data) = self.scheduled.get(k).cloned() else {
            return;
        };
        if let Ok(rec) = self.conn.send_data(&data) {
            let seg = self.segment_for(rec);
            ctx.send(seg);
        }
    }
}
