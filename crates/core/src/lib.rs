//! # ritm-core — end-to-end RITM orchestration
//!
//! Ties every subsystem together: a [`world::RitmWorld`] wires a CA
//! (`ritm-ca`), the CDN (`ritm-cdn`), a shared Revocation Agent
//! (`ritm-agent`), and TLS endpoints (`ritm-tls` / `ritm-client`) onto the
//! packet-level simulator (`ritm-net`), implementing the full Fig. 1 / Fig. 3
//! protocol flow under both §IV deployment models.

pub mod deployment;
pub mod nodes;
pub mod world;

pub use deployment::DeploymentModel;
pub use nodes::{ClientNode, ServerNode};
pub use world::{
    ConnectionOptions, ConnectionOutcome, FleetOptions, FleetRunReport, FleetWorld, RitmWorld,
    EPOCH,
};
