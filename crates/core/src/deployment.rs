//! RITM deployment models (paper §IV).

use ritm_net::time::SimDuration;

/// Where the RA sits relative to the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentModel {
    /// §IV "Close to the servers": the RA is an augmented TLS terminator at
    /// the data-center ingress. Downgrade protection comes from the
    /// ServerHello confirmation extension, which TLS integrity-protects.
    CloseToServers,
    /// §IV "Close to the clients": the RA sits at (or is) the access-network
    /// gateway. Downgrade protection comes from the network provisioning
    /// clients with authentic "this network runs RITM" information
    /// (e.g. authenticated DHCP), modelled by the client's `AlwaysRequire`
    /// policy.
    CloseToClients,
}

impl DeploymentModel {
    /// Per-hop latencies `[client→RA, RA→server]` for a WAN path where one
    /// side is near the RA.
    pub fn hop_latencies(&self, wan_latency: SimDuration) -> [SimDuration; 2] {
        let lan = SimDuration::from_millis(1);
        match self {
            DeploymentModel::CloseToServers => [wan_latency, lan],
            DeploymentModel::CloseToClients => [lan, wan_latency],
        }
    }

    /// Whether the server's TLS terminator adds the RITM confirmation
    /// extension.
    pub fn server_confirms(&self) -> bool {
        matches!(self, DeploymentModel::CloseToServers)
    }

    /// The downgrade policy the client should run under this model.
    pub fn client_policy(&self) -> ritm_client::DowngradePolicy {
        match self {
            DeploymentModel::CloseToServers => {
                ritm_client::DowngradePolicy::RequireIfServerConfirms
            }
            DeploymentModel::CloseToClients => ritm_client::DowngradePolicy::AlwaysRequire,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_split_matches_model() {
        let wan = SimDuration::from_millis(40);
        let [c, s] = DeploymentModel::CloseToServers.hop_latencies(wan);
        assert_eq!(c, wan);
        assert!(s < c);
        let [c, s] = DeploymentModel::CloseToClients.hop_latencies(wan);
        assert_eq!(s, wan);
        assert!(c < s);
    }

    #[test]
    fn policies_match_section_iv() {
        assert_eq!(
            DeploymentModel::CloseToServers.client_policy(),
            ritm_client::DowngradePolicy::RequireIfServerConfirms
        );
        assert_eq!(
            DeploymentModel::CloseToClients.client_policy(),
            ritm_client::DowngradePolicy::AlwaysRequire
        );
        assert!(DeploymentModel::CloseToServers.server_confirms());
        assert!(!DeploymentModel::CloseToClients.server_confirms());
    }
}
