//! A full RITM world: CA + CDN + RA + server + client over the
//! packet-level simulator — the harness behind the examples, the
//! integration tests, and the end-to-end experiments.

use crate::deployment::DeploymentModel;
use crate::nodes::{ClientNode, ServerNode, CLIENT_TICK_TIMER, SERVER_SEND_BASE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ritm_agent::{RaConfig, RaHealthReport, RevocationAgent};
use ritm_ca::CertificationAuthority;
use ritm_cdn::network::Cdn;
use ritm_cdn::regions::ALL_REGIONS;
use ritm_cdn::service::EdgeService;
use ritm_cdn::{FleetRouter, RouterStats};
use ritm_client::{
    validate_payload_tracked, AbortReason, RitmClient, RitmClientConfig, RitmEvent,
    ValidationError, Verdict,
};
use ritm_crypto::ed25519::{SigningKey, VerifyingKey};
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use ritm_fleet::{lanes_for, FleetHealthReport, FleetNode, FleetService, HashRing, ShardKey};
use ritm_net::middlebox::MiddleboxNode;
use ritm_net::sim::{Path, Simulator};
use ritm_net::tcp::{Addr, FourTuple, SocketAddr};
use ritm_net::time::{SimDuration, SimTime};
use ritm_proto::{Loopback, RitmRequest, RitmResponse, Service};
use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm_tls::connection::{ServerConnection, ServerContext};
use ritm_workloads::isc::IscDataset;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Options for one simulated connection.
#[derive(Debug, Clone)]
pub struct ConnectionOptions {
    /// Whether an RA sits on the path (false = downgrade scenario).
    pub with_ra: bool,
    /// How long (seconds) to observe the connection after start.
    pub duration_secs: u64,
    /// Server application sends at these offsets (seconds from start).
    pub server_sends_at: Vec<u64>,
    /// Revoke the server's certificate at this offset, if set.
    pub revoke_at: Option<u64>,
    /// One-way WAN latency.
    pub wan_latency: SimDuration,
}

impl Default for ConnectionOptions {
    fn default() -> Self {
        ConnectionOptions {
            with_ra: true,
            duration_secs: 5,
            server_sends_at: Vec::new(),
            revoke_at: None,
            wan_latency: SimDuration::from_millis(30),
        }
    }
}

/// What happened during a simulated connection.
#[derive(Debug)]
pub struct ConnectionOutcome {
    /// Whether the connection was established and survived to the end.
    pub alive_at_end: bool,
    /// Time (seconds from start) the handshake completed, if it did.
    pub established_at: Option<u64>,
    /// Why and when (seconds from start) the client aborted, if it did.
    pub aborted: Option<(u64, AbortReason)>,
    /// All client events with absolute times.
    pub events: Vec<(u64, RitmEvent)>,
    /// Statuses the RA injected during this run.
    pub statuses_injected: u64,
}

/// The assembled RITM world.
pub struct RitmWorld {
    /// Dissemination period.
    pub delta: u64,
    /// Deployment model in force.
    pub deployment: DeploymentModel,
    /// The CDN.
    pub cdn: Cdn,
    /// The certification authority.
    pub ca: CertificationAuthority,
    /// The shared RA (also placed on simulated paths).
    pub ra: Rc<RefCell<RevocationAgent>>,
    /// The server's certificate chain.
    pub server_chain: CertificateChain,
    /// Current world time (Unix seconds).
    pub now: u64,
    /// The client population's shared newest-accepted-epoch record,
    /// threaded through every connection for cross-connection replay
    /// protection.
    pub root_tracker: ritm_client::RootTracker,
    rng: StdRng,
    server_ctx: Arc<ServerContext>,
    connection_counter: u16,
}

/// Simulation epoch (an arbitrary 2014 date, matching the datasets).
pub const EPOCH: u64 = 1_397_000_000;

impl RitmWorld {
    /// Builds a world: CA registered with the CDN, one server certificate
    /// issued, RA bootstrapped and synced.
    pub fn new(seed: u64, delta: u64, deployment: DeploymentModel) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cdn = Cdn::new(SimDuration::from_secs(delta.clamp(1, 60)));
        let mut ca = CertificationAuthority::new(
            "WorldCA",
            SigningKey::from_seed([11u8; 32]),
            delta,
            1 << 16,
            &mut cdn,
            &mut rng,
            EPOCH,
        );
        let server_key = SigningKey::from_seed([12u8; 32]);
        let leaf = ca.issue_certificate(
            "example.com",
            server_key.verifying_key(),
            EPOCH - 1_000,
            EPOCH + 365 * 86_400,
        );
        let server_chain = CertificateChain(vec![leaf]);

        let mut ra = RevocationAgent::new(RaConfig {
            delta,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .expect("genesis bootstrap");
        let ra = Rc::new(RefCell::new(ra));

        let server_ctx = if deployment.server_confirms() {
            ServerContext::new_ritm_terminator(server_chain.clone(), [7u8; 20])
        } else {
            ServerContext::new(server_chain.clone(), [7u8; 20])
        };

        let mut world = RitmWorld {
            delta,
            deployment,
            cdn,
            ca,
            ra,
            server_chain,
            now: EPOCH,
            root_tracker: ritm_client::RootTracker::new(),
            rng,
            server_ctx,
            connection_counter: 0,
        };
        world.refresh_and_sync();
        world
    }

    /// The server certificate's serial.
    pub fn server_serial(&self) -> SerialNumber {
        self.server_chain.0[0].serial
    }

    /// The CA dictionary's current content epoch (every revocation batch
    /// advances it; the RA's proof cache keys on the mirrored copy's).
    pub fn dictionary_epoch(&self) -> u64 {
        self.ca.dictionary().epoch()
    }

    /// Operational snapshot of the shared RA, including proof-cache
    /// hit/miss counters.
    pub fn ra_health(&self) -> RaHealthReport {
        self.ra.borrow().health_report()
    }

    /// CA publishes its current refresh and the RA pulls (one Δ cycle).
    pub fn refresh_and_sync(&mut self) {
        self.ca
            .refresh(&mut self.cdn, &mut self.rng, self.now)
            .expect("origin accepts refresh");
        self.sync_ra();
    }

    /// One RA sync pass over the wire protocol: the world's CDN is exposed
    /// as a borrowed [`EdgeService`] behind an in-process loopback
    /// transport, so the RA moves exactly the envelope bytes a remote
    /// deployment would.
    fn sync_ra(&mut self) {
        use rand::RngCore;
        let mut ra = self.ra.borrow_mut();
        let service = EdgeService::new(&mut self.cdn, ra.config.region, self.rng.next_u64());
        service.set_now(SimTime::from_secs(self.now));
        let mut transport = Loopback::new(service);
        ra.sync_via(&mut transport, SimTime::from_secs(self.now));
    }

    /// Exposes the world's RA read path as a real event-driven OS-socket
    /// endpoint: one `EventServer` on ≤2 threads, multiplexing any number
    /// of external client connections over the same lock-free
    /// `StatusServer` the simulated middlebox uses. This is how a
    /// simulated world is wired to real (possibly pipelining) clients —
    /// statuses served here verify against exactly the roots the in-path
    /// deployment injects.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn serve_statuses_event(&self) -> std::io::Result<ritm_proto::EventServer> {
        let service = ritm_agent::StatusService::new(self.ra.borrow().status_server());
        ritm_proto::EventServer::spawn(Arc::new(service), 2)
    }

    /// Like [`RitmWorld::serve_statuses_event`], but onto an existing
    /// shared runtime: several worlds' endpoints (or an RA alongside a CA
    /// and an edge) multiplex onto ONE reactor/executor pair, keeping a
    /// whole multi-endpoint process within the 2-thread budget. The
    /// caller owns the runtime; shutting the returned server down drains
    /// only its own tasks.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn serve_statuses_event_on(
        &self,
        handle: &ritm_rt::Handle,
    ) -> std::io::Result<ritm_proto::EventServer> {
        let service = ritm_agent::StatusService::new(self.ra.borrow().status_server());
        ritm_proto::EventServer::spawn_on(
            Arc::new(service),
            handle,
            ritm_proto::EventServerConfig::default(),
        )
    }

    /// Advances world time by `secs`, running the Δ dissemination cycle at
    /// each boundary.
    pub fn advance(&mut self, secs: u64) {
        let target = self.now + secs;
        while self.now + self.delta <= target {
            self.now += self.delta;
            self.refresh_and_sync();
        }
        self.now = target;
    }

    /// Revokes a certificate and immediately syncs the RA (the state after
    /// a completed dissemination cycle).
    pub fn revoke(&mut self, serial: SerialNumber) {
        self.publish_revocation(serial);
        self.sync_ra();
    }

    /// Revokes a certificate at the CA/CDN only; RAs learn of it at their
    /// next periodic pull — the realistic mid-period case that makes the
    /// attack window 2Δ rather than Δ.
    pub fn publish_revocation(&mut self, serial: SerialNumber) {
        self.ca
            .revoke(&[serial], &mut self.cdn, &mut self.rng, self.now)
            .expect("serial was issued");
    }

    /// Issues another server certificate (for multi-server scenarios).
    pub fn issue_certificate(&mut self, subject: &str) -> Certificate {
        let key = SigningKey::from_seed([13u8; 32]);
        self.ca.issue_certificate(
            subject,
            key.verifying_key(),
            self.now - 100,
            self.now + 365 * 86_400,
        )
    }

    fn client_config(&self) -> RitmClientConfig {
        let mut anchors = TrustAnchors::new();
        anchors.add(self.ca.id(), self.ca.verifying_key());
        let mut ca_keys: HashMap<CaId, ritm_crypto::ed25519::VerifyingKey> = HashMap::new();
        ca_keys.insert(self.ca.id(), self.ca.verifying_key());
        RitmClientConfig {
            server_name: "example.com".into(),
            anchors,
            ca_keys,
            delta: self.delta,
            policy: self.deployment.client_policy(),
        }
    }

    /// Runs one client connection through the simulated network.
    pub fn run_connection(&mut self, opts: &ConnectionOptions) -> ConnectionOutcome {
        self.connection_counter += 1;
        let client_port = 9_000 + self.connection_counter;
        let tuple = FourTuple {
            client: SocketAddr::new(0x0a00_0001, client_port),
            server: SocketAddr::new(0x0a00_0002, 443),
        };

        let start = self.now;
        // Carry the world's root tracker into the client so epoch-replay
        // protection spans connections, and harvest it back afterwards.
        let client = RitmClient::with_root_tracker(
            self.client_config(),
            [self.connection_counter as u8; 32],
            None,
            self.root_tracker.clone(),
        );
        let client_node = Rc::new(RefCell::new(ClientNode::new(client, tuple)));
        let server_conn = ServerConnection::new(self.server_ctx.clone(), [42u8; 32]);
        let server_node = Rc::new(RefCell::new(ServerNode::new(server_conn, tuple)));

        let mut sim = Simulator::new();
        sim.set_now(SimTime::from_secs(start));
        let c_id = sim.add_node(Box::new(client_node.clone()));
        let s_id = sim.add_node(Box::new(server_node.clone()));
        let [h1, h2] = self.deployment.hop_latencies(opts.wan_latency);
        if opts.with_ra {
            let ra_id = sim.add_node(Box::new(MiddleboxNode::new(self.ra.clone())));
            sim.add_path(
                Addr(0x0a00_0001),
                Addr(0x0a00_0002),
                Path::new(vec![c_id, ra_id, s_id], vec![h1, h2]),
            );
        } else {
            sim.add_path(
                Addr(0x0a00_0001),
                Addr(0x0a00_0002),
                Path::new(vec![c_id, s_id], vec![h1 + h2]),
            );
        }

        // Schedule server sends and the client's policy tick.
        for (k, offset) in opts.server_sends_at.iter().enumerate() {
            server_node
                .borrow_mut()
                .schedule_payload(format!("payload-{k}").into_bytes());
            sim.arm_timer(
                s_id,
                SimDuration::from_secs(*offset),
                SERVER_SEND_BASE + k as u64,
            );
        }
        sim.arm_timer(c_id, SimDuration::from_secs(1), CLIENT_TICK_TIMER);
        client_node.borrow_mut().remaining_ticks = opts.duration_secs as u32 + 2;

        let statuses_before =
            self.ra.borrow().stats.statuses_sent + self.ra.borrow().stats.statuses_replaced;

        // Kick off the handshake.
        let first = client_node.borrow_mut().start_segment();
        sim.inject(c_id, first);

        // Interleave packet processing (1-second steps) with the Δ-periodic
        // dissemination cycle. A revocation is published at the CA as soon
        // as it is due, but RAs only learn of it at their next pull —
        // preserving the genuine up-to-2Δ exposure.
        let end = start + opts.duration_secs;
        let mut t = start;
        let mut next_sync = start + self.delta;
        while t < end {
            t += 1;
            sim.run_until(SimTime::from_secs(t));
            self.now = t;
            if let Some(rev_at) = opts.revoke_at {
                if start + rev_at <= t && !self.ca.is_revoked(&self.server_serial()) {
                    self.publish_revocation(self.server_serial());
                }
            }
            if t >= next_sync {
                self.refresh_and_sync();
                next_sync += self.delta;
            }
        }
        sim.run_until(SimTime::from_secs(end));
        self.now = end;

        let statuses_after =
            self.ra.borrow().stats.statuses_sent + self.ra.borrow().stats.statuses_replaced;

        let node = client_node.borrow();
        self.root_tracker = node.client.root_tracker().clone();
        let events: Vec<(u64, RitmEvent)> = node.events.clone();
        let established_at = events
            .iter()
            .find(|(_, e)| matches!(e, RitmEvent::Established { .. }))
            .map(|(t, _)| t - start);
        let aborted = events.iter().find_map(|(t, e)| match e {
            RitmEvent::Aborted(r) => Some((t - start, r.clone())),
            _ => None,
        });
        ConnectionOutcome {
            alive_at_end: node.client.is_established(),
            established_at,
            aborted,
            events,
            statuses_injected: statuses_after - statuses_before,
        }
    }
}

// ===================== The fleet scenario (§VIII) =====================

/// Options for the closed-loop fleet scenario: a sharded RA fleet serving
/// a Zipf population of status-fetching clients for one simulated day.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Deterministic seed for CA keys, workloads, and latency draws.
    pub seed: u64,
    /// Fleet size (number of RA shards).
    pub shards: usize,
    /// Number of CA dictionaries (a prefix of the ISC CRL distribution).
    pub cas: usize,
    /// Total revocations across all CAs (the ISC sizes are rescaled so
    /// they sum to this).
    pub revocations: u64,
    /// Simulated clients; each performs one status fetch for the day.
    pub clients: u64,
    /// Distinct `(CA, serial)` pairs the population asks about.
    pub hot_serials: usize,
    /// Zipf skew of serial popularity across the hot set.
    pub zipf_s: f64,
    /// Replica budget per placement point (the owner plus
    /// `replicas - 1` successors).
    pub replicas: usize,
    /// Revocations per serving lane: CAs above this split their request
    /// load across multiple owners (storage stays whole per owner).
    pub lane_threshold: u64,
    /// Kill the busiest shard halfway through the run (router spillover
    /// must absorb its load).
    pub kill_shard_midway: bool,
    /// Pin one shard a full issuance batch behind on the largest CA — the
    /// stale-RA injection both gossip and clients must catch.
    pub stale_shard: bool,
    /// Run full signature validation on every Nth request. Root freshness
    /// is tracked on *every* request regardless, so a stale root is never
    /// accepted even between full validations.
    pub validate_every: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            seed: 1,
            shards: 4,
            cas: 12,
            revocations: 60_000,
            clients: 1_000_000,
            hot_serials: 4096,
            zipf_s: 1.05,
            replicas: 2,
            lane_threshold: 8_000,
            kill_shard_midway: true,
            stale_shard: true,
            validate_every: 1024,
        }
    }
}

/// What one closed-loop fleet run produced (the Fig. 7-style aggregates).
#[derive(Debug)]
pub struct FleetRunReport {
    /// Clients simulated.
    pub clients: u64,
    /// Status requests actually served (retries included).
    pub requests: u64,
    /// Total wire bytes moved (request + response frames).
    pub bytes_total: u64,
    /// Wire bytes per user for the simulated day.
    pub bytes_per_user_day: f64,
    /// Fleet-wide proof-cache hit fraction.
    pub proof_cache_hit_rate: f64,
    /// Per-shard proof-cache hit fraction, in fleet-name order.
    pub per_shard_hit_rate: Vec<(String, f64)>,
    /// Mean status latency (milliseconds, sampled per request).
    pub mean_status_latency_ms: f64,
    /// 99th-percentile status latency (milliseconds).
    pub p99_status_latency_ms: f64,
    /// Router counters (spillover, cross-region, unroutable).
    pub router: RouterStats,
    /// Serves a client refused because the root was stale (or the shard
    /// could not prove the chain); each one shuns the shard and retries.
    pub stale_rejections: u64,
    /// Requests that ran the full signature-validation path.
    pub full_validations: u64,
    /// Full validations whose verdict was `Revoked`.
    pub revoked_seen: u64,
    /// The shard killed mid-run, if any.
    pub killed_shard: Option<String>,
    /// The shard pinned at a stale root, if any.
    pub stale_shard: Option<String>,
    /// The aggregated fleet health report after the closing gossip round.
    pub health: FleetHealthReport,
}

/// Placement facts for one CA in the fleet.
#[derive(Debug, Clone, Copy)]
struct FleetCa {
    id: CaId,
    lanes: u16,
    revocations: u64,
}

/// Serial scheme: CA `k`'s revoked serials are the even offsets
/// `(k+1) << 40 | (i << 1)`; odd offsets are never issued, so they
/// exercise the absence-proof path.
fn fleet_serial(ca_index: usize, i: u64, revoked: bool) -> SerialNumber {
    let v = ((ca_index as u64 + 1) << 40) | (i << 1) | u64::from(!revoked);
    SerialNumber::from_u64(v)
}

fn fleet_ca_seed(seed: u64, ca_index: usize) -> [u8; 32] {
    let mut s = [0u8; 32];
    s[..8].copy_from_slice(&seed.to_be_bytes());
    s[8..16].copy_from_slice(&(ca_index as u64).to_be_bytes());
    s[16] = 0xFC;
    s
}

/// A sharded RA fleet under closed-loop client load: the §VIII deployment
/// at population scale. CAs are sized like the ISC CRL distribution,
/// mirrors are placed by the consistent-hash ring (giant CAs spread their
/// serving load across lanes), requests route region-first with replica
/// spillover, and signed-root gossip cross-checks every shard's view.
pub struct FleetWorld {
    /// Fleet members (`ra-0`, `ra-1`, …), each a full revocation agent.
    pub nodes: Vec<FleetNode>,
    /// The CDN-side router over the fleet's hash ring.
    pub router: FleetRouter<HashRing>,
    /// Per-CA verification keys (what clients pin).
    pub ca_keys: HashMap<CaId, VerifyingKey>,
    /// Dissemination period Δ.
    pub delta: u64,
    /// World time (Unix seconds) the statuses are validated against.
    pub now: u64,
    cas: Vec<FleetCa>,
    rng: StdRng,
    stale_node: Option<String>,
    /// The fresh mirror the stale shard is resynced from mid-run.
    heal: Option<(CaId, VerifyingKey, MirrorDictionary)>,
}

impl FleetWorld {
    /// Builds the fleet: ISC-shaped CA dictionaries, one mirror built per
    /// CA and *cloned* into every ring owner (O(n) per CA, not per
    /// replica), regions assigned round-robin, and a first gossip round so
    /// every ledger starts from the fleet-wide view.
    pub fn new(opts: &FleetOptions) -> Self {
        assert!(opts.shards >= 2, "a fleet needs at least two shards");
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let delta = 10;

        // ISC-shaped CA sizes, rescaled to the requested total.
        let isc = IscDataset::synthesize();
        let taken: u64 = isc.sizes.iter().take(opts.cas).sum();
        let sizes: Vec<u64> = isc
            .sizes
            .iter()
            .take(opts.cas)
            .map(|s| (s * opts.revocations / taken).max(1))
            .collect();

        let names: Vec<String> = (0..opts.shards).map(|i| format!("ra-{i}")).collect();
        let mut nodes: Vec<FleetNode> = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let region = ALL_REGIONS[i % ALL_REGIONS.len()];
                FleetNode::new(
                    name,
                    region,
                    RevocationAgent::new(RaConfig {
                        delta,
                        region,
                        ..Default::default()
                    }),
                )
            })
            .collect();
        let ring = HashRing::with_nodes(&names);
        let mut router = FleetRouter::new(ring, opts.replicas);
        for node in &nodes {
            router.set_home(Arc::from(node.name()), node.region());
        }
        // The stale pin goes on whichever shard owns the largest CA's
        // first lane — guaranteed to be on the serving path for hot
        // traffic, so the lag is client-visible in any fleet geometry.
        let stale_node = opts.stale_shard.then(|| {
            let point = ShardKey {
                ca: CaId::from_name("FleetCA-0"),
                lane: 0,
            }
            .point();
            router
                .topology()
                .owner(point)
                .expect("non-empty ring")
                .to_string()
        });

        let mut cas = Vec::with_capacity(sizes.len());
        let mut ca_keys = HashMap::new();
        let mut heal = None;
        for (k, &size) in sizes.iter().enumerate() {
            let key = SigningKey::from_seed(fleet_ca_seed(opts.seed, k));
            let id = CaId::from_name(&format!("FleetCA-{k}"));
            let mut ca = CaDictionary::new(id, key.clone(), delta, 1 << 12, &mut rng, EPOCH);
            let genesis = *ca.signed_root();
            let mut mirror =
                MirrorDictionary::new(id, key.verifying_key(), genesis).expect("genesis mirror");
            mirror.set_delta(delta);

            // Two issuance batches; the clone taken in between is what a
            // stale shard gets pinned at.
            let head = (size * 9 / 10).max(1);
            let batch1: Vec<SerialNumber> = (0..head).map(|i| fleet_serial(k, i, true)).collect();
            let iss1 = ca
                .insert(&batch1, &mut rng, EPOCH + 1)
                .expect("fresh serials");
            mirror
                .apply_issuance(&iss1, EPOCH + 1)
                .expect("mirror accepts");
            let stale_mirror = mirror.clone();
            if size > head {
                let batch2: Vec<SerialNumber> =
                    (head..size).map(|i| fleet_serial(k, i, true)).collect();
                let iss2 = ca
                    .insert(&batch2, &mut rng, EPOCH + 2)
                    .expect("fresh serials");
                mirror
                    .apply_issuance(&iss2, EPOCH + 2)
                    .expect("mirror accepts");
            }

            // Owners: the union of every lane's candidate set. Lanes shard
            // the serving load of giant CAs; each owner mirrors the whole
            // dictionary (proofs need the full tree).
            let lanes = lanes_for(size, opts.lane_threshold);
            let mut owners: Vec<std::sync::Arc<str>> = Vec::new();
            for lane in 0..lanes {
                let point = ShardKey { ca: id, lane }.point();
                for cand in router.topology().candidates(point, opts.replicas) {
                    if !owners.contains(&cand) {
                        owners.push(cand);
                    }
                }
            }
            for owner in owners {
                let node = nodes
                    .iter_mut()
                    .find(|n| n.name() == &*owner)
                    .expect("ring nodes are fleet nodes");
                // The stale shard is pinned one batch behind on the
                // largest CA only — everything else it serves is fresh,
                // which is exactly what makes the lag hard to spot without
                // gossip.
                let pin_here = k == 0 && stale_node.as_deref() == Some(&*owner);
                node.adopt(
                    id,
                    key.verifying_key(),
                    if pin_here {
                        stale_mirror.clone()
                    } else {
                        mirror.clone()
                    },
                );
            }
            ca_keys.insert(id, key.verifying_key());
            if k == 0 && stale_node.is_some() {
                heal = Some((id, key.verifying_key(), mirror.clone()));
            }
            cas.push(FleetCa {
                id,
                lanes,
                revocations: size,
            });
        }
        for node in &nodes {
            node.publish_local();
        }

        let world = FleetWorld {
            nodes,
            router,
            ca_keys,
            delta,
            now: EPOCH + 3,
            cas,
            rng,
            stale_node,
            heal,
        };
        world.gossip_round();
        world
    }

    /// One full-mesh gossip round over in-process loopback transports:
    /// every node pushes its served roots to every peer and folds the acks
    /// into its ledger.
    pub fn gossip_round(&self) {
        let services: Vec<(String, Arc<FleetService>)> = self
            .nodes
            .iter()
            .map(|n| (n.name().to_string(), n.service()))
            .collect();
        for node in &self.nodes {
            for (peer, svc) in &services {
                if peer == node.name() {
                    continue;
                }
                let mut transport = Loopback::new(Arc::clone(svc));
                let _ = node.gossip_with(peer, &mut transport);
            }
        }
    }

    /// The aggregated fleet health report (per-shard caches, sync totals,
    /// gossip verdict).
    pub fn health(&self) -> FleetHealthReport {
        FleetHealthReport::aggregate(self.nodes.iter())
    }

    /// Runs the closed loop: `opts.clients` Zipf-distributed clients each
    /// fetch one certificate status through the region-aware router; roots
    /// are freshness-tracked on every serve (a stale root is never
    /// accepted — the client shuns the shard and the router spills over),
    /// full signature validation is sampled, one shard dies mid-run, and
    /// the run closes with a gossip round and the fleet health aggregate.
    pub fn run(&mut self, opts: &FleetOptions) -> FleetRunReport {
        // Popularity model: hot (CA, serial) pairs — CA drawn by
        // dictionary size, serial half revoked / half absent — under a
        // Zipf rank distribution (rank 0 most popular).
        let ca_total: u64 = self.cas.iter().map(|c| c.revocations).sum();
        let ca_cdf: Vec<u64> = self
            .cas
            .iter()
            .scan(0u64, |acc, c| {
                *acc += c.revocations;
                Some(*acc)
            })
            .collect();
        let hot: Vec<(CaId, SerialNumber, u64)> = (0..opts.hot_serials)
            .map(|_| {
                let t = self.rng.gen_range(0..ca_total);
                let k = ca_cdf.partition_point(|&c| c <= t);
                let c = self.cas[k];
                let idx = self.rng.gen_range(0..c.revocations);
                let revoked = self.rng.gen::<f64>() < 0.5;
                let serial = fleet_serial(k, idx, revoked);
                let point = ShardKey::for_serial(c.id, &serial, c.lanes).point();
                (c.id, serial, point)
            })
            .collect();
        let zipf_cdf: Vec<f64> = (0..opts.hot_serials)
            .scan(0.0f64, |acc, r| {
                *acc += 1.0 / ((r + 1) as f64).powf(opts.zipf_s);
                Some(*acc)
            })
            .collect();
        let zipf_total = *zipf_cdf.last().expect("non-empty hot set");
        let region_cdf: Vec<f64> = ALL_REGIONS
            .iter()
            .scan(0.0f64, |acc, r| {
                *acc += r.population_share();
                Some(*acc)
            })
            .collect();

        let services: Vec<Arc<FleetService>> = self.nodes.iter().map(|n| n.service()).collect();
        let node_index: HashMap<String, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name().to_string(), i))
            .collect();

        let mut latencies_us: Vec<u32> = Vec::with_capacity(opts.clients as usize);
        let mut bytes_total = 0u64;
        let mut tracker = ritm_client::RootTracker::new();
        let mut stale_rejections = 0u64;
        let mut full_validations = 0u64;
        let mut revoked_seen = 0u64;
        let mut killed: Option<String> = None;
        let kill_at = opts.kill_shard_midway.then_some(opts.clients / 2);

        for r in 0..opts.clients {
            if Some(r) == kill_at {
                // Operators resync the stale shard (gossip flagged it and
                // clients shunned it) and bring it back before the outage:
                // at most one node is ever down, so every point keeps a
                // live replica.
                if let (Some(stale), Some((ca0, key, fresh))) = (&self.stale_node, &self.heal) {
                    let idx = node_index[stale.as_str()];
                    self.nodes[idx].adopt(*ca0, *key, fresh.clone());
                    self.nodes[idx].publish_local();
                    self.router.mark_up(&Arc::from(stale.as_str()));
                }
                // Kill the shard serving the hottest key (the worst case
                // for spillover) — skipping any node already shunned.
                let victim = self
                    .router
                    .topology()
                    .candidates(hot[0].2, opts.shards)
                    .into_iter()
                    .find(|n| !self.router.is_down(n));
                if let Some(victim) = victim {
                    killed = Some(victim.to_string());
                    self.router.mark_down(victim);
                }
            }

            let u = self.rng.gen::<f64>() * zipf_total;
            let (ca, serial, point) = hot[zipf_cdf
                .partition_point(|&c| c <= u)
                .min(opts.hot_serials - 1)];
            let ur = self.rng.gen::<f64>();
            let region = ALL_REGIONS[region_cdf
                .partition_point(|&c| c <= ur)
                .min(ALL_REGIONS.len() - 1)];

            // Serve, with one retry through the router when the shard's
            // answer is unusable (stale root, unprovable chain).
            for _attempt in 0..2 {
                let Some(route) = self.router.route(region, point) else {
                    break;
                };
                let idx = node_index[&*route.node];
                let req = RitmRequest::GetStatus { ca, serial };
                bytes_total += req.encoded_len() as u64 + 4;
                let resp = services[idx].handle(req);
                bytes_total += resp.encoded_len() as u64 + 4;
                let model = if route.cross_region {
                    region.origin_latency()
                } else {
                    region.edge_latency()
                };
                let lat = model.sample(&mut self.rng).as_micros();
                latencies_us.push(lat.min(u64::from(u32::MAX)) as u32);

                let accepted = match &resp {
                    RitmResponse::Status(payload) => {
                        if r % opts.validate_every == 0 {
                            full_validations += 1;
                            match validate_payload_tracked(
                                payload,
                                &[(ca, serial)],
                                &self.ca_keys,
                                self.delta,
                                self.now,
                                &mut tracker,
                            ) {
                                Ok(verdict) => {
                                    if matches!(verdict, Verdict::Revoked { .. }) {
                                        revoked_seen += 1;
                                    }
                                    true
                                }
                                Err(ValidationError::RootRegression { .. }) => false,
                                Err(_) => false,
                            }
                        } else {
                            // The cheap always-on check: the served root
                            // must never regress behind the newest one the
                            // population has accepted.
                            payload
                                .primary_root()
                                .is_some_and(|root| tracker.observe(root).is_ok())
                        }
                    }
                    _ => false,
                };
                if accepted {
                    break;
                }
                // The shard served something unacceptable: shun it and let
                // the router spill the retry to a replica.
                stale_rejections += 1;
                self.router.mark_down(route.node);
            }
        }

        self.gossip_round();
        let health = self.health();
        let per_shard_hit_rate: Vec<(String, f64)> = self
            .nodes
            .iter()
            .map(|n| {
                (
                    n.name().to_string(),
                    n.ra.health_report().proof_cache.hit_rate(),
                )
            })
            .collect();

        let requests = latencies_us.len() as u64;
        let mean_us = if latencies_us.is_empty() {
            0.0
        } else {
            latencies_us.iter().map(|&l| f64::from(l)).sum::<f64>() / requests as f64
        };
        latencies_us.sort_unstable();
        let p99_us = latencies_us
            .get(((requests * 99 / 100) as usize).min(latencies_us.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0);

        FleetRunReport {
            clients: opts.clients,
            requests,
            bytes_total,
            bytes_per_user_day: bytes_total as f64 / opts.clients as f64,
            proof_cache_hit_rate: health.proof_cache_hit_rate(),
            per_shard_hit_rate,
            mean_status_latency_ms: mean_us / 1_000.0,
            p99_status_latency_ms: f64::from(p99_us) / 1_000.0,
            router: self.router.stats(),
            stale_rejections,
            full_validations,
            revoked_seen,
            killed_shard: killed,
            stale_shard: self.stale_node.clone(),
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_connection_survives() {
        let mut w = RitmWorld::new(1, 10, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 25,
            server_sends_at: vec![5, 12, 22],
            ..Default::default()
        });
        assert_eq!(out.established_at, Some(0));
        assert!(out.alive_at_end, "events: {:?}", out.events);
        assert!(out.aborted.is_none());
        assert!(out.statuses_injected >= 2, "initial + periodic refresh");
    }

    #[test]
    fn pre_revoked_certificate_is_refused() {
        let mut w = RitmWorld::new(2, 10, DeploymentModel::CloseToClients);
        let serial = w.server_serial();
        w.revoke(serial);
        let out = w.run_connection(&ConnectionOptions::default());
        match out.aborted {
            Some((_, AbortReason::Revoked { serial: s })) => assert_eq!(s, serial),
            other => panic!("expected revocation abort, got {other:?}"),
        }
        assert!(!out.alive_at_end);
    }

    #[test]
    fn mid_connection_revocation_detected_within_two_delta() {
        let mut w = RitmWorld::new(3, 10, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 60,
            // Keep traffic flowing so the RA has packets to piggyback on.
            server_sends_at: vec![5, 11, 15, 21, 25, 31, 35, 41, 45, 51],
            revoke_at: Some(12),
            ..Default::default()
        });
        let (t, reason) = out.aborted.expect("must abort after revocation");
        assert!(matches!(reason, AbortReason::Revoked { .. }), "{reason:?}");
        assert!(
            (12..=12 + 2 * 10 + 1).contains(&t),
            "revoked at +12s, aborted at +{t}s (must be within 2Δ)"
        );
    }

    #[test]
    fn downgrade_without_ra_aborts_under_always_require() {
        let mut w = RitmWorld::new(4, 10, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            with_ra: false,
            duration_secs: 5,
            ..Default::default()
        });
        assert!(matches!(out.aborted, Some((_, AbortReason::MissingStatus))));
    }

    #[test]
    fn close_to_servers_model_works_end_to_end() {
        let mut w = RitmWorld::new(5, 10, DeploymentModel::CloseToServers);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 15,
            server_sends_at: vec![12],
            ..Default::default()
        });
        assert!(out.alive_at_end, "events: {:?}", out.events);
        // And without the RA, the terminator's confirmation is absent, so
        // RequireIfServerConfirms lets the plain connection through.
        let mut w2 = RitmWorld::new(6, 10, DeploymentModel::CloseToServers);
        let out2 = w2.run_connection(&ConnectionOptions {
            with_ra: false,
            duration_secs: 5,
            ..Default::default()
        });
        assert!(out2.aborted.is_some() || out2.alive_at_end);
    }

    #[test]
    fn hot_serial_reuses_cached_proofs_until_epoch_advances() {
        let mut w = RitmWorld::new(8, 10, DeploymentModel::CloseToClients);
        let epoch0 = w.dictionary_epoch();

        // Several connections to the same server: after the first proof is
        // built, the rest of the statuses reuse the cached audit path.
        for _ in 0..3 {
            let out = w.run_connection(&ConnectionOptions {
                duration_secs: 12,
                server_sends_at: vec![5, 11],
                ..Default::default()
            });
            assert!(out.alive_at_end, "events: {:?}", out.events);
        }
        let health = w.ra_health();
        assert!(
            health.proof_cache.hits > 0,
            "periodic statuses for a hot serial must hit the cache: {health:?}"
        );
        assert!(health.cache_hit_rate() > 0.5, "{health:?}");

        // The accepted dictionary epoch persists across connections: the
        // world-level tracker remembers the newest root every client saw.
        let (size0, _) = w
            .root_tracker
            .newest(&w.ca.id())
            .expect("tracker advanced by accepted statuses");
        assert_eq!(size0, 0, "no revocations yet");

        // A revocation batch advances the epoch and invalidates the cache:
        // the next status is a fresh miss.
        let misses_before = w.ra_health().proof_cache.misses;
        let victim = w.issue_certificate("other.example").serial;
        w.revoke(victim);
        assert!(w.dictionary_epoch() > epoch0);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 3,
            ..Default::default()
        });
        assert!(out.alive_at_end, "events: {:?}", out.events);
        assert!(
            w.ra_health().proof_cache.misses > misses_before,
            "epoch change must force proof regeneration"
        );
        let (size1, _) = w.root_tracker.newest(&w.ca.id()).expect("tracker kept");
        assert!(size1 > size0, "tracker must follow the advanced epoch");
    }

    #[test]
    fn event_endpoint_serves_real_sockets_from_the_simulated_world() {
        use ritm_client::validator::Verdict;

        let mut w = RitmWorld::new(9, 10, DeploymentModel::CloseToClients);
        let victim = w.server_serial();
        w.revoke(victim);
        let clean = w.issue_certificate("ok.example").serial;

        // Real OS sockets against the simulated world's RA: a pipelined
        // flight of two chains, both validating against the same roots the
        // in-path middlebox injects.
        let server = w.serve_statuses_event().unwrap();
        assert!(server.thread_count() <= 2);
        let mut transport = ritm_proto::EventTransport::connect(server.addr()).unwrap();
        let mut keys: HashMap<CaId, ritm_crypto::ed25519::VerifyingKey> = HashMap::new();
        keys.insert(w.ca.id(), w.ca.verifying_key());
        let revoked_chain = [(w.ca.id(), victim)];
        let clean_chain = [(w.ca.id(), clean)];
        let chains: [&[(CaId, SerialNumber)]; 2] = [&revoked_chain, &clean_chain];
        let mut tracker = w.root_tracker.clone();
        let results = ritm_client::fetch_and_validate_many(
            &mut transport,
            &chains,
            &keys,
            w.delta,
            w.now,
            &mut tracker,
        );
        assert!(matches!(
            results[0].as_ref().unwrap().verdict,
            Verdict::Revoked { serial, .. } if serial == victim
        ));
        assert_eq!(results[1].as_ref().unwrap().verdict, Verdict::AllValid);
        drop(transport);
        assert_eq!(server.shutdown(), 2);
    }

    #[test]
    fn two_worlds_share_one_event_runtime() {
        use ritm_client::validator::Verdict;

        // Two independent simulated worlds expose their RA read paths on
        // ONE shared 2-thread runtime — the multi-endpoint deployment
        // shape (one middlebox process, several listeners).
        let runtime = ritm_rt::Runtime::new(2);
        let handle = runtime.handle();
        let mut w1 = RitmWorld::new(11, 10, DeploymentModel::CloseToClients);
        let mut w2 = RitmWorld::new(12, 10, DeploymentModel::CloseToClients);
        let victim = w1.server_serial();
        w1.revoke(victim);
        let clean = w2.issue_certificate("fine.example").serial;

        let s1 = w1.serve_statuses_event_on(&handle).unwrap();
        let s2 = w2.serve_statuses_event_on(&handle).unwrap();
        assert_eq!(s1.thread_count(), 2);
        assert_eq!(s2.thread_count(), 2);

        for (w, server, serial, expect_revoked) in
            [(&w1, &s1, victim, true), (&w2, &s2, clean, false)]
        {
            let mut transport = ritm_proto::EventTransport::connect(server.addr()).unwrap();
            let mut keys: HashMap<CaId, ritm_crypto::ed25519::VerifyingKey> = HashMap::new();
            keys.insert(w.ca.id(), w.ca.verifying_key());
            let chain = [(w.ca.id(), serial)];
            let mut tracker = w.root_tracker.clone();
            let fetched = ritm_client::fetch_and_validate(
                &mut transport,
                &chain,
                &keys,
                w.delta,
                w.now,
                &mut tracker,
            )
            .expect("fetch over the shared runtime");
            if expect_revoked {
                assert!(
                    matches!(fetched.verdict, Verdict::Revoked { serial: s, .. } if s == serial)
                );
            } else {
                assert_eq!(fetched.verdict, Verdict::AllValid);
            }
        }
        assert_eq!(s1.shutdown(), 1);
        assert_eq!(s2.shutdown(), 1);
        runtime.shutdown();
    }

    #[test]
    fn fleet_scenario_serves_detects_staleness_and_spills_over() {
        let opts = FleetOptions {
            seed: 5,
            shards: 3,
            cas: 6,
            revocations: 3_000,
            clients: 60_000,
            hot_serials: 512,
            lane_threshold: 500,
            validate_every: 256,
            ..Default::default()
        };
        let mut world = FleetWorld::new(&opts);

        // The pinned shard is already visible to gossip after the build's
        // opening round.
        let pinned = world.stale_node.clone().expect("stale shard configured");
        let pre = world.health();
        assert!(
            pre.stale_peers.contains(&pinned),
            "gossip must flag the pinned shard {pinned}: {:?}",
            pre.stale_peers
        );

        let report = world.run(&opts);
        assert_eq!(report.clients, 60_000);
        assert!(report.requests >= report.clients);
        assert!(report.bytes_per_user_day > 0.0);
        assert!(
            report.proof_cache_hit_rate > 0.5,
            "hot Zipf traffic must hit the proof cache: {}",
            report.proof_cache_hit_rate
        );
        assert_eq!(report.per_shard_hit_rate.len(), 3);
        assert!(report.p99_status_latency_ms >= report.mean_status_latency_ms);
        assert!(report.full_validations > 0);
        assert!(report.revoked_seen > 0, "half the hot set is revoked");

        // The mid-run kill forces replica spillover, and the stale shard's
        // replayed root is rejected by the population's tracker.
        assert!(report.killed_shard.is_some());
        assert!(report.router.spilled > 0, "{:?}", report.router);
        assert_eq!(report.stale_shard.as_deref(), Some(pinned.as_str()));
        assert!(
            report.stale_rejections > 0,
            "clients must refuse the stale root"
        );
        // The heal-and-rejoin path: staleness was flagged during the run
        // (the cumulative counter keeps the evidence) but the resynced
        // shard gossips back and the closing round converges.
        assert!(report.health.gossip.stale_peers > 0);
        assert!(
            report.health.is_converged(),
            "{:?}",
            report.health.stale_peers
        );
    }

    #[test]
    fn idle_connection_starves_and_client_interrupts() {
        // No server traffic → no piggyback opportunities → the client's own
        // 2Δ staleness check fires (blocking-attack resilience).
        let mut w = RitmWorld::new(7, 5, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 30,
            server_sends_at: vec![],
            ..Default::default()
        });
        match out.aborted {
            Some((t, AbortReason::StaleStatus)) => {
                assert!(t > 2 * 5 && t <= 2 * 5 + 3, "aborted at +{t}s");
            }
            other => panic!("expected staleness abort, got {other:?}"),
        }
    }
}
