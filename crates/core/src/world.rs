//! A full RITM world: CA + CDN + RA + server + client over the
//! packet-level simulator — the harness behind the examples, the
//! integration tests, and the end-to-end experiments.

use crate::deployment::DeploymentModel;
use crate::nodes::{ClientNode, ServerNode, CLIENT_TICK_TIMER, SERVER_SEND_BASE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RaHealthReport, RevocationAgent};
use ritm_ca::CertificationAuthority;
use ritm_cdn::network::Cdn;
use ritm_cdn::service::EdgeService;
use ritm_client::{AbortReason, RitmClient, RitmClientConfig, RitmEvent};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaId, SerialNumber};
use ritm_net::middlebox::MiddleboxNode;
use ritm_net::sim::{Path, Simulator};
use ritm_net::tcp::{Addr, FourTuple, SocketAddr};
use ritm_net::time::{SimDuration, SimTime};
use ritm_proto::Loopback;
use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm_tls::connection::{ServerConnection, ServerContext};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Options for one simulated connection.
#[derive(Debug, Clone)]
pub struct ConnectionOptions {
    /// Whether an RA sits on the path (false = downgrade scenario).
    pub with_ra: bool,
    /// How long (seconds) to observe the connection after start.
    pub duration_secs: u64,
    /// Server application sends at these offsets (seconds from start).
    pub server_sends_at: Vec<u64>,
    /// Revoke the server's certificate at this offset, if set.
    pub revoke_at: Option<u64>,
    /// One-way WAN latency.
    pub wan_latency: SimDuration,
}

impl Default for ConnectionOptions {
    fn default() -> Self {
        ConnectionOptions {
            with_ra: true,
            duration_secs: 5,
            server_sends_at: Vec::new(),
            revoke_at: None,
            wan_latency: SimDuration::from_millis(30),
        }
    }
}

/// What happened during a simulated connection.
#[derive(Debug)]
pub struct ConnectionOutcome {
    /// Whether the connection was established and survived to the end.
    pub alive_at_end: bool,
    /// Time (seconds from start) the handshake completed, if it did.
    pub established_at: Option<u64>,
    /// Why and when (seconds from start) the client aborted, if it did.
    pub aborted: Option<(u64, AbortReason)>,
    /// All client events with absolute times.
    pub events: Vec<(u64, RitmEvent)>,
    /// Statuses the RA injected during this run.
    pub statuses_injected: u64,
}

/// The assembled RITM world.
pub struct RitmWorld {
    /// Dissemination period.
    pub delta: u64,
    /// Deployment model in force.
    pub deployment: DeploymentModel,
    /// The CDN.
    pub cdn: Cdn,
    /// The certification authority.
    pub ca: CertificationAuthority,
    /// The shared RA (also placed on simulated paths).
    pub ra: Rc<RefCell<RevocationAgent>>,
    /// The server's certificate chain.
    pub server_chain: CertificateChain,
    /// Current world time (Unix seconds).
    pub now: u64,
    /// The client population's shared newest-accepted-epoch record,
    /// threaded through every connection for cross-connection replay
    /// protection.
    pub root_tracker: ritm_client::RootTracker,
    rng: StdRng,
    server_ctx: Arc<ServerContext>,
    connection_counter: u16,
}

/// Simulation epoch (an arbitrary 2014 date, matching the datasets).
pub const EPOCH: u64 = 1_397_000_000;

impl RitmWorld {
    /// Builds a world: CA registered with the CDN, one server certificate
    /// issued, RA bootstrapped and synced.
    pub fn new(seed: u64, delta: u64, deployment: DeploymentModel) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cdn = Cdn::new(SimDuration::from_secs(delta.clamp(1, 60)));
        let mut ca = CertificationAuthority::new(
            "WorldCA",
            SigningKey::from_seed([11u8; 32]),
            delta,
            1 << 16,
            &mut cdn,
            &mut rng,
            EPOCH,
        );
        let server_key = SigningKey::from_seed([12u8; 32]);
        let leaf = ca.issue_certificate(
            "example.com",
            server_key.verifying_key(),
            EPOCH - 1_000,
            EPOCH + 365 * 86_400,
        );
        let server_chain = CertificateChain(vec![leaf]);

        let mut ra = RevocationAgent::new(RaConfig {
            delta,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .expect("genesis bootstrap");
        let ra = Rc::new(RefCell::new(ra));

        let server_ctx = if deployment.server_confirms() {
            ServerContext::new_ritm_terminator(server_chain.clone(), [7u8; 20])
        } else {
            ServerContext::new(server_chain.clone(), [7u8; 20])
        };

        let mut world = RitmWorld {
            delta,
            deployment,
            cdn,
            ca,
            ra,
            server_chain,
            now: EPOCH,
            root_tracker: ritm_client::RootTracker::new(),
            rng,
            server_ctx,
            connection_counter: 0,
        };
        world.refresh_and_sync();
        world
    }

    /// The server certificate's serial.
    pub fn server_serial(&self) -> SerialNumber {
        self.server_chain.0[0].serial
    }

    /// The CA dictionary's current content epoch (every revocation batch
    /// advances it; the RA's proof cache keys on the mirrored copy's).
    pub fn dictionary_epoch(&self) -> u64 {
        self.ca.dictionary().epoch()
    }

    /// Operational snapshot of the shared RA, including proof-cache
    /// hit/miss counters.
    pub fn ra_health(&self) -> RaHealthReport {
        self.ra.borrow().health_report()
    }

    /// CA publishes its current refresh and the RA pulls (one Δ cycle).
    pub fn refresh_and_sync(&mut self) {
        self.ca
            .refresh(&mut self.cdn, &mut self.rng, self.now)
            .expect("origin accepts refresh");
        self.sync_ra();
    }

    /// One RA sync pass over the wire protocol: the world's CDN is exposed
    /// as a borrowed [`EdgeService`] behind an in-process loopback
    /// transport, so the RA moves exactly the envelope bytes a remote
    /// deployment would.
    fn sync_ra(&mut self) {
        use rand::RngCore;
        let mut ra = self.ra.borrow_mut();
        let service = EdgeService::new(&mut self.cdn, ra.config.region, self.rng.next_u64());
        service.set_now(SimTime::from_secs(self.now));
        let mut transport = Loopback::new(service);
        ra.sync_via(&mut transport, SimTime::from_secs(self.now));
    }

    /// Exposes the world's RA read path as a real event-driven OS-socket
    /// endpoint: one `EventServer` on ≤2 threads, multiplexing any number
    /// of external client connections over the same lock-free
    /// `StatusServer` the simulated middlebox uses. This is how a
    /// simulated world is wired to real (possibly pipelining) clients —
    /// statuses served here verify against exactly the roots the in-path
    /// deployment injects.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn serve_statuses_event(&self) -> std::io::Result<ritm_proto::EventServer> {
        let service = ritm_agent::StatusService::new(self.ra.borrow().status_server());
        ritm_proto::EventServer::spawn(Arc::new(service), 2)
    }

    /// Like [`RitmWorld::serve_statuses_event`], but onto an existing
    /// shared runtime: several worlds' endpoints (or an RA alongside a CA
    /// and an edge) multiplex onto ONE reactor/executor pair, keeping a
    /// whole multi-endpoint process within the 2-thread budget. The
    /// caller owns the runtime; shutting the returned server down drains
    /// only its own tasks.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn serve_statuses_event_on(
        &self,
        handle: &ritm_rt::Handle,
    ) -> std::io::Result<ritm_proto::EventServer> {
        let service = ritm_agent::StatusService::new(self.ra.borrow().status_server());
        ritm_proto::EventServer::spawn_on(
            Arc::new(service),
            handle,
            ritm_proto::EventServerConfig::default(),
        )
    }

    /// Advances world time by `secs`, running the Δ dissemination cycle at
    /// each boundary.
    pub fn advance(&mut self, secs: u64) {
        let target = self.now + secs;
        while self.now + self.delta <= target {
            self.now += self.delta;
            self.refresh_and_sync();
        }
        self.now = target;
    }

    /// Revokes a certificate and immediately syncs the RA (the state after
    /// a completed dissemination cycle).
    pub fn revoke(&mut self, serial: SerialNumber) {
        self.publish_revocation(serial);
        self.sync_ra();
    }

    /// Revokes a certificate at the CA/CDN only; RAs learn of it at their
    /// next periodic pull — the realistic mid-period case that makes the
    /// attack window 2Δ rather than Δ.
    pub fn publish_revocation(&mut self, serial: SerialNumber) {
        self.ca
            .revoke(&[serial], &mut self.cdn, &mut self.rng, self.now)
            .expect("serial was issued");
    }

    /// Issues another server certificate (for multi-server scenarios).
    pub fn issue_certificate(&mut self, subject: &str) -> Certificate {
        let key = SigningKey::from_seed([13u8; 32]);
        self.ca.issue_certificate(
            subject,
            key.verifying_key(),
            self.now - 100,
            self.now + 365 * 86_400,
        )
    }

    fn client_config(&self) -> RitmClientConfig {
        let mut anchors = TrustAnchors::new();
        anchors.add(self.ca.id(), self.ca.verifying_key());
        let mut ca_keys: HashMap<CaId, ritm_crypto::ed25519::VerifyingKey> = HashMap::new();
        ca_keys.insert(self.ca.id(), self.ca.verifying_key());
        RitmClientConfig {
            server_name: "example.com".into(),
            anchors,
            ca_keys,
            delta: self.delta,
            policy: self.deployment.client_policy(),
        }
    }

    /// Runs one client connection through the simulated network.
    pub fn run_connection(&mut self, opts: &ConnectionOptions) -> ConnectionOutcome {
        self.connection_counter += 1;
        let client_port = 9_000 + self.connection_counter;
        let tuple = FourTuple {
            client: SocketAddr::new(0x0a00_0001, client_port),
            server: SocketAddr::new(0x0a00_0002, 443),
        };

        let start = self.now;
        // Carry the world's root tracker into the client so epoch-replay
        // protection spans connections, and harvest it back afterwards.
        let client = RitmClient::with_root_tracker(
            self.client_config(),
            [self.connection_counter as u8; 32],
            None,
            self.root_tracker.clone(),
        );
        let client_node = Rc::new(RefCell::new(ClientNode::new(client, tuple)));
        let server_conn = ServerConnection::new(self.server_ctx.clone(), [42u8; 32]);
        let server_node = Rc::new(RefCell::new(ServerNode::new(server_conn, tuple)));

        let mut sim = Simulator::new();
        sim.set_now(SimTime::from_secs(start));
        let c_id = sim.add_node(Box::new(client_node.clone()));
        let s_id = sim.add_node(Box::new(server_node.clone()));
        let [h1, h2] = self.deployment.hop_latencies(opts.wan_latency);
        if opts.with_ra {
            let ra_id = sim.add_node(Box::new(MiddleboxNode::new(self.ra.clone())));
            sim.add_path(
                Addr(0x0a00_0001),
                Addr(0x0a00_0002),
                Path::new(vec![c_id, ra_id, s_id], vec![h1, h2]),
            );
        } else {
            sim.add_path(
                Addr(0x0a00_0001),
                Addr(0x0a00_0002),
                Path::new(vec![c_id, s_id], vec![h1 + h2]),
            );
        }

        // Schedule server sends and the client's policy tick.
        for (k, offset) in opts.server_sends_at.iter().enumerate() {
            server_node
                .borrow_mut()
                .schedule_payload(format!("payload-{k}").into_bytes());
            sim.arm_timer(
                s_id,
                SimDuration::from_secs(*offset),
                SERVER_SEND_BASE + k as u64,
            );
        }
        sim.arm_timer(c_id, SimDuration::from_secs(1), CLIENT_TICK_TIMER);
        client_node.borrow_mut().remaining_ticks = opts.duration_secs as u32 + 2;

        let statuses_before =
            self.ra.borrow().stats.statuses_sent + self.ra.borrow().stats.statuses_replaced;

        // Kick off the handshake.
        let first = client_node.borrow_mut().start_segment();
        sim.inject(c_id, first);

        // Interleave packet processing (1-second steps) with the Δ-periodic
        // dissemination cycle. A revocation is published at the CA as soon
        // as it is due, but RAs only learn of it at their next pull —
        // preserving the genuine up-to-2Δ exposure.
        let end = start + opts.duration_secs;
        let mut t = start;
        let mut next_sync = start + self.delta;
        while t < end {
            t += 1;
            sim.run_until(SimTime::from_secs(t));
            self.now = t;
            if let Some(rev_at) = opts.revoke_at {
                if start + rev_at <= t && !self.ca.is_revoked(&self.server_serial()) {
                    self.publish_revocation(self.server_serial());
                }
            }
            if t >= next_sync {
                self.refresh_and_sync();
                next_sync += self.delta;
            }
        }
        sim.run_until(SimTime::from_secs(end));
        self.now = end;

        let statuses_after =
            self.ra.borrow().stats.statuses_sent + self.ra.borrow().stats.statuses_replaced;

        let node = client_node.borrow();
        self.root_tracker = node.client.root_tracker().clone();
        let events: Vec<(u64, RitmEvent)> = node.events.clone();
        let established_at = events
            .iter()
            .find(|(_, e)| matches!(e, RitmEvent::Established { .. }))
            .map(|(t, _)| t - start);
        let aborted = events.iter().find_map(|(t, e)| match e {
            RitmEvent::Aborted(r) => Some((t - start, r.clone())),
            _ => None,
        });
        ConnectionOutcome {
            alive_at_end: node.client.is_established(),
            established_at,
            aborted,
            events,
            statuses_injected: statuses_after - statuses_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_connection_survives() {
        let mut w = RitmWorld::new(1, 10, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 25,
            server_sends_at: vec![5, 12, 22],
            ..Default::default()
        });
        assert_eq!(out.established_at, Some(0));
        assert!(out.alive_at_end, "events: {:?}", out.events);
        assert!(out.aborted.is_none());
        assert!(out.statuses_injected >= 2, "initial + periodic refresh");
    }

    #[test]
    fn pre_revoked_certificate_is_refused() {
        let mut w = RitmWorld::new(2, 10, DeploymentModel::CloseToClients);
        let serial = w.server_serial();
        w.revoke(serial);
        let out = w.run_connection(&ConnectionOptions::default());
        match out.aborted {
            Some((_, AbortReason::Revoked { serial: s })) => assert_eq!(s, serial),
            other => panic!("expected revocation abort, got {other:?}"),
        }
        assert!(!out.alive_at_end);
    }

    #[test]
    fn mid_connection_revocation_detected_within_two_delta() {
        let mut w = RitmWorld::new(3, 10, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 60,
            // Keep traffic flowing so the RA has packets to piggyback on.
            server_sends_at: vec![5, 11, 15, 21, 25, 31, 35, 41, 45, 51],
            revoke_at: Some(12),
            ..Default::default()
        });
        let (t, reason) = out.aborted.expect("must abort after revocation");
        assert!(matches!(reason, AbortReason::Revoked { .. }), "{reason:?}");
        assert!(
            (12..=12 + 2 * 10 + 1).contains(&t),
            "revoked at +12s, aborted at +{t}s (must be within 2Δ)"
        );
    }

    #[test]
    fn downgrade_without_ra_aborts_under_always_require() {
        let mut w = RitmWorld::new(4, 10, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            with_ra: false,
            duration_secs: 5,
            ..Default::default()
        });
        assert!(matches!(out.aborted, Some((_, AbortReason::MissingStatus))));
    }

    #[test]
    fn close_to_servers_model_works_end_to_end() {
        let mut w = RitmWorld::new(5, 10, DeploymentModel::CloseToServers);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 15,
            server_sends_at: vec![12],
            ..Default::default()
        });
        assert!(out.alive_at_end, "events: {:?}", out.events);
        // And without the RA, the terminator's confirmation is absent, so
        // RequireIfServerConfirms lets the plain connection through.
        let mut w2 = RitmWorld::new(6, 10, DeploymentModel::CloseToServers);
        let out2 = w2.run_connection(&ConnectionOptions {
            with_ra: false,
            duration_secs: 5,
            ..Default::default()
        });
        assert!(out2.aborted.is_some() || out2.alive_at_end);
    }

    #[test]
    fn hot_serial_reuses_cached_proofs_until_epoch_advances() {
        let mut w = RitmWorld::new(8, 10, DeploymentModel::CloseToClients);
        let epoch0 = w.dictionary_epoch();

        // Several connections to the same server: after the first proof is
        // built, the rest of the statuses reuse the cached audit path.
        for _ in 0..3 {
            let out = w.run_connection(&ConnectionOptions {
                duration_secs: 12,
                server_sends_at: vec![5, 11],
                ..Default::default()
            });
            assert!(out.alive_at_end, "events: {:?}", out.events);
        }
        let health = w.ra_health();
        assert!(
            health.proof_cache.hits > 0,
            "periodic statuses for a hot serial must hit the cache: {health:?}"
        );
        assert!(health.cache_hit_rate() > 0.5, "{health:?}");

        // The accepted dictionary epoch persists across connections: the
        // world-level tracker remembers the newest root every client saw.
        let (size0, _) = w
            .root_tracker
            .newest(&w.ca.id())
            .expect("tracker advanced by accepted statuses");
        assert_eq!(size0, 0, "no revocations yet");

        // A revocation batch advances the epoch and invalidates the cache:
        // the next status is a fresh miss.
        let misses_before = w.ra_health().proof_cache.misses;
        let victim = w.issue_certificate("other.example").serial;
        w.revoke(victim);
        assert!(w.dictionary_epoch() > epoch0);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 3,
            ..Default::default()
        });
        assert!(out.alive_at_end, "events: {:?}", out.events);
        assert!(
            w.ra_health().proof_cache.misses > misses_before,
            "epoch change must force proof regeneration"
        );
        let (size1, _) = w.root_tracker.newest(&w.ca.id()).expect("tracker kept");
        assert!(size1 > size0, "tracker must follow the advanced epoch");
    }

    #[test]
    fn event_endpoint_serves_real_sockets_from_the_simulated_world() {
        use ritm_client::validator::Verdict;

        let mut w = RitmWorld::new(9, 10, DeploymentModel::CloseToClients);
        let victim = w.server_serial();
        w.revoke(victim);
        let clean = w.issue_certificate("ok.example").serial;

        // Real OS sockets against the simulated world's RA: a pipelined
        // flight of two chains, both validating against the same roots the
        // in-path middlebox injects.
        let server = w.serve_statuses_event().unwrap();
        assert!(server.thread_count() <= 2);
        let mut transport = ritm_proto::EventTransport::connect(server.addr()).unwrap();
        let mut keys: HashMap<CaId, ritm_crypto::ed25519::VerifyingKey> = HashMap::new();
        keys.insert(w.ca.id(), w.ca.verifying_key());
        let revoked_chain = [(w.ca.id(), victim)];
        let clean_chain = [(w.ca.id(), clean)];
        let chains: [&[(CaId, SerialNumber)]; 2] = [&revoked_chain, &clean_chain];
        let mut tracker = w.root_tracker.clone();
        let results = ritm_client::fetch_and_validate_many(
            &mut transport,
            &chains,
            &keys,
            w.delta,
            w.now,
            &mut tracker,
        );
        assert!(matches!(
            results[0].as_ref().unwrap().verdict,
            Verdict::Revoked { serial, .. } if serial == victim
        ));
        assert_eq!(results[1].as_ref().unwrap().verdict, Verdict::AllValid);
        drop(transport);
        assert_eq!(server.shutdown(), 2);
    }

    #[test]
    fn two_worlds_share_one_event_runtime() {
        use ritm_client::validator::Verdict;

        // Two independent simulated worlds expose their RA read paths on
        // ONE shared 2-thread runtime — the multi-endpoint deployment
        // shape (one middlebox process, several listeners).
        let runtime = ritm_rt::Runtime::new(2);
        let handle = runtime.handle();
        let mut w1 = RitmWorld::new(11, 10, DeploymentModel::CloseToClients);
        let mut w2 = RitmWorld::new(12, 10, DeploymentModel::CloseToClients);
        let victim = w1.server_serial();
        w1.revoke(victim);
        let clean = w2.issue_certificate("fine.example").serial;

        let s1 = w1.serve_statuses_event_on(&handle).unwrap();
        let s2 = w2.serve_statuses_event_on(&handle).unwrap();
        assert_eq!(s1.thread_count(), 2);
        assert_eq!(s2.thread_count(), 2);

        for (w, server, serial, expect_revoked) in
            [(&w1, &s1, victim, true), (&w2, &s2, clean, false)]
        {
            let mut transport = ritm_proto::EventTransport::connect(server.addr()).unwrap();
            let mut keys: HashMap<CaId, ritm_crypto::ed25519::VerifyingKey> = HashMap::new();
            keys.insert(w.ca.id(), w.ca.verifying_key());
            let chain = [(w.ca.id(), serial)];
            let mut tracker = w.root_tracker.clone();
            let fetched = ritm_client::fetch_and_validate(
                &mut transport,
                &chain,
                &keys,
                w.delta,
                w.now,
                &mut tracker,
            )
            .expect("fetch over the shared runtime");
            if expect_revoked {
                assert!(
                    matches!(fetched.verdict, Verdict::Revoked { serial: s, .. } if s == serial)
                );
            } else {
                assert_eq!(fetched.verdict, Verdict::AllValid);
            }
        }
        assert_eq!(s1.shutdown(), 1);
        assert_eq!(s2.shutdown(), 1);
        runtime.shutdown();
    }

    #[test]
    fn idle_connection_starves_and_client_interrupts() {
        // No server traffic → no piggyback opportunities → the client's own
        // 2Δ staleness check fires (blocking-attack resilience).
        let mut w = RitmWorld::new(7, 5, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 30,
            server_sends_at: vec![],
            ..Default::default()
        });
        match out.aborted {
            Some((t, AbortReason::StaleStatus)) => {
                assert!(t > 2 * 5 && t <= 2 * 5 + 3, "aborted at +{t}s");
            }
            other => panic!("expected staleness abort, got {other:?}"),
        }
    }
}
