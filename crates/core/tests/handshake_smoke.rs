//! The acceptance end-to-end for the interception lane: real sockets, both
//! sans-io engines as `ritm-rt` tasks, and the [`FlowTable`] relay inline
//! between them.
//!
//! * A benign chain completes with a stapled status that validates against
//!   the client's [`RootTracker`] (`Verdict::AllValid`).
//! * A revoked chain is reset mid-handshake — the client never establishes.
//! * An expired chain aborts at the client with `certificate_expired`.
//! * The CI `handshake-smoke` shape: many concurrent handshakes with mixed
//!   chains on one shared 2-thread runtime — every revoked flow reset,
//!   zero benign flows reset.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::intercept::{FlowTable, InterceptConfig};
use ritm_agent::serve::StatusServer;
use ritm_agent::StatusPayload;
use ritm_client::{validate_payload_tracked, RootTracker, Verdict};
use ritm_crypto::ed25519::{SigningKey, VerifyingKey};
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use ritm_net::tcp::{FourTuple, SocketAddr as SimSocketAddr};
use ritm_net::time::SimTime;
use ritm_rt::{Executor, Handle};
use ritm_tls::alert::AlertDescription;
use ritm_tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm_tls::connection::{ClientConfig, ServerContext};
use ritm_tls::engine::{ClientEngine, ServerEngine};
use ritm_tls::event::{drive_handshake_task, HandshakeOutcome, HandshakeTaskError};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const T0: u64 = 1_000_000;
/// Handshake wall-clock (seconds), also the simulated segment timestamp.
const NOW: u64 = T0 + 2;

/// What kind of chain a flow presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Benign,
    Revoked,
    Expired,
}

struct World {
    ca_id: CaId,
    ca_key: SigningKey,
    status: Arc<StatusServer>,
    delta: u64,
}

impl World {
    /// Even serials 0..40 are revoked; everything else has absence proofs.
    fn new() -> Self {
        let ca_id = CaId::from_name("SmokeCA");
        let ca_key = SigningKey::from_seed([1u8; 32]);
        let mut rng = StdRng::seed_from_u64(17);
        let mut ca = CaDictionary::new(ca_id, ca_key.clone(), 10, 64, &mut rng, T0);
        let mut mirror =
            MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        mirror.set_delta(10);
        let serials: Vec<SerialNumber> = (0..20).map(|i| SerialNumber::from_u24(i * 2)).collect();
        let issuance = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        mirror.apply_issuance(&issuance, T0 + 1).unwrap();
        let status = Arc::new(StatusServer::new());
        assert!(status.publish(mirror.snapshot()));
        World {
            ca_id,
            ca_key,
            status,
            delta: 10,
        }
    }

    fn ca_keys(&self) -> HashMap<CaId, VerifyingKey> {
        let mut keys = HashMap::new();
        keys.insert(self.ca_id, self.ca_key.verifying_key());
        keys
    }

    fn chain(&self, kind: Kind, serial_hint: u32) -> (CertificateChain, TrustAnchors) {
        let serial = match kind {
            // Odd serials are never revoked in this world.
            Kind::Benign | Kind::Expired => serial_hint * 2 + 1,
            Kind::Revoked => (serial_hint % 20) * 2,
        };
        let not_after = match kind {
            Kind::Expired => NOW - 1, // already past at handshake time
            _ => T0 + 100_000,
        };
        let server_key = SigningKey::from_seed([2u8; 32]);
        let leaf = Certificate::issue(
            &self.ca_key,
            self.ca_id,
            SerialNumber::from_u24(serial),
            "smoke.example.com",
            T0 - 100,
            not_after,
            server_key.verifying_key(),
            false,
        );
        let mut anchors = TrustAnchors::new();
        anchors.add(self.ca_id, self.ca_key.verifying_key());
        (CertificateChain(vec![leaf]), anchors)
    }
}

fn client_config(anchors: TrustAnchors) -> ClientConfig {
    ClientConfig {
        server_name: "smoke.example.com".into(),
        anchors,
        enable_ritm: true,
    }
}

fn tuple(i: u16) -> FourTuple {
    FourTuple {
        client: SimSocketAddr::new(0x0a00_0001, 10_000 + i),
        server: SimSocketAddr::new(0x0a00_0002, 443),
    }
}

type ClientOutcome = Result<(ClientEngine, HandshakeOutcome), HandshakeTaskError>;

/// Spawns the three parties of one intercepted handshake on `handle`:
/// a server engine task behind `listener`-like accept, the relay pumps,
/// and a client engine task. Returns the client's result receiver.
fn launch_flow(
    handle: &Handle,
    table: &Arc<Mutex<FlowTable>>,
    ctx: Arc<ServerContext>,
    anchors: TrustAnchors,
    session: Option<ritm_tls::session::SessionState>,
    flow_id: u16,
    collect_late_status: bool,
) -> mpsc::Receiver<ClientOutcome> {
    let server_listener = TcpListener::bind("127.0.0.1:0").expect("bind server");
    server_listener.set_nonblocking(true).expect("nonblocking");
    let server_addr = server_listener.local_addr().expect("addr");
    let mb_listener = TcpListener::bind("127.0.0.1:0").expect("bind middlebox");
    let mb_addr = mb_listener.local_addr().expect("addr");

    // Server party.
    let reactor = handle.reactor();
    handle.spawn(async move {
        let Ok((stream, _)) = ritm_rt::net::accept(&reactor, &server_listener).await else {
            return;
        };
        let engine = ServerEngine::new(ctx, [1u8; 32]);
        // Reset flows error here by design; outcome is judged client-side.
        let _ = drive_handshake_task(reactor, stream, engine, NOW).await;
    });

    // Client party.
    let (tx, rx) = mpsc::channel::<ClientOutcome>();
    let reactor = handle.reactor();
    handle.spawn(async move {
        let result = async {
            let stream = TcpStream::connect(mb_addr)?;
            let engine = ClientEngine::new(client_config(anchors), [2u8; 32], session);
            let (mut engine, stream, mut outcome) =
                drive_handshake_task(Arc::clone(&reactor), stream, engine, NOW).await?;
            // An injected status may trail the completing flight by one
            // segment (it rides behind the record that finished the
            // handshake); give it a bounded chance to arrive.
            if collect_late_status && outcome.statuses.is_empty() {
                let mut buf = [0u8; 4096];
                for _ in 0..32 {
                    let n = match ritm_rt::net::read_some(&reactor, &stream, &mut buf).await {
                        Ok(n) => n,
                        Err(_) => break,
                    };
                    if n == 0 {
                        break;
                    }
                    for action in engine.feed(NOW, &buf[..n]) {
                        if let ritm_tls::engine::Action::RitmStatus(payload) = action {
                            outcome.statuses.push(payload);
                        }
                    }
                    if !outcome.statuses.is_empty() {
                        break;
                    }
                }
            }
            Ok((engine, outcome))
        }
        .await;
        let _ = tx.send(result);
    });

    // Relay party: the middlebox accepts the client, dials the server, and
    // runs both pump tasks through the shared flow table.
    let (client_side, _) = mb_listener.accept().expect("middlebox accept");
    let server_side = TcpStream::connect(server_addr).expect("middlebox dial");
    ritm_agent::intercept::spawn_inline_relay(
        handle,
        Arc::clone(table),
        tuple(flow_id),
        client_side,
        server_side,
        SimTime::from_secs(NOW),
    )
    .expect("relay spawned");
    rx
}

#[test]
fn benign_completes_revoked_resets_expired_aborts() {
    let world = World::new();
    let table = Arc::new(Mutex::new(FlowTable::new(
        Arc::clone(&world.status),
        InterceptConfig::default(),
    )));
    let exec = Executor::new(2);
    let handle = exec.handle();

    // Benign: completes, and the stapled status validates to AllValid.
    let (chain, anchors) = world.chain(Kind::Benign, 3);
    let ctx = ServerContext::new(chain.clone(), [9u8; 20]);
    let rx = launch_flow(&handle, &table, ctx, anchors, None, 1, true);
    let (engine, outcome) = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("client finished")
        .expect("benign handshake succeeds");
    assert!(engine.is_established());
    assert!(!outcome.statuses.is_empty(), "status stapled inline");
    let payload = StatusPayload::from_bytes(&outcome.statuses[0]).expect("decodes");
    let wire_chain: Vec<(CaId, SerialNumber)> = chain
        .0
        .iter()
        .map(|cert| (cert.issuer, cert.serial))
        .collect();
    let mut tracker = RootTracker::new();
    let verdict = validate_payload_tracked(
        &payload,
        &wire_chain,
        &world.ca_keys(),
        world.delta,
        NOW,
        &mut tracker,
    )
    .expect("payload validates");
    assert_eq!(verdict, Verdict::AllValid);
    assert!(tracker.newest(&world.ca_id).is_some(), "tracker advanced");

    // Revoked: reset mid-handshake; the client never establishes.
    let (chain, anchors) = world.chain(Kind::Revoked, 2);
    let ctx = ServerContext::new(chain, [9u8; 20]);
    let rx = launch_flow(&handle, &table, ctx, anchors, None, 2, false);
    let result = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("client finished");
    assert!(
        result.is_err(),
        "revoked flow must not complete: {result:?}"
    );

    // Expired: passes the middlebox (not revoked) but the client's own
    // validity check aborts the handshake.
    let (chain, anchors) = world.chain(Kind::Expired, 5);
    let ctx = ServerContext::new(chain, [9u8; 20]);
    let rx = launch_flow(&handle, &table, ctx, anchors, None, 3, false);
    let result = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("client finished");
    match result {
        Err(HandshakeTaskError::Aborted(alert)) => {
            assert_eq!(alert.description, AlertDescription::CertificateExpired);
        }
        other => panic!("expected certificate_expired abort, got {other:?}"),
    }

    let stats = table.lock().stats();
    assert_eq!(stats.flows_reset, 1);
    assert_eq!(stats.flows_tracked, 3);
    exec.shutdown();
}

#[test]
fn resumption_through_middlebox_still_gets_verdict() {
    let world = World::new();
    let table = Arc::new(Mutex::new(FlowTable::new(
        Arc::clone(&world.status),
        InterceptConfig::default(),
    )));
    let exec = Executor::new(2);
    let handle = exec.handle();

    let (chain, anchors) = world.chain(Kind::Benign, 7);
    let wire_chain: Vec<(CaId, SerialNumber)> = chain
        .0
        .iter()
        .map(|cert| (cert.issuer, cert.serial))
        .collect();
    let ctx = ServerContext::new(chain, [9u8; 20]);

    // Full handshake: the table memorizes session id → chain.
    let rx = launch_flow(
        &handle,
        &table,
        Arc::clone(&ctx),
        anchors.clone(),
        None,
        1,
        true,
    );
    let (engine, _) = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("client finished")
        .expect("full handshake");
    let session = engine.session_state(NOW).expect("session captured");

    // Abbreviated handshake: no Certificate crosses the wire, yet the
    // middlebox staples from flow-table memory and the verdict validates.
    let rx = launch_flow(&handle, &table, ctx, anchors, Some(session), 2, true);
    let (engine, outcome) = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("client finished")
        .expect("resumption handshake");
    assert!(engine.is_established());
    assert!(outcome.resumed, "abbreviated path taken");
    assert!(outcome.chain.is_none(), "no certificate flight");
    assert!(
        !outcome.statuses.is_empty(),
        "resumption still carries a status"
    );
    let payload = StatusPayload::from_bytes(&outcome.statuses[0]).expect("decodes");
    let verdict = validate_payload_tracked(
        &payload,
        &wire_chain,
        &world.ca_keys(),
        world.delta,
        NOW,
        &mut RootTracker::new(),
    )
    .expect("payload validates");
    assert_eq!(verdict, Verdict::AllValid);
    exec.shutdown();
}

/// The CI smoke shape: many concurrent mixed handshakes on one shared
/// 2-thread runtime. `HANDSHAKE_SMOKE_FLOWS` scales the flow count (CI
/// runs 256; the default keeps local runs snappy).
#[test]
fn concurrent_mixed_handshakes_on_shared_runtime() {
    let flows: u16 = std::env::var("HANDSHAKE_SMOKE_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let world = World::new();
    let table = Arc::new(Mutex::new(FlowTable::new(
        Arc::clone(&world.status),
        InterceptConfig::default(),
    )));
    let exec = Executor::new(2);
    let handle = exec.handle();

    let mut receivers = Vec::new();
    for i in 0..flows {
        let kind = match i % 3 {
            0 => Kind::Benign,
            1 => Kind::Revoked,
            _ => Kind::Expired,
        };
        let (chain, anchors) = world.chain(kind, u32::from(i) + 1);
        let ctx = ServerContext::new(chain, [9u8; 20]);
        let rx = launch_flow(&handle, &table, ctx, anchors, None, i, kind == Kind::Benign);
        receivers.push((kind, rx));
    }

    let mut benign_ok = 0u32;
    let mut revoked_stopped = 0u32;
    let mut expired_aborted = 0u32;
    for (kind, rx) in receivers {
        let result = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("client task finished");
        match kind {
            Kind::Benign => {
                let (engine, outcome) = result.expect("benign flow completes");
                assert!(engine.is_established());
                assert!(!outcome.statuses.is_empty(), "benign flow stapled");
                benign_ok += 1;
            }
            Kind::Revoked => {
                assert!(result.is_err(), "revoked flow must be reset");
                revoked_stopped += 1;
            }
            Kind::Expired => {
                match result {
                    Err(HandshakeTaskError::Aborted(alert)) => {
                        assert_eq!(alert.description, AlertDescription::CertificateExpired);
                    }
                    other => panic!("expected expired abort, got {other:?}"),
                }
                expired_aborted += 1;
            }
        }
    }

    let n = u32::from(flows);
    assert_eq!(benign_ok, n.div_ceil(3), "every benign flow completed");
    assert_eq!(revoked_stopped, n / 3 + u32::from(n % 3 == 2));
    assert!(expired_aborted > 0 || flows < 3);

    let stats = table.lock().stats();
    assert_eq!(
        stats.flows_reset,
        u64::from(revoked_stopped),
        "exactly the revoked flows were reset"
    );
    assert_eq!(stats.flows_tracked, u64::from(flows));
    assert!(stats.statuses_injected >= u64::from(benign_ok));
    exec.shutdown();
}
