//! Kill-a-node-mid-sync recovery (the CI `recovery-smoke` step).
//!
//! The robustness story end to end, over real OS sockets and the
//! event-driven serving stack, with deterministic fault injection on every
//! sync flight:
//!
//! * **CA crash** — the CA dies mid-append with an RA mid-catch-up. It
//!   restarts from its issuance log (torn tail truncated), the RA follows
//!   it to its new address, and paged catch-up with retry/backoff
//!   converges both to identical signed roots.
//! * **RA crash** — the RA dies with a gap outstanding. It restarts from
//!   its persisted mirror snapshot, serves immediately at the snapshot
//!   root, and closes only the remaining gap; a corrupted snapshot falls
//!   back to a fresh bootstrap and still converges.
//!
//! Throughout, a client pins every served root in a [`RootTracker`]: no
//! endpoint ever serves a root older than one the client already accepted.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent, StatusService, SyncPolicy};
use ritm_ca::{CaService, CertificationAuthority, IssuanceLog, TailState};
use ritm_cdn::network::Cdn;
use ritm_client::{fetch_status, RootTracker};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaId, SerialNumber, SignedRoot};
use ritm_net::time::{SimDuration, SimTime};
use ritm_proto::event::{EventServer, EventTransport};
use ritm_proto::fault::{FaultPlan, FaultTransport};
use ritm_proto::Service;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

const T0: u64 = 1_000_000;
const DELTA: u64 = 10;
const BATCH: u32 = 40;

fn wal_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ritm-recovery-{}-{}.log", std::process::id(), tag))
}

fn signing_key() -> SigningKey {
    SigningKey::from_seed([21u8; 32])
}

/// Issues `n` fresh certificates and revokes them in one batch at `now`.
fn revoke_batch(
    ca: &mut CertificationAuthority,
    cdn: &mut Cdn,
    rng: &mut StdRng,
    n: u32,
    now: u64,
) {
    let subject_key = SigningKey::from_seed([7u8; 32]).verifying_key();
    let serials: Vec<SerialNumber> = (0..n)
        .map(|i| {
            ca.issue_certificate(&format!("s{now}-{i}.com"), subject_key, 0, u64::MAX)
                .serial
        })
        .collect();
    ca.revoke(&serials, cdn, rng, now).unwrap().unwrap();
}

/// Spawns an event server over the shared CA handle, clocked at `now`.
fn spawn_ca_server(
    shared: &Arc<Mutex<CertificationAuthority>>,
    now: u64,
) -> (Arc<CaService>, EventServer) {
    let svc = Arc::new(CaService::new(Arc::clone(shared)));
    svc.set_now(now);
    let server = EventServer::spawn(Arc::clone(&svc) as Arc<dyn Service>, 1).unwrap();
    (svc, server)
}

/// Fetches `serial`'s status from an RA endpoint, validates it, asserts it
/// is revoked, and pins the served root in `tracker` — which fails the
/// test if the root is older than any root this client already saw.
fn check_revoked(
    transport: &mut EventTransport,
    tracker: &mut RootTracker,
    ca: CaId,
    key: &ritm_crypto::ed25519::VerifyingKey,
    serial: SerialNumber,
    now: u64,
) -> SignedRoot {
    let (payload, _) = fetch_status(transport, &[(ca, serial)], false).unwrap();
    let status = &payload.statuses[0];
    let outcome = status.validate(&serial, key, DELTA, now).unwrap();
    assert!(outcome.is_revoked(), "serial {serial} must be revoked");
    tracker
        .observe(&status.signed_root)
        .expect("served root must never regress");
    status.signed_root
}

#[test]
fn ca_killed_mid_sync_restarts_from_log_and_converges() {
    let path = wal_path("ca-crash");
    let _ = std::fs::remove_file(&path);
    let mut rng = StdRng::seed_from_u64(901);
    let mut cdn = Cdn::new(SimDuration::from_secs(5));

    // A CA with an attached issuance log, 5 batches deep (200 revocations).
    let (log, scan) = IssuanceLog::open(&path).unwrap();
    assert!(scan.records.is_empty());
    let mut ca = CertificationAuthority::new(
        "CrashCA",
        signing_key(),
        DELTA,
        1 << 16,
        &mut cdn,
        &mut rng,
        T0,
    );
    ca.attach_wal(log);
    let genesis = *ca.dictionary().signed_root();
    let (ca_id, key) = (ca.id(), ca.verifying_key());
    for b in 0..5u64 {
        revoke_batch(&mut ca, &mut cdn, &mut rng, BATCH, T0 + 1 + b);
    }
    let shared = Arc::new(Mutex::new(ca));
    let (_svc, server) = spawn_ca_server(&shared, T0 + 6);

    // An RA begins catching up over a lossy link — and is interrupted
    // after a single page (`max_pages: 1`), leaving it mid-sync.
    let mut ra = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    ra.follow_ca(ca_id, key, genesis).unwrap();
    let mut sync_t = FaultTransport::new(
        EventTransport::connect(server.addr()).unwrap(),
        FaultPlan::lossy(0.25),
        77,
    );
    let interrupted = SyncPolicy {
        page_limit: 64,
        max_pages: 1,
        ..Default::default()
    };
    ra.sync_via_with(&mut sync_t, SimTime::from_secs(T0 + 6), &interrupted);
    let partial = ra.mirror(&ca_id).unwrap().len();
    assert!(
        partial > 0 && partial < 200,
        "expected a mid-sync mirror, got {partial}/200"
    );

    // A client pins the partially-synced root.
    let ra_server =
        EventServer::spawn(Arc::new(StatusService::new(ra.status_server())), 1).unwrap();
    let mut client = EventTransport::connect(ra_server.addr()).unwrap();
    let mut tracker = RootTracker::new();
    check_revoked(
        &mut client,
        &mut tracker,
        ca_id,
        &key,
        SerialNumber::from_u24(1),
        T0 + 6,
    );

    // Kill the CA: socket gone, in-memory dictionary gone, and the log
    // left with a torn tail as if the process died mid-append.
    server.shutdown();
    drop(shared);
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
    }

    // Restart: scan truncates the torn tail, replay rebuilds the
    // dictionary, and the CA keeps issuing (past its pre-crash serials).
    let (log2, scan2) = IssuanceLog::open(&path).unwrap();
    assert_eq!(scan2.tail, TailState::Torn);
    assert_eq!(scan2.records.len(), 5);
    let mut ca2 = CertificationAuthority::recover(
        "CrashCA",
        signing_key(),
        DELTA,
        1 << 16,
        &scan2.records,
        &mut cdn,
        &mut rng,
        T0 + 20,
    )
    .unwrap();
    assert_eq!(ca2.revocation_count(), 200);
    ca2.attach_wal(log2);
    ca2.set_next_serial(5 * BATCH + 1);
    revoke_batch(&mut ca2, &mut cdn, &mut rng, BATCH, T0 + 21);
    let shared2 = Arc::new(Mutex::new(ca2));
    let (_svc2, server2) = spawn_ca_server(&shared2, T0 + 22);

    // The RA follows the restarted CA to its new address and converges
    // under the same injected faults.
    sync_t.inner_mut().reconnect_to(server2.addr()).unwrap();
    let report = ra.sync_via_with(
        &mut sync_t,
        SimTime::from_secs(T0 + 22),
        &SyncPolicy {
            page_limit: 64,
            ..Default::default()
        },
    );
    assert_eq!(report.gave_up, 0, "bounded retry must absorb the faults");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.catchups, 1);
    assert!(report.catchup_pages >= 2, "gap must close in pages");
    let mirror = ra.mirror(&ca_id).unwrap();
    assert_eq!(mirror.len(), 240);
    assert_eq!(
        mirror.signed_root(),
        shared2.lock().unwrap().dictionary().signed_root(),
        "RA and recovered CA must converge to identical signed roots"
    );

    // The client sees only forward movement: pre-crash and post-crash
    // revocations both served, root strictly newer than the pinned one.
    check_revoked(
        &mut client,
        &mut tracker,
        ca_id,
        &key,
        SerialNumber::from_u24(1),
        T0 + 22,
    );
    let newest = check_revoked(
        &mut client,
        &mut tracker,
        ca_id,
        &key,
        SerialNumber::from_u24(5 * BATCH + 3),
        T0 + 22,
    );
    assert_eq!(newest.size, 240);

    ra_server.shutdown();
    server2.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn ra_killed_mid_sync_resumes_from_snapshot_and_converges() {
    let mut rng = StdRng::seed_from_u64(902);
    let mut cdn = Cdn::new(SimDuration::from_secs(5));
    let mut ca = CertificationAuthority::new(
        "RaCrashCA",
        signing_key(),
        DELTA,
        1 << 16,
        &mut cdn,
        &mut rng,
        T0,
    );
    let genesis = *ca.dictionary().signed_root();
    let (ca_id, key) = (ca.id(), ca.verifying_key());
    for b in 0..3u64 {
        revoke_batch(&mut ca, &mut cdn, &mut rng, BATCH, T0 + 1 + b);
    }
    let shared = Arc::new(Mutex::new(ca));
    let (svc, server) = spawn_ca_server(&shared, T0 + 4);

    // RA #1 syncs fully (120 revocations) and persists its snapshot — the
    // durability point a production RA would hit after every pass.
    let mut ra1 = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    ra1.follow_ca(ca_id, key, genesis).unwrap();
    let mut sync_t = FaultTransport::new(
        EventTransport::connect(server.addr()).unwrap(),
        FaultPlan::lossy(0.25),
        31,
    );
    ra1.sync_via_with(
        &mut sync_t,
        SimTime::from_secs(T0 + 4),
        &SyncPolicy {
            page_limit: 64,
            ..Default::default()
        },
    );
    assert_eq!(ra1.mirror(&ca_id).unwrap().len(), 120);
    let snapshot = ra1.snapshot_mirror(&ca_id).unwrap();

    // A client pins the snapshot-era root.
    let ra1_server =
        EventServer::spawn(Arc::new(StatusService::new(ra1.status_server())), 1).unwrap();
    let mut client = EventTransport::connect(ra1_server.addr()).unwrap();
    let mut tracker = RootTracker::new();
    check_revoked(
        &mut client,
        &mut tracker,
        ca_id,
        &key,
        SerialNumber::from_u24(1),
        T0 + 4,
    );

    // The CA keeps revoking while the RA is down (the gap), then the RA
    // dies with those batches unsynced.
    for b in 0..2u64 {
        let mut ca = shared.lock().unwrap();
        revoke_batch(&mut ca, &mut cdn, &mut rng, BATCH, T0 + 10 + b);
    }
    svc.set_now(T0 + 12);
    ra1_server.shutdown();
    drop(ra1);

    // RA #2 resumes from the snapshot: it serves immediately at the
    // snapshot root (never older than what the client pinned) …
    let mut ra2 = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    assert_eq!(ra2.resume_ca(key, &snapshot).unwrap(), ca_id);
    assert_eq!(ra2.mirror(&ca_id).unwrap().len(), 120);
    let ra2_server =
        EventServer::spawn(Arc::new(StatusService::new(ra2.status_server())), 1).unwrap();
    client.reconnect_to(ra2_server.addr()).unwrap();
    check_revoked(
        &mut client,
        &mut tracker,
        ca_id,
        &key,
        SerialNumber::from_u24(1),
        T0 + 12,
    );

    // … then closes exactly the remaining gap, paged, under faults.
    let report = ra2.sync_via_with(
        &mut sync_t,
        SimTime::from_secs(T0 + 12),
        &SyncPolicy {
            page_limit: 32,
            ..Default::default()
        },
    );
    assert_eq!(report.gave_up, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(report.catchups, 1);
    assert!(report.catchup_pages >= 2);
    assert_eq!(
        report.revocations_applied, 80,
        "resume means only the gap is re-downloaded"
    );
    assert_eq!(ra2.mirror(&ca_id).unwrap().len(), 200);
    assert_eq!(
        ra2.mirror(&ca_id).unwrap().signed_root(),
        shared.lock().unwrap().dictionary().signed_root()
    );
    let newest = check_revoked(
        &mut client,
        &mut tracker,
        ca_id,
        &key,
        SerialNumber::from_u24(150),
        T0 + 12,
    );
    assert_eq!(newest.size, 200);

    // A corrupted snapshot is rejected and the fallback path — fresh
    // bootstrap plus full catch-up — still converges.
    let mut tampered = snapshot.clone();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x10;
    let mut ra3 = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    assert!(ra3.resume_ca(key, &tampered).is_err());
    ra3.follow_ca(ca_id, key, genesis).unwrap();
    let report = ra3.sync_via_with(
        &mut sync_t,
        SimTime::from_secs(T0 + 12),
        &SyncPolicy {
            page_limit: 64,
            ..Default::default()
        },
    );
    assert_eq!(report.gave_up, 0);
    assert_eq!(
        report.revocations_applied, 200,
        "full re-download from zero"
    );
    assert_eq!(
        ra3.mirror(&ca_id).unwrap().signed_root(),
        shared.lock().unwrap().dictionary().signed_root()
    );

    ra2_server.shutdown();
    server.shutdown();
}
