//! fleet-smoke: a 3-shard RA fleet over real OS sockets on one shared
//! 2-thread runtime. One shard is killed mid-run and the router spills its
//! traffic to a replica; the shard restarts a full issuance batch behind,
//! peer gossip flags it stale across the wire, a `RootTracker` client
//! refuses its replayed root, and after catch-up the restarted shard
//! gossips back to a converged fleet.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent};
use ritm_cdn::{FleetRouter, Region};
use ritm_client::{FetchError, RootTracker, ValidationError, Verdict};
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
use ritm_fleet::{FleetNode, GossipAnomaly, HashRing, ShardKey};
use ritm_proto::{EventServer, EventServerConfig, EventTransport};
use std::collections::HashMap;
use std::sync::Arc;

const T0: u64 = 1_397_000_000;

fn node(name: &str, region: Region) -> FleetNode {
    FleetNode::new(
        name,
        region,
        RevocationAgent::new(RaConfig {
            delta: 10,
            region,
            ..Default::default()
        }),
    )
}

fn serve(n: &FleetNode, handle: &ritm_rt::Handle) -> EventServer {
    EventServer::spawn_on(n.service(), handle, EventServerConfig::default())
        .expect("bind fleet shard")
}

#[test]
fn fleet_survives_kill_restart_and_never_serves_stale() {
    // One CA, two issuance batches: the restarted shard comes back pinned
    // at the first batch.
    let mut rng = StdRng::seed_from_u64(23);
    let key = SigningKey::from_seed([5u8; 32]);
    let ca_id = CaId::from_name("SmokeCA");
    let mut ca = CaDictionary::new(ca_id, key.clone(), 10, 1 << 8, &mut rng, T0);
    let genesis = *ca.signed_root();
    let mut mirror = MirrorDictionary::new(ca_id, key.verifying_key(), genesis).unwrap();
    mirror.set_delta(10);
    let batch1: Vec<SerialNumber> = (0..40).map(SerialNumber::from_u64).collect();
    let iss1 = ca.insert(&batch1, &mut rng, T0 + 1).unwrap();
    mirror.apply_issuance(&iss1, T0 + 1).unwrap();
    let stale_mirror = mirror.clone();
    let batch2: Vec<SerialNumber> = (40..70).map(SerialNumber::from_u64).collect();
    let iss2 = ca.insert(&batch2, &mut rng, T0 + 2).unwrap();
    mirror.apply_issuance(&iss2, T0 + 2).unwrap();

    // Three shards, every one mirroring the CA (replication factor 3 for
    // one CA keeps the kill scenario deterministic).
    let names = ["ra-0", "ra-1", "ra-2"];
    let regions = [Region::Europe, Region::NorthAmerica, Region::Japan];
    let mut nodes: Vec<FleetNode> = names
        .iter()
        .zip(regions)
        .map(|(name, region)| node(name, region))
        .collect();
    for n in &mut nodes {
        n.adopt(ca_id, key.verifying_key(), mirror.clone());
    }
    for n in &nodes {
        n.publish_local();
    }

    let ring = HashRing::with_nodes(names);
    let mut router: FleetRouter<HashRing> = FleetRouter::new(ring, 3);
    for n in &nodes {
        router.set_home(Arc::from(n.name()), n.region());
    }

    // Real sockets on ONE shared 2-thread runtime.
    let runtime = ritm_rt::Runtime::new(2);
    let handle = runtime.handle();
    let mut servers: HashMap<String, EventServer> = nodes
        .iter()
        .map(|n| (n.name().to_string(), serve(n, &handle)))
        .collect();

    let ca_keys: HashMap<_, _> = [(ca_id, key.verifying_key())].into();
    let mut tracker = RootTracker::new();
    let serial = SerialNumber::from_u64(2); // revoked in batch 1
    let point = ShardKey::ca(ca_id).point();

    // A healthy fetch through the routed primary: revoked verdict, fresh
    // root accepted into the tracker.
    let route = router.route(Region::Europe, point).expect("fleet is up");
    assert!(!route.spilled);
    let primary = route.node.to_string();
    let mut t = EventTransport::connect(servers[&primary].addr()).unwrap();
    let fetched = ritm_client::fetch_and_validate(
        &mut t,
        &[(ca_id, serial)],
        &ca_keys,
        10,
        T0 + 3,
        &mut tracker,
    )
    .expect("primary serves");
    assert!(matches!(fetched.verdict, Verdict::Revoked { serial: s, .. } if s == serial));
    drop(t);

    // Kill the primary: its listener goes away and the router spills the
    // next fetch to a replica, which serves the same fresh root.
    servers.remove(&primary).unwrap().shutdown();
    router.mark_down(Arc::from(primary.as_str()));
    let route = router
        .route(Region::Europe, point)
        .expect("replicas remain");
    assert!(route.spilled, "router must spill off the dead primary");
    let replica = route.node.to_string();
    assert_ne!(replica, primary);
    let mut t = EventTransport::connect(servers[&replica].addr()).unwrap();
    let fetched = ritm_client::fetch_and_validate(
        &mut t,
        &[(ca_id, serial)],
        &ca_keys,
        10,
        T0 + 3,
        &mut tracker,
    )
    .expect("replica serves during the outage");
    assert!(matches!(fetched.verdict, Verdict::Revoked { .. }));
    drop(t);

    // Restart the killed shard one batch behind (its snapshot predates
    // batch 2), on a fresh socket.
    let idx = nodes.iter().position(|n| n.name() == primary).unwrap();
    let mut restarted = node(&primary, regions[idx]);
    restarted.adopt(ca_id, key.verifying_key(), stale_mirror);
    restarted.publish_local();
    servers.insert(primary.clone(), serve(&restarted, &handle));

    // A peer gossips with the restarted shard across the wire and flags
    // it stale.
    let mut t = EventTransport::connect(servers[&primary].addr()).unwrap();
    let peer = nodes.iter_mut().find(|n| n.name() != primary).unwrap();
    let anomalies = peer
        .gossip_with(&primary, &mut t)
        .expect("gossip transport")
        .expect("restarted shard speaks gossip");
    assert!(
        anomalies
            .iter()
            .any(|a| matches!(a, GossipAnomaly::StalePeer { peer, .. } if *peer == primary)),
        "peer ledger must flag the restarted shard: {anomalies:?}"
    );
    drop(t);

    // The client's tracker has already accepted the batch-2 root — the
    // restarted shard's replayed root is refused outright.
    let mut t = EventTransport::connect(servers[&primary].addr()).unwrap();
    let err = ritm_client::fetch_and_validate(
        &mut t,
        &[(ca_id, serial)],
        &ca_keys,
        10,
        T0 + 3,
        &mut tracker,
    )
    .expect_err("a stale root must never validate");
    assert!(
        matches!(
            err,
            FetchError::Validation(ValidationError::RootRegression { .. })
        ),
        "unexpected failure shape: {err:?}"
    );
    drop(t);

    // Catch-up: the restarted shard applies the missed batch, republishes,
    // and announces itself back to the fleet; the peer's ledger converges.
    restarted
        .ra
        .mirror_mut(&ca_id)
        .unwrap()
        .apply_issuance(&iss2, T0 + 4)
        .unwrap();
    restarted.publish_local();
    let peer_name = peer.name().to_string();
    let mut t = EventTransport::connect(servers[&peer_name].addr()).unwrap();
    restarted
        .gossip_with(&peer_name, &mut t)
        .expect("gossip transport")
        .expect("peer acks the recovered shard");
    drop(t);
    // Staleness is tracked per peer label: the peer re-gossips with the
    // recovered shard so the fresh view replaces the stale one recorded
    // under that shard's name.
    let mut t = EventTransport::connect(servers[&primary].addr()).unwrap();
    let anomalies = peer
        .gossip_with(&primary, &mut t)
        .expect("gossip transport")
        .expect("recovered shard speaks gossip");
    assert!(
        anomalies.is_empty(),
        "recovered shard must gossip clean: {anomalies:?}"
    );
    drop(t);
    {
        let ledger = peer.ledger().lock().unwrap();
        assert!(
            ledger.is_converged(),
            "fleet must re-converge after catch-up: {:?}",
            ledger.stale_peers()
        );
    }

    // Back in rotation: the router routes to it without spilling, and the
    // same tracker now accepts its root.
    router.mark_up(&Arc::from(primary.as_str()));
    let route = router.route(Region::Europe, point).expect("fleet is whole");
    assert!(!route.spilled);
    assert_eq!(route.node.to_string(), primary);
    let mut t = EventTransport::connect(servers[&primary].addr()).unwrap();
    let fetched = ritm_client::fetch_and_validate(
        &mut t,
        &[(ca_id, serial)],
        &ca_keys,
        10,
        T0 + 5,
        &mut tracker,
    )
    .expect("recovered shard serves fresh statuses");
    assert!(matches!(fetched.verdict, Verdict::Revoked { .. }));
    drop(t);

    for (_, server) in servers.drain() {
        server.shutdown();
    }
    runtime.shutdown();
}
