//! End-to-end gossip mesh over the wire protocol: two fleet nodes
//! exchange `GossipRoots`/`GossipAck` through real frames (loopback
//! transport), a lagging node is flagged stale under the `RootTracker`
//! rule, an injected equivocation surfaces as a split view, and the
//! fleet health report aggregates all of it.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_agent::{RaConfig, RevocationAgent};
use ritm_cdn::Region;
use ritm_crypto::digest::Digest20;
use ritm_crypto::ed25519::SigningKey;
use ritm_dictionary::{CaDictionary, CaId, SerialNumber, SignedRoot};
use ritm_fleet::{FleetHealthReport, FleetNode, GossipAnomaly, PinnedGossipPeer};
use ritm_proto::{Loopback, RitmRequest, RitmResponse, Service};

const T0: u64 = 1_397_000_000;

fn serials(range: core::ops::Range<u64>) -> Vec<SerialNumber> {
    range.map(SerialNumber::from_u64).collect()
}

#[test]
fn gossip_detects_stale_peer_and_split_view_across_the_wire() {
    let mut rng = StdRng::seed_from_u64(42);
    let key = SigningKey::from_seed([9u8; 32]);
    let mut ca = CaDictionary::new(
        CaId::from_name("MeshCA"),
        key.clone(),
        10,
        128,
        &mut rng,
        T0,
    );
    let genesis = *ca.signed_root();

    let mut node_a = FleetNode::new(
        "ra-a",
        Region::Europe,
        RevocationAgent::new(RaConfig::default()),
    );
    let mut node_b = FleetNode::new(
        "ra-b",
        Region::Japan,
        RevocationAgent::new(RaConfig::default()),
    );
    node_a.follow(ca.ca(), ca.verifying_key(), genesis).unwrap();
    node_b.follow(ca.ca(), ca.verifying_key(), genesis).unwrap();

    // Two issuance batches. Node A applies both; node B is pinned at the
    // first (its sync lane "wedged").
    let first = ca.insert(&serials(1..40), &mut rng, T0 + 1).unwrap();
    let second = ca.insert(&serials(40..70), &mut rng, T0 + 2).unwrap();
    for node in [&mut node_a, &mut node_b] {
        node.ra
            .mirror_mut(&ca.ca())
            .unwrap()
            .apply_issuance(&first, T0 + 1)
            .unwrap();
    }
    node_a
        .ra
        .mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&second, T0 + 2)
        .unwrap();
    node_a.publish_local();
    node_b.publish_local();

    // A gossips with B over real frames: B acks with its (older) root,
    // and A's ledger flags B stale.
    let mut to_b = Loopback::new(node_b.service());
    let anomalies = node_a.gossip_with("ra-b", &mut to_b).unwrap().unwrap();
    assert!(
        matches!(&anomalies[..], [GossipAnomaly::StalePeer { peer, .. }] if peer == "ra-b"),
        "expected exactly one stale-peer flag, got {anomalies:?}"
    );

    // B gossips with A: B pushed its stale root to A's service (recorded
    // inbound) and learned the newer root from A's ack — B's own ledger
    // now knows it is behind the fleet.
    let mut to_a = Loopback::new(node_a.service());
    let anomalies = node_b.gossip_with("ra-a", &mut to_a).unwrap().unwrap();
    assert!(anomalies.is_empty(), "the fresher root advances quietly");
    let b_ledger = node_b.ledger().lock().unwrap();
    assert_eq!(
        b_ledger.newest(&ca.ca()).unwrap().size,
        ca.len() as u64,
        "B's ledger tracks the fleet-newest root"
    );
    assert_eq!(b_ledger.stale_peers(), vec!["ra-b".to_string()]);
    drop(b_ledger);

    // B catches up and re-announces in both directions (A's ledger also
    // remembers the stale inbound push and needs the fresh one): the
    // fleet view converges.
    node_b
        .ra
        .mirror_mut(&ca.ca())
        .unwrap()
        .apply_issuance(&second, T0 + 2)
        .unwrap();
    node_b.publish_local();
    node_a
        .gossip_with("ra-b", &mut Loopback::new(node_b.service()))
        .unwrap();
    node_b
        .gossip_with("ra-a", &mut Loopback::new(node_a.service()))
        .unwrap();
    assert!(node_a.ledger().lock().unwrap().is_converged());

    // Injected split view: a validly-signed root of the same size but a
    // different digest (an equivocating CA or a poisoned mirror path).
    let current = *node_a.ra.mirror(&ca.ca()).unwrap().signed_root();
    let forked = SignedRoot::create(
        &key,
        ca.ca(),
        Digest20::hash(b"forked-view"),
        current.size,
        Digest20::hash(b"forked-anchor"),
        current.timestamp,
    );
    let pinned = PinnedGossipPeer {
        roots: vec![(ca.ca(), forked)],
    };
    let anomalies = node_a
        .gossip_with("ra-evil", &mut Loopback::new(&pinned))
        .unwrap()
        .unwrap();
    assert!(
        matches!(&anomalies[..], [GossipAnomaly::SplitView { size, .. }] if *size == current.size)
    );

    // Serve a hot status twice through A's service so the proof cache
    // registers a hit, then check the fleet aggregates.
    let svc = node_a.service();
    for _ in 0..2 {
        let resp = svc.handle(RitmRequest::GetStatus {
            ca: ca.ca(),
            serial: SerialNumber::from_u64(1),
        });
        assert!(matches!(resp, RitmResponse::Status(_)));
    }

    let report = FleetHealthReport::aggregate([&node_a, &node_b]);
    assert_eq!(report.shards.len(), 2);
    assert_eq!(report.gossip.split_views, 1);
    assert!(report.proof_cache.hits >= 1, "second fetch must hit");
    assert!(
        !report.is_converged(),
        "the injected fork keeps the fleet un-converged"
    );

    // A plain status server (no gossip lane) answers Unsupported — and
    // the gossiping side reports it as a non-gossiping peer, not an
    // outage.
    let plain = ritm_agent::StatusService::new(node_b.ra.status_server());
    let outcome = node_a
        .gossip_with("ra-old", &mut Loopback::new(&plain))
        .unwrap();
    assert!(outcome.is_none());
}
