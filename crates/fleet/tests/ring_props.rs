//! Property tests for the consistent-hash ring: placement must be a pure
//! deterministic function of node names and key bytes (so independent
//! processes route identically with zero coordination), and membership
//! churn must move only the ~K/N keys adjacent to the churned node.

use proptest::prelude::*;
use ritm_dictionary::CaId;
use ritm_fleet::{lane_for_serial, HashRing, ShardKey};

fn node_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("ra-{i}")).collect()
}

fn sample_keys(k: u64) -> Vec<u64> {
    // Shard keys exactly as the fleet derives them: CA ids through the
    // domain-separated key hash.
    (0..k)
        .map(|i| ShardKey::ca(CaId::from_name(&format!("CA-{i}"))).point())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any two construction orders (including interleaved join/leave
    /// churn) yield identical ownership for every key — the cross-process
    /// determinism the router relies on. No clock or RNG can influence
    /// placement, because none is reachable from the ring at all.
    #[test]
    fn placement_is_order_independent(
        n in 2usize..10,
        churn in 0usize..6,
        seed in any::<u64>(),
    ) {
        let names = node_names(n);
        let forward = HashRing::with_nodes(&names);

        // Reverse order, with extra join/leave churn of transient nodes.
        let mut reversed = HashRing::new();
        for (i, name) in names.iter().rev().enumerate() {
            if i < churn {
                reversed.join(&format!("transient-{i}"));
            }
            reversed.join(name);
        }
        for i in 0..churn.min(n) {
            prop_assert!(reversed.leave(&format!("transient-{i}")));
        }

        for key in sample_keys(300).into_iter().chain([seed]) {
            prop_assert_eq!(forward.owner(key), reversed.owner(key));
            prop_assert_eq!(forward.candidates(key, 3), reversed.candidates(key, 3));
        }
    }

    /// A join moves only keys that land on the joiner; a leave moves only
    /// the leaver's keys — and the moved fraction stays near K/N.
    #[test]
    fn churn_moves_about_k_over_n_keys(n in 3usize..9) {
        let keys = sample_keys(1500);
        let mut ring = HashRing::with_nodes(node_names(n));
        let before: Vec<_> = keys.iter().map(|k| ring.owner(*k).unwrap()).collect();

        // Join: every moved key must now belong to the joiner.
        prop_assert!(ring.join("ra-new"));
        let mut moved = 0usize;
        for (k, old) in keys.iter().zip(&before) {
            let new = ring.owner(*k).unwrap();
            if new != *old {
                prop_assert_eq!(&*new, "ra-new");
                moved += 1;
            }
        }
        let expected = keys.len() / (n + 1);
        prop_assert!(moved > 0, "joiner took no keys");
        prop_assert!(
            moved < 3 * expected,
            "join moved {} keys, expected about {}",
            moved,
            expected
        );

        // Leave restores exactly the previous placement: keys the joiner
        // took go back to their old owners, nothing else ever moved.
        prop_assert!(ring.leave("ra-new"));
        for (k, old) in keys.iter().zip(&before) {
            prop_assert_eq!(ring.owner(*k).unwrap(), old.clone());
        }
    }

    /// Lane assignment is a pure function of the serial bytes, in range,
    /// and stable across lane-count-preserving recomputation.
    #[test]
    fn lanes_are_deterministic_and_in_range(serial in 1u64..u64::MAX, lanes in 1u16..64) {
        let s = ritm_dictionary::SerialNumber::from_u64(serial);
        let lane = lane_for_serial(&s, lanes);
        prop_assert!(lane < lanes);
        prop_assert_eq!(lane, lane_for_serial(&s, lanes));
    }
}
