//! One fleet member: a [`RevocationAgent`] bound to a name, a home
//! region, and a gossip ledger, plus the wire service that answers both
//! status and gossip requests for it.

use std::sync::{Arc, Mutex};

use ritm_agent::{RevocationAgent, StatusService, SyncReport};
use ritm_cdn::Region;
use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, MirrorDictionary, MirrorEngine, SignedRoot, UpdateError};
use ritm_proto::{
    ProtoError, RitmRequest, RitmResponse, Service, Transport, TransportError, MAX_GOSSIP_ROOTS,
};

use crate::gossip::{GossipAnomaly, RootLedger};
use crate::health::{ShardHealth, SyncTotals};

/// Peer label inbound gossip is recorded under. The wire format carries
/// no sender identity (roots are self-certifying, so none is needed);
/// precise attribution happens on the *initiating* side, which knows who
/// it dialed.
pub const INBOUND_PEER: &str = "inbound";

/// One RA in the fleet: the agent itself plus its fleet identity and
/// gossip state.
#[derive(Debug)]
pub struct FleetNode {
    name: String,
    region: Region,
    /// The node's revocation agent (public: scenarios sync and mutate it
    /// directly, exactly like a standalone RA).
    pub ra: RevocationAgent,
    ledger: Arc<Mutex<RootLedger>>,
    sync: SyncTotals,
}

impl FleetNode {
    /// Creates a node with its own (empty) gossip ledger.
    pub fn new(name: &str, region: Region, ra: RevocationAgent) -> Self {
        FleetNode {
            name: name.to_string(),
            region,
            ra,
            ledger: Arc::new(Mutex::new(RootLedger::new())),
            sync: SyncTotals::default(),
        }
    }

    /// The node's fleet name (its ring identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's home region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The node's gossip ledger (shared with its [`FleetService`]).
    pub fn ledger(&self) -> &Arc<Mutex<RootLedger>> {
        &self.ledger
    }

    /// Starts mirroring a CA from its genesis root, pinning `key` for
    /// gossip verification.
    ///
    /// # Errors
    ///
    /// Propagates the mirror bootstrap failure.
    pub fn follow(
        &mut self,
        ca: CaId,
        key: VerifyingKey,
        genesis: SignedRoot,
    ) -> Result<(), UpdateError> {
        self.ra.follow_ca(ca, key, genesis)?;
        self.ledger()
            .lock()
            .expect("ledger lock")
            .register_ca(ca, key);
        Ok(())
    }

    /// Installs an already-built mirror (fleet bootstrap clones one
    /// mirror per CA instead of re-applying the issuance N times) and
    /// pins its key.
    pub fn adopt(&mut self, ca: CaId, key: VerifyingKey, mirror: MirrorDictionary) {
        self.ra.install_mirror(ca, mirror);
        self.ledger
            .lock()
            .expect("ledger lock")
            .register_ca(ca, key);
    }

    /// The signed roots this node currently *serves*, one per mirrored CA
    /// (sorted by CA id for deterministic wire order).
    pub fn local_roots(&self) -> Vec<(CaId, SignedRoot)> {
        let mut cas: Vec<CaId> = self.ra.followed_cas().copied().collect();
        cas.sort_by_key(|ca| ca.0);
        cas.into_iter()
            .filter_map(|ca| self.ra.mirror(&ca).map(|m| (ca, *m.current_signed_root())))
            .collect()
    }

    /// Folds this node's own served roots into its ledger — the baseline
    /// its gossip partners are compared against.
    pub fn publish_local(&self) {
        let roots = self.local_roots();
        self.ledger
            .lock()
            .expect("ledger lock")
            .observe(&self.name, &roots);
    }

    /// One outbound gossip exchange with `peer` over `transport`: pushes
    /// this node's served roots, folds the peer's
    /// [`GossipAck`](RitmResponse::GossipAck) into the ledger under the
    /// peer's name. Returns `Ok(None)` when the peer answered with a
    /// protocol error (a pre-gossip server, not an outage).
    ///
    /// # Errors
    ///
    /// Transport failures (the peer is down or the connection broke).
    pub fn gossip_with<T: Transport>(
        &self,
        peer: &str,
        transport: &mut T,
    ) -> Result<Option<Vec<GossipAnomaly>>, TransportError> {
        let local = self.local_roots();
        let mut anomalies = Vec::new();
        // An empty mirror set still gossips once (pure pull).
        let chunks: Vec<&[(CaId, SignedRoot)]> = if local.is_empty() {
            vec![&[]]
        } else {
            local.chunks(MAX_GOSSIP_ROOTS).collect()
        };
        for chunk in chunks {
            let req = RitmRequest::GossipRoots {
                roots: chunk.to_vec(),
            };
            let rt = transport.round_trip(&req)?;
            match rt.response {
                RitmResponse::GossipAck { roots } => {
                    let mut ledger = self.ledger.lock().expect("ledger lock");
                    anomalies.extend(ledger.observe(peer, &roots));
                }
                RitmResponse::Error(_) => return Ok(None),
                _ => {
                    return Err(TransportError::NoResponse);
                }
            }
        }
        Ok(Some(anomalies))
    }

    /// Accumulates a sync report into the node's fleet-health totals.
    pub fn record_sync(&mut self, report: &SyncReport) {
        self.sync.syncs += 1;
        self.sync.retries += report.retries;
        self.sync.gave_up += report.gave_up;
        self.sync.transport_failures += report.transport_failures;
        self.sync.bytes_downloaded += report.bytes_downloaded;
    }

    /// Sync totals so far.
    pub fn sync_totals(&self) -> SyncTotals {
        self.sync
    }

    /// This shard's slice of the fleet health report.
    pub fn health(&self) -> ShardHealth {
        ShardHealth {
            node: self.name.clone(),
            region: self.region,
            ra: self.ra.health_report(),
            sync: self.sync,
        }
    }

    /// The wire service for this node: status kinds answered from the
    /// RA's lock-free snapshots, gossip answered from the ledger. The
    /// service captures the node's *current* CA set; rebuild it after
    /// following new CAs.
    pub fn service(&self) -> Arc<FleetService> {
        let mut cas: Vec<CaId> = self.ra.followed_cas().copied().collect();
        cas.sort_by_key(|ca| ca.0);
        Arc::new(FleetService {
            status: StatusService::new(self.ra.status_server()),
            ledger: Arc::clone(&self.ledger),
            cas,
        })
    }
}

/// The fleet node's wire service: a [`StatusService`] plus the gossip
/// exchange. Cheap to clone behind an `Arc` into an event server.
#[derive(Debug)]
pub struct FleetService {
    status: StatusService,
    ledger: Arc<Mutex<RootLedger>>,
    cas: Vec<CaId>,
}

impl FleetService {
    /// The signed roots currently served, read from the lock-free
    /// publication cells (so the answer is correct even while the owning
    /// RA is mid-sync on another thread).
    fn served_roots(&self) -> Vec<(CaId, SignedRoot)> {
        self.cas
            .iter()
            .filter_map(|ca| {
                self.status
                    .server()
                    .snapshot(ca)
                    .map(|snap| (*ca, *snap.signed_root()))
            })
            .take(MAX_GOSSIP_ROOTS)
            .collect()
    }
}

impl Service for FleetService {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        match req {
            RitmRequest::GossipRoots { roots } => {
                self.ledger
                    .lock()
                    .expect("ledger lock")
                    .observe(INBOUND_PEER, &roots);
                RitmResponse::GossipAck {
                    roots: self.served_roots(),
                }
            }
            other => self.status.handle(other),
        }
    }
}

/// A gossip-only peer endpoint for tests and harnesses: acks with a fixed
/// root vector, never updates. Useful for injecting split views and
/// pinned-stale peers.
#[derive(Debug)]
pub struct PinnedGossipPeer {
    /// The roots this peer stubbornly serves.
    pub roots: Vec<(CaId, SignedRoot)>,
}

impl Service for PinnedGossipPeer {
    fn handle(&self, req: RitmRequest) -> RitmResponse {
        match req {
            RitmRequest::GossipRoots { .. } => RitmResponse::GossipAck {
                roots: self.roots.clone(),
            },
            _ => RitmResponse::Error(ProtoError::Unsupported),
        }
    }
}
