//! Signed-root gossip state: each fleet node's view of the newest root
//! per CA anywhere in the fleet, plus the anomalies that view exposes.
//!
//! The freshness order is exactly the client-side
//! `RootTracker` rule (`ritm_client::validator`): root `A` is
//! older than `B` iff `A.size < B.size`, or the sizes tie and
//! `A.timestamp < B.timestamp`. A peer whose gossiped root is older than
//! one the ledger has already accepted is flagged as a **stale peer**;
//! two validly-signed roots of the *same size but different digest* are a
//! **split view** (the CA — or a compromised mirror path — showed
//! different dictionaries to different parts of the fleet). Every root is
//! signature-verified against the pinned CA key before it can influence
//! the view, so a gossiping peer can never poison the fleet-newest state
//! with bytes the CA did not sign.

use std::collections::HashMap;

use ritm_crypto::ed25519::VerifyingKey;
use ritm_dictionary::{CaId, SignedRoot};

/// `(size, timestamp)` freshness comparison: `true` iff `a` is strictly
/// older than `b` under the `RootTracker` rule.
fn older_than(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// One observation the gossip layer wants a human (or a health check) to
/// see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipAnomaly {
    /// A peer gossiped a root older than one the ledger already accepted:
    /// the peer is serving stale statuses (its sync lane is behind or
    /// wedged).
    StalePeer {
        /// Peer label the roots arrived under.
        peer: String,
        /// The CA whose root lagged.
        ca: CaId,
        /// `(size, timestamp)` the peer served.
        seen: (u64, u64),
        /// `(size, timestamp)` of the fleet-newest root.
        newest: (u64, u64),
    },
    /// Two validly-signed roots of the same size but different digests:
    /// the fleet holds irreconcilable views of one dictionary.
    SplitView {
        /// Peer label that revealed the second view.
        peer: String,
        /// The equivocating CA.
        ca: CaId,
        /// Dictionary size both conflicting roots commit to.
        size: u64,
    },
    /// A gossiped root failed signature verification against the pinned
    /// CA key (noise on the wire, or an active forgery attempt).
    BadSignature {
        /// Peer label the root arrived under.
        peer: String,
        /// CA id the root claimed.
        ca: CaId,
    },
    /// A root for a CA this node has no pinned key for — counted but
    /// never trusted.
    UnknownCa {
        /// Peer label the root arrived under.
        peer: String,
        /// The unknown CA id.
        ca: CaId,
    },
}

/// Monotonic gossip counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GossipStats {
    /// `observe` calls (one per gossip direction).
    pub exchanges: u64,
    /// Individual `(ca, root)` entries examined.
    pub roots_observed: u64,
    /// Entries that advanced the fleet-newest view.
    pub advanced: u64,
    /// Stale-peer flags raised.
    pub stale_peers: u64,
    /// Split-view flags raised.
    pub split_views: u64,
    /// Signature failures.
    pub bad_signatures: u64,
}

/// One node's ledger of gossiped signed roots.
#[derive(Debug, Default)]
pub struct RootLedger {
    keys: HashMap<CaId, VerifyingKey>,
    newest: HashMap<CaId, SignedRoot>,
    /// Per peer label, the freshest `(size, timestamp)` it has gossiped
    /// per CA.
    peer_views: HashMap<String, HashMap<CaId, (u64, u64)>>,
    anomalies: Vec<GossipAnomaly>,
    stats: GossipStats,
}

impl RootLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins a CA's verification key. Roots for unregistered CAs are
    /// flagged, never folded into the view.
    pub fn register_ca(&mut self, ca: CaId, key: VerifyingKey) {
        self.keys.insert(ca, key);
    }

    /// Folds one gossiped root vector (from `peer`) into the ledger,
    /// returning the anomalies this particular vector raised (they are
    /// also retained for [`RootLedger::anomalies`]).
    pub fn observe(&mut self, peer: &str, roots: &[(CaId, SignedRoot)]) -> Vec<GossipAnomaly> {
        self.stats.exchanges += 1;
        let mut found = Vec::new();
        for (ca, root) in roots {
            self.stats.roots_observed += 1;
            let Some(key) = self.keys.get(ca) else {
                found.push(GossipAnomaly::UnknownCa {
                    peer: peer.to_string(),
                    ca: *ca,
                });
                continue;
            };
            if root.ca != *ca || root.verify(key).is_err() {
                self.stats.bad_signatures += 1;
                found.push(GossipAnomaly::BadSignature {
                    peer: peer.to_string(),
                    ca: *ca,
                });
                continue;
            }
            let seen = (root.size, root.timestamp);
            match self.newest.get(ca) {
                Some(newest) if root.size == newest.size && root.root != newest.root => {
                    self.stats.split_views += 1;
                    found.push(GossipAnomaly::SplitView {
                        peer: peer.to_string(),
                        ca: *ca,
                        size: root.size,
                    });
                }
                Some(newest) if older_than(seen, (newest.size, newest.timestamp)) => {
                    self.stats.stale_peers += 1;
                    found.push(GossipAnomaly::StalePeer {
                        peer: peer.to_string(),
                        ca: *ca,
                        seen,
                        newest: (newest.size, newest.timestamp),
                    });
                }
                Some(newest) if seen == (newest.size, newest.timestamp) => {}
                _ => {
                    self.newest.insert(*ca, *root);
                    self.stats.advanced += 1;
                }
            }
            let view = self.peer_views.entry(peer.to_string()).or_default();
            match view.get(ca) {
                Some(prev) if !older_than(*prev, seen) => {}
                _ => {
                    view.insert(*ca, seen);
                }
            }
        }
        self.anomalies.extend(found.iter().cloned());
        found
    }

    /// The fleet-newest root for a CA, if any valid root has gossiped.
    pub fn newest(&self, ca: &CaId) -> Option<&SignedRoot> {
        self.newest.get(ca)
    }

    /// All fleet-newest roots (what a node compares its own serving state
    /// against).
    pub fn newest_roots(&self) -> impl Iterator<Item = (&CaId, &SignedRoot)> {
        self.newest.iter()
    }

    /// The freshest `(size, timestamp)` a peer has gossiped for a CA.
    pub fn peer_view(&self, peer: &str, ca: &CaId) -> Option<(u64, u64)> {
        self.peer_views.get(peer)?.get(ca).copied()
    }

    /// Every anomaly observed so far, in arrival order.
    pub fn anomalies(&self) -> &[GossipAnomaly] {
        &self.anomalies
    }

    /// Distinct peer labels currently flagged stale: their latest gossiped
    /// view lags the fleet-newest root for at least one CA.
    pub fn stale_peers(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .peer_views
            .iter()
            .filter(|(_, view)| {
                view.iter().any(|(ca, seen)| {
                    self.newest
                        .get(ca)
                        .is_some_and(|n| older_than(*seen, (n.size, n.timestamp)))
                })
            })
            .map(|(peer, _)| peer.clone())
            .collect();
        out.sort();
        out
    }

    /// Whether every peer's latest view matches the fleet-newest root for
    /// every CA it has gossiped — the converged steady state.
    pub fn is_converged(&self) -> bool {
        self.stats.split_views == 0 && self.stale_peers().is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> GossipStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_crypto::digest::Digest20;
    use ritm_crypto::ed25519::SigningKey;

    fn root(key: &SigningKey, ca: CaId, tag: u8, size: u64, ts: u64) -> SignedRoot {
        SignedRoot::create(
            key,
            ca,
            Digest20::hash([tag, size as u8]),
            size,
            Digest20::hash([0xAA]),
            ts,
        )
    }

    #[test]
    fn stale_peer_is_flagged_by_the_root_tracker_rule() {
        let key = SigningKey::from_seed([3u8; 32]);
        let ca = CaId::from_name("LedgerCA");
        let mut ledger = RootLedger::new();
        ledger.register_ca(ca, key.verifying_key());

        assert!(ledger
            .observe("ra-0", &[(ca, root(&key, ca, 1, 10, 100))])
            .is_empty());
        assert_eq!(ledger.newest(&ca).unwrap().size, 10);

        // Same size, newer timestamp, same digest: advances quietly.
        assert!(ledger
            .observe("ra-1", &[(ca, root(&key, ca, 1, 10, 150))])
            .is_empty());
        assert_eq!(ledger.newest(&ca).unwrap().timestamp, 150);

        // ra-0's last gossiped view (10, 100) now lags the fleet-newest
        // (10, 150): staleness is retroactive, exactly like a client
        // rejecting a replayed older-epoch root.
        assert_eq!(ledger.stale_peers(), vec!["ra-0".to_string()]);

        // An older root (smaller size) flags the peer immediately.
        let flagged = ledger.observe("ra-2", &[(ca, root(&key, ca, 2, 7, 160))]);
        assert!(matches!(
            flagged.as_slice(),
            [GossipAnomaly::StalePeer { peer, seen: (7, 160), newest: (10, 150), .. }]
                if peer == "ra-2"
        ));
        assert_eq!(
            ledger.stale_peers(),
            vec!["ra-0".to_string(), "ra-2".to_string()]
        );
        assert!(!ledger.is_converged());

        // Both peers catch up; the fleet converges again.
        ledger.observe("ra-0", &[(ca, root(&key, ca, 1, 10, 150))]);
        ledger.observe("ra-2", &[(ca, root(&key, ca, 1, 10, 150))]);
        assert!(ledger.stale_peers().is_empty());
        assert!(ledger.is_converged());
    }

    #[test]
    fn split_view_same_size_different_digest() {
        let key = SigningKey::from_seed([4u8; 32]);
        let ca = CaId::from_name("ForkCA");
        let mut ledger = RootLedger::new();
        ledger.register_ca(ca, key.verifying_key());

        ledger.observe("ra-0", &[(ca, root(&key, ca, 1, 5, 100))]);
        let flagged = ledger.observe("ra-1", &[(ca, root(&key, ca, 2, 5, 100))]);
        assert!(matches!(
            flagged.as_slice(),
            [GossipAnomaly::SplitView { ca: c, size: 5, .. }] if *c == ca
        ));
        assert_eq!(ledger.stats().split_views, 1);
        assert!(!ledger.is_converged());
    }

    #[test]
    fn forged_and_unknown_roots_never_touch_the_view() {
        let key = SigningKey::from_seed([5u8; 32]);
        let other = SigningKey::from_seed([6u8; 32]);
        let ca = CaId::from_name("PinnedCA");
        let stranger = CaId::from_name("StrangerCA");
        let mut ledger = RootLedger::new();
        ledger.register_ca(ca, key.verifying_key());

        // Signed by the wrong key: rejected.
        let forged = ledger.observe("ra-9", &[(ca, root(&other, ca, 1, 99, 1))]);
        assert!(matches!(
            forged.as_slice(),
            [GossipAnomaly::BadSignature { .. }]
        ));
        assert!(ledger.newest(&ca).is_none());

        // Unregistered CA: counted, never trusted.
        let unknown = ledger.observe("ra-9", &[(stranger, root(&other, stranger, 1, 1, 1))]);
        assert!(matches!(
            unknown.as_slice(),
            [GossipAnomaly::UnknownCa { .. }]
        ));
        assert!(ledger.newest(&stranger).is_none());
        assert_eq!(ledger.stats().bad_signatures, 1);
    }
}
