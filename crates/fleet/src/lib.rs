//! # ritm-fleet — the horizontal RA dimension
//!
//! One revocation agent is fast (incremental Merkle engine, RCU snapshot
//! serving), crash-safe (persisted mirrors), and inline-capable (the
//! intercept lane). This crate composes many of them into the serving
//! system the paper actually deploys (§VIII): a **fleet** of RAs sharing
//! the mirror set by consistent hashing, gossiping signed roots so no
//! node can silently lag or fork, and routed from client regions with
//! replica spillover.
//!
//! The pieces, bottom-up:
//!
//! - [`ring`] — deterministic consistent-hash placement:
//!   [`HashRing`] projects virtual node points onto a `u64` ring;
//!   [`ShardKey`] places a CA (or one serial-range *lane* of a giant CA,
//!   see [`lanes_for`]) on it. Join/leave moves only the adjacent ~`K/N`
//!   keys. No clock or RNG anywhere: two processes always agree.
//! - [`gossip`] — [`RootLedger`] tracks the fleet-newest
//!   [`SignedRoot`](ritm_dictionary::SignedRoot) per CA under the client
//!   `RootTracker` order and flags [`GossipAnomaly::StalePeer`] /
//!   [`GossipAnomaly::SplitView`] when a peer serves behind or forks.
//! - [`node`] — [`FleetNode`] binds an agent to a fleet name, home
//!   region, and ledger; [`FleetService`] answers both status and the new
//!   `GossipRoots`/`GossipAck` wire kinds, so one socket serves clients
//!   and peers alike.
//! - [`health`] — [`FleetHealthReport`] aggregates per-shard proof-cache
//!   hit/miss and sync retry/give-up counters with the gossip verdict.
//!
//! Routing lives on the CDN side ([`ritm_cdn::FleetRouter`], with
//! [`HashRing`] implementing [`ritm_cdn::ShardTopology`]); the closed-loop
//! million-client scenario lives in `ritm_core::world::FleetWorld`.

pub mod gossip;
pub mod health;
pub mod node;
pub mod ring;

pub use gossip::{GossipAnomaly, GossipStats, RootLedger};
pub use health::{FleetHealthReport, ShardHealth, SyncTotals};
pub use node::{FleetNode, FleetService, PinnedGossipPeer, INBOUND_PEER};
pub use ring::{lane_for_serial, lanes_for, HashRing, ShardKey, MAX_LANES, VNODES_PER_NODE};
