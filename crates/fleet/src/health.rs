//! Fleet-level health: per-shard cache and sync aggregates plus the
//! gossip anomalies the ledgers have raised — the horizontal analogue of
//! [`ritm_agent::RaHealthReport`].

use std::collections::BTreeSet;

use ritm_agent::{CacheStats, RaHealthReport};
use ritm_cdn::Region;

use crate::gossip::GossipStats;
use crate::node::FleetNode;

/// Accumulated CDN-sync counters for one node (summed over every sync it
/// ran).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncTotals {
    /// Sync rounds recorded.
    pub syncs: u64,
    /// Flights retried after transient failures.
    pub retries: u64,
    /// Flights abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Individual transport failures observed.
    pub transport_failures: u64,
    /// Dissemination bytes pulled down.
    pub bytes_downloaded: u64,
}

impl SyncTotals {
    fn absorb(&mut self, other: &SyncTotals) {
        self.syncs += other.syncs;
        self.retries += other.retries;
        self.gave_up += other.gave_up;
        self.transport_failures += other.transport_failures;
        self.bytes_downloaded += other.bytes_downloaded;
    }
}

/// One shard's slice of the fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Fleet node name.
    pub node: String,
    /// Home region.
    pub region: Region,
    /// The per-agent report (mirrored CAs, proof/multiproof cache
    /// counters, packet stats).
    pub ra: RaHealthReport,
    /// Accumulated sync counters.
    pub sync: SyncTotals,
}

/// The fleet-wide health report: every shard's caches and sync counters,
/// their fleet aggregates, and the gossip layer's verdict on view
/// consistency.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealthReport {
    /// Per-shard slices, in fleet-name order.
    pub shards: Vec<ShardHealth>,
    /// Fleet-total proof-cache counters (single-serial audit paths).
    pub proof_cache: CacheStats,
    /// Fleet-total multiproof-memo counters.
    pub multi_cache: CacheStats,
    /// Fleet-total sync counters.
    pub sync: SyncTotals,
    /// Gossip counters summed over every node's ledger.
    pub gossip: GossipStats,
    /// Distinct peer labels some ledger currently flags as serving a root
    /// older than the fleet-newest one (the client `RootTracker` rule).
    pub stale_peers: Vec<String>,
}

fn add_cache(into: &mut CacheStats, from: &CacheStats) {
    into.hits += from.hits;
    into.misses += from.misses;
    into.evictions += from.evictions;
}

impl FleetHealthReport {
    /// Builds the report by aggregating every node's agent report, sync
    /// totals, and gossip ledger.
    pub fn aggregate<'a, I>(nodes: I) -> Self
    where
        I: IntoIterator<Item = &'a FleetNode>,
    {
        let mut shards = Vec::new();
        let mut proof_cache = CacheStats::default();
        let mut multi_cache = CacheStats::default();
        let mut sync = SyncTotals::default();
        let mut gossip = GossipStats::default();
        let mut stale = BTreeSet::new();
        for node in nodes {
            let shard = node.health();
            add_cache(&mut proof_cache, &shard.ra.proof_cache);
            add_cache(&mut multi_cache, &shard.ra.multi_cache);
            sync.absorb(&shard.sync);
            let ledger = node.ledger().lock().expect("ledger lock");
            let s = ledger.stats();
            gossip.exchanges += s.exchanges;
            gossip.roots_observed += s.roots_observed;
            gossip.advanced += s.advanced;
            gossip.stale_peers += s.stale_peers;
            gossip.split_views += s.split_views;
            gossip.bad_signatures += s.bad_signatures;
            stale.extend(ledger.stale_peers());
            drop(ledger);
            shards.push(shard);
        }
        shards.sort_by(|a, b| a.node.cmp(&b.node));
        FleetHealthReport {
            shards,
            proof_cache,
            multi_cache,
            sync,
            gossip,
            stale_peers: stale.into_iter().collect(),
        }
    }

    /// Fleet-wide proof-cache hit fraction in `[0, 1]`.
    pub fn proof_cache_hit_rate(&self) -> f64 {
        self.proof_cache.hit_rate()
    }

    /// Whether every ledger sees a single, fully-propagated view: no
    /// split views and no peer lagging the fleet-newest root.
    pub fn is_converged(&self) -> bool {
        self.gossip.split_views == 0 && self.stale_peers.is_empty()
    }
}
