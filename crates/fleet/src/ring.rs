//! Consistent-hash placement of the mirror set across a fleet of RAs.
//!
//! Each fleet node projects a fixed number of virtual points onto a
//! `u64` ring; a shard key (a CA, or one serial-range *lane* of a giant
//! CA) is owned by the node whose virtual point is the key's clockwise
//! successor. Joining or leaving a node therefore moves only the keys in
//! the arcs adjacent to that node's points — about `K/N` of `K` keys on
//! an `N`-node fleet — while every other placement is untouched.
//!
//! Placement is a pure function of node names and key bytes: every hash
//! is a domain-separated [`Digest20`] and nothing consults a clock or an
//! RNG, so two processes (or two restarts) always compute identical
//! routes. This determinism is what lets the CDN-side
//! [`FleetRouter`](ritm_cdn::FleetRouter) and the fleet itself agree on
//! ownership without any coordination protocol.

use std::sync::Arc;

use ritm_cdn::ShardTopology;
use ritm_crypto::digest::Digest20;
use ritm_dictionary::{CaId, SerialNumber};

/// Virtual points each node projects onto the ring. 64 keeps the
/// per-node load imbalance in the few-percent range while a 12-node
/// fleet still sorts under a thousand points.
pub const VNODES_PER_NODE: u32 = 64;

/// Hard cap on the serial-range lanes a single CA may be split into.
pub const MAX_LANES: u16 = 256;

fn point_of(domain: &[u8], payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(domain.len() + payload.len());
    buf.extend_from_slice(domain);
    buf.extend_from_slice(payload);
    let digest = Digest20::hash(buf);
    u64::from_be_bytes(digest.as_bytes()[..8].try_into().expect("8 bytes"))
}

/// How many serial-range lanes a CA of `revocations` entries is split
/// into: one lane per `lane_threshold` revocations, capped at
/// [`MAX_LANES`]. Small CAs stay whole (`1`); a giant CA (the ISC tail's
/// 339k-entry CRL, say) spreads its *serving* load across several owners.
/// Every owner still mirrors the full CA dictionary — lanes shard
/// requests, not storage, because proofs need the whole tree.
pub fn lanes_for(revocations: u64, lane_threshold: u64) -> u16 {
    if lane_threshold == 0 {
        return 1;
    }
    revocations
        .div_ceil(lane_threshold)
        .clamp(1, u64::from(MAX_LANES)) as u16
}

/// The lane a serial falls into, for a CA split into `lanes` lanes.
/// Pure function of the serial bytes (domain-separated hash, no RNG).
pub fn lane_for_serial(serial: &SerialNumber, lanes: u16) -> u16 {
    if lanes <= 1 {
        return 0;
    }
    let h = point_of(b"ritm-fleet/lane\x00", serial.as_bytes());
    (h % u64::from(lanes)) as u16
}

/// One placement unit: a CA, or one serial-range lane of a CA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// The CA whose dictionary (or lane thereof) is placed.
    pub ca: CaId,
    /// Lane index, `0` for CAs small enough to stay whole.
    pub lane: u16,
}

impl ShardKey {
    /// A whole-CA key (lane 0).
    pub fn ca(ca: CaId) -> Self {
        ShardKey { ca, lane: 0 }
    }

    /// The key for `serial` under a CA split into `lanes` lanes.
    pub fn for_serial(ca: CaId, serial: &SerialNumber, lanes: u16) -> Self {
        ShardKey {
            ca,
            lane: lane_for_serial(serial, lanes),
        }
    }

    /// The key's position on the ring.
    pub fn point(&self) -> u64 {
        let mut payload = [0u8; 10];
        payload[..8].copy_from_slice(&self.ca.0);
        payload[8..].copy_from_slice(&self.lane.to_be_bytes());
        point_of(b"ritm-fleet/key\x00", &payload)
    }
}

/// The fleet's consistent-hash ring: node names against their virtual
/// points, placement by clockwise successor.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(point, node)` sorted by point (ties broken by name, so iteration
    /// order is deterministic even in the astronomically-unlikely
    /// collision case).
    points: Vec<(u64, Arc<str>)>,
    nodes: Vec<Arc<str>>,
}

impl HashRing {
    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// A ring pre-populated with `names`.
    pub fn with_nodes<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ring = Self::new();
        for n in names {
            ring.join(n.as_ref());
        }
        ring
    }

    /// Adds a node, projecting its [`VNODES_PER_NODE`] virtual points.
    /// Returns `false` (and changes nothing) if the name is already
    /// present.
    pub fn join(&mut self, name: &str) -> bool {
        if self.nodes.iter().any(|n| &**n == name) {
            return false;
        }
        let node: Arc<str> = Arc::from(name);
        for replica in 0..VNODES_PER_NODE {
            let mut payload = Vec::with_capacity(name.len() + 4);
            payload.extend_from_slice(name.as_bytes());
            payload.extend_from_slice(&replica.to_be_bytes());
            let p = point_of(b"ritm-fleet/node\x00", &payload);
            self.points.push((p, Arc::clone(&node)));
        }
        self.points
            .sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.nodes.push(node);
        self.nodes.sort();
        true
    }

    /// Removes a node and its virtual points. Returns `false` if absent.
    pub fn leave(&mut self, name: &str) -> bool {
        let before = self.nodes.len();
        self.nodes.retain(|n| &**n != name);
        if self.nodes.len() == before {
            return false;
        }
        self.points.retain(|(_, n)| &**n != name);
        true
    }

    /// Node names currently on the ring, sorted.
    pub fn nodes(&self) -> &[Arc<str>] {
        &self.nodes
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The owner of a placement point: the node at the point's clockwise
    /// successor. `None` on an empty ring.
    pub fn owner(&self, point: u64) -> Option<Arc<str>> {
        self.candidate_iter(point).next()
    }

    /// Up to `n` distinct nodes for `point`, preference-ordered (the
    /// owner, then successor replicas — the natural standby set, since a
    /// leaving owner's keys land exactly on its successor).
    pub fn candidates(&self, point: u64, n: usize) -> Vec<Arc<str>> {
        self.candidate_iter(point).take(n).collect()
    }

    fn candidate_iter(&self, point: u64) -> impl Iterator<Item = Arc<str>> + '_ {
        // First ring point strictly after `point`, wrapping at the top.
        let start = self.points.partition_point(|(p, _)| *p <= point);
        let mut seen: Vec<Arc<str>> = Vec::new();
        let total = self.points.len();
        self.points
            .iter()
            .cycle()
            .skip(start)
            .take(total)
            .filter_map(move |(_, node)| {
                if seen.iter().any(|s| Arc::ptr_eq(s, node) || s == node) {
                    None
                } else {
                    seen.push(Arc::clone(node));
                    Some(Arc::clone(node))
                }
            })
    }
}

impl ShardTopology for HashRing {
    type Node = Arc<str>;

    fn candidates(&self, point: u64, n: usize) -> Vec<Arc<str>> {
        HashRing::candidates(self, point, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| point_of(b"test/key", &i.to_be_bytes()))
            .collect()
    }

    #[test]
    fn owner_is_deterministic_and_independent_of_join_order() {
        let a = HashRing::with_nodes(["ra-0", "ra-1", "ra-2"]);
        let b = HashRing::with_nodes(["ra-2", "ra-0", "ra-1"]);
        for k in keys(500) {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    #[test]
    fn join_moves_only_keys_to_the_joiner() {
        let mut ring = HashRing::with_nodes(["ra-0", "ra-1", "ra-2", "ra-3"]);
        let ks = keys(2000);
        let before: Vec<_> = ks.iter().map(|k| ring.owner(*k).unwrap()).collect();
        ring.join("ra-4");
        let mut moved = 0;
        for (k, old) in ks.iter().zip(&before) {
            let new = ring.owner(*k).unwrap();
            if new != *old {
                assert_eq!(&*new, "ra-4", "a moved key must land on the joiner");
                moved += 1;
            }
        }
        // Expectation is K/N = 400; allow generous slack for hash variance.
        assert!(moved > 0, "the joiner must take some keys");
        assert!(moved < 2 * 2000 / 5, "moved {moved} of 2000, expected ~400");
    }

    #[test]
    fn leave_moves_only_the_leavers_keys() {
        let mut ring = HashRing::with_nodes(["ra-0", "ra-1", "ra-2", "ra-3"]);
        let ks = keys(2000);
        let before: Vec<_> = ks.iter().map(|k| ring.owner(*k).unwrap()).collect();
        assert!(ring.leave("ra-1"));
        for (k, old) in ks.iter().zip(&before) {
            let new = ring.owner(*k).unwrap();
            if &**old != "ra-1" {
                assert_eq!(new, *old, "keys of surviving nodes must not move");
            } else {
                assert_ne!(&*new, "ra-1");
            }
        }
        assert!(!ring.leave("ra-1"), "double leave is a no-op");
    }

    #[test]
    fn replicas_are_distinct_and_owner_first() {
        let ring = HashRing::with_nodes(["ra-0", "ra-1", "ra-2"]);
        let key = ShardKey::ca(CaId::from_name("SomeCA")).point();
        let cands = ring.candidates(key, 3);
        assert_eq!(cands.len(), 3);
        assert_eq!(cands[0], ring.owner(key).unwrap());
        assert_ne!(cands[0], cands[1]);
        assert_ne!(cands[1], cands[2]);
        assert_ne!(cands[0], cands[2]);
        // Asking for more replicas than nodes returns every node once.
        assert_eq!(ring.candidates(key, 10).len(), 3);
    }

    #[test]
    fn lanes_split_only_giant_cas() {
        assert_eq!(lanes_for(0, 50_000), 1);
        assert_eq!(lanes_for(49_999, 50_000), 1);
        assert_eq!(lanes_for(50_001, 50_000), 2);
        assert_eq!(lanes_for(339_557, 50_000), 7);
        assert_eq!(lanes_for(u64::MAX, 1), MAX_LANES);
        assert_eq!(lanes_for(123, 0), 1, "zero threshold disables lanes");

        let ca = CaId::from_name("GiantCA");
        let serial = SerialNumber::from_u64(77);
        assert_eq!(ShardKey::for_serial(ca, &serial, 1).lane, 0);
        let lane = lane_for_serial(&serial, 7);
        assert!(lane < 7);
        assert_eq!(ShardKey::for_serial(ca, &serial, 7).lane, lane);
    }
}
