//! Property-based tests for the cryptographic substrate: algebraic laws of
//! the field/scalar/point arithmetic, signature soundness, hash-chain
//! consistency, and codec round-trips.

use proptest::prelude::*;
use ritm_crypto::digest::{h_iter, Digest20};
use ritm_crypto::ed25519::point::Point;
use ritm_crypto::ed25519::scalar::Scalar;
use ritm_crypto::ed25519::SigningKey;
use ritm_crypto::hashchain::{verify_statement, HashChain};
use ritm_crypto::{hex, wire};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hex_round_trips(bytes in prop::collection::vec(any::<u8>(), 0..100)) {
        let s = hex::encode(&bytes);
        prop_assert_eq!(hex::decode(&s).unwrap(), bytes);
    }

    #[test]
    fn digest_is_deterministic_and_sensitive(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(Digest20::hash(&a), Digest20::hash(&a));
        if a != b {
            prop_assert_ne!(Digest20::hash(&a), Digest20::hash(&b));
        }
    }

    #[test]
    fn sign_verify_round_trip(seed in any::<[u8; 32]>(), msg in prop::collection::vec(any::<u8>(), 0..200)) {
        let sk = SigningKey::from_seed(seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn signature_does_not_transfer(
        seed in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 1..100),
        flip in any::<(u8, u8)>(),
    ) {
        let sk = SigningKey::from_seed(seed);
        let sig = sk.sign(&msg);
        let mut other = msg.clone();
        let pos = flip.0 as usize % other.len();
        if other[pos] == flip.1 {
            return Ok(());
        }
        other[pos] = flip.1;
        prop_assert!(sk.verifying_key().verify(&other, &sig).is_err());
    }

    #[test]
    fn scalar_ring_laws(a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), c in any::<[u8; 32]>()) {
        let a = Scalar::from_bytes_mod_order(&a);
        let b = Scalar::from_bytes_mod_order(&b);
        let c = Scalar::from_bytes_mod_order(&c);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.add(&Scalar::ZERO), a);
        prop_assert_eq!(a.mul(&Scalar::ONE), a);
    }

    #[test]
    fn point_group_laws(a in any::<u64>(), b in any::<u64>()) {
        let pa = Point::mul_base(&Scalar::from_u64(a));
        let pb = Point::mul_base(&Scalar::from_u64(b));
        // Commutativity and the homomorphism [a]B + [b]B = [a+b]B.
        prop_assert_eq!(pa.add(&pb), pb.add(&pa));
        let sum = Scalar::from_u64(a).add(&Scalar::from_u64(b));
        prop_assert_eq!(pa.add(&pb), Point::mul_base(&sum));
        // Compression round-trips.
        prop_assert_eq!(Point::decompress(&pa.compress()).unwrap(), pa);
    }

    #[test]
    fn hash_chain_statements_verify_exactly_in_window(
        seed in any::<[u8; 20]>(),
        len in 2u64..40,
        period_seed in any::<u64>(),
        expected_seed in any::<u64>(),
    ) {
        let chain = HashChain::from_seed(seed, len);
        let period = period_seed % len;
        let expected = expected_seed % len;
        let stmt = chain.statement(period).unwrap();
        let verdict = verify_statement(chain.anchor(), stmt, expected, 1);
        let in_window = period + 1 >= expected && period <= expected + 1;
        prop_assert_eq!(verdict.is_some(), in_window,
            "period {} vs expected {}", period, expected);
    }

    #[test]
    fn h_iter_additivity(x in any::<[u8; 20]>(), a in 0u64..50, b in 0u64..50) {
        let d = Digest20::from_bytes(x);
        prop_assert_eq!(h_iter(h_iter(d, a), b), h_iter(d, a + b));
    }

    #[test]
    fn wire_codec_round_trips(
        v8 in prop::collection::vec(any::<u8>(), 0..255),
        v16 in prop::collection::vec(any::<u8>(), 0..1000),
        nums in any::<(u8, u16, u32, u64)>(),
    ) {
        let mut w = wire::Writer::new();
        w.u8(nums.0).u16(nums.1).u32(nums.2).u64(nums.3).vec8(&v8).vec16(&v16);
        let bytes = w.into_bytes();
        let mut r = wire::Reader::new(&bytes);
        prop_assert_eq!(r.u8("a").unwrap(), nums.0);
        prop_assert_eq!(r.u16("b").unwrap(), nums.1);
        prop_assert_eq!(r.u32("c").unwrap(), nums.2);
        prop_assert_eq!(r.u64("d").unwrap(), nums.3);
        prop_assert_eq!(r.vec8("e").unwrap().to_vec(), v8);
        prop_assert_eq!(r.vec16("f").unwrap().to_vec(), v16);
        prop_assert!(r.finish("end").is_ok());
    }

    #[test]
    fn reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut r = wire::Reader::new(&bytes);
        // Whatever sequence of reads, malformed input yields Err, not panic.
        let _ = r.vec16("a");
        let _ = r.u64("b");
        let _ = r.vec8("c");
        let _ = r.finish("d");
    }
}
