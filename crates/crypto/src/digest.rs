//! The 20-byte truncated SHA-256 digest used throughout RITM.
//!
//! The paper (§VI) truncates SHA-256 output to its first 20 bytes for hash
//! trees and hash chains, trading collision margin for bandwidth. This module
//! provides the [`Digest20`] newtype plus the `H(.)` convenience functions
//! used by the authenticated dictionary and freshness chains.

use crate::hex;
use crate::sha256;

/// Length in bytes of the truncated digest (paper §VI).
pub const DIGEST_LEN: usize = 20;

/// A 20-byte truncated SHA-256 digest — the `H(.)` of the paper.
///
/// # Examples
///
/// ```
/// use ritm_crypto::digest::Digest20;
/// let d = Digest20::hash(b"hello");
/// assert_eq!(d.as_bytes().len(), 20);
/// assert_eq!(d, Digest20::hash(b"hello"));
/// assert_ne!(d, Digest20::hash(b"world"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest20([u8; DIGEST_LEN]);

impl Digest20 {
    /// The all-zero digest, used as padding sentinel in tree internals.
    pub const ZERO: Digest20 = Digest20([0; DIGEST_LEN]);

    /// Hashes `data` with SHA-256 and truncates to 20 bytes.
    pub fn hash(data: impl AsRef<[u8]>) -> Self {
        let full = sha256::digest(data);
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(&full[..DIGEST_LEN]);
        Digest20(out)
    }

    /// Hashes the concatenation of two digests — the interior-node rule of
    /// the dictionary hash tree.
    pub fn hash_pair(left: &Digest20, right: &Digest20) -> Self {
        let mut buf = [0u8; DIGEST_LEN * 2];
        buf[..DIGEST_LEN].copy_from_slice(&left.0);
        buf[DIGEST_LEN..].copy_from_slice(&right.0);
        Digest20::hash(buf)
    }

    /// Creates a digest from raw bytes (e.g. parsed off the wire).
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest20(bytes)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Parses a digest from a 40-character hexadecimal string.
    ///
    /// # Errors
    ///
    /// Returns [`hex::ParseHexError`] on malformed or wrong-length input.
    pub fn from_hex(s: &str) -> Result<Self, hex::ParseHexError> {
        Ok(Digest20(hex::decode_array(s)?))
    }
}

impl AsRef<[u8]> for Digest20 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest20 {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest20(bytes)
    }
}

impl core::fmt::Debug for Digest20 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Digest20({})", hex::encode(self.0))
    }
}

impl core::fmt::Display for Digest20 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&hex::encode(self.0))
    }
}

/// Applies `H` once: truncated SHA-256.
pub fn h(data: impl AsRef<[u8]>) -> Digest20 {
    Digest20::hash(data)
}

/// Applies `H` iteratively `m` times: `H^m(x)` with `H^0(x) = x` interpreted
/// as the digest of iterating zero times over an initial digest.
pub fn h_iter(x: Digest20, m: u64) -> Digest20 {
    let mut cur = x;
    for _ in 0..m {
        cur = Digest20::hash(cur.as_bytes());
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_is_prefix_of_sha256() {
        let full = sha256::digest(b"ritm");
        let d = Digest20::hash(b"ritm");
        assert_eq!(d.as_bytes()[..], full[..20]);
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        let a = Digest20::hash(b"a");
        let b = Digest20::hash(b"b");
        assert_ne!(Digest20::hash_pair(&a, &b), Digest20::hash_pair(&b, &a));
    }

    #[test]
    fn h_iter_zero_is_identity() {
        let x = Digest20::hash(b"x");
        assert_eq!(h_iter(x, 0), x);
    }

    #[test]
    fn h_iter_composes() {
        let x = Digest20::hash(b"seed");
        assert_eq!(h_iter(h_iter(x, 3), 4), h_iter(x, 7));
    }

    #[test]
    fn hex_round_trip() {
        let d = Digest20::hash(b"round trip");
        assert_eq!(Digest20::from_hex(&d.to_string()).unwrap(), d);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Digest20::ZERO).is_empty());
    }
}
