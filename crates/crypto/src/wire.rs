//! Deterministic byte-level encoding helpers.
//!
//! Everything RITM signs or hashes (signed roots, proofs, TLS messages) needs
//! a canonical byte representation, so all wire formats in this workspace are
//! hand-rolled big-endian TLV-style encodings built on these two types.

/// Error produced when decoding runs off the end of the buffer or meets an
/// invalid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of what failed to decode.
    pub context: &'static str,
    /// Offset at which decoding failed.
    pub offset: usize,
}

impl DecodeError {
    /// Creates a decode error.
    pub fn new(context: &'static str, offset: usize) -> Self {
        DecodeError { context, offset }
    }
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "decode error at offset {}: {}",
            self.offset, self.context
        )
    }
}

impl std::error::Error for DecodeError {}

/// An append-only encoder.
///
/// # Examples
///
/// ```
/// use ritm_crypto::wire::Writer;
/// let mut w = Writer::new();
/// w.u16(0x0303);
/// w.bytes(&[1, 2, 3]);
/// assert_eq!(w.into_bytes(), vec![0x03, 0x03, 1, 2, 3]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer, appending after its current contents —
    /// how encoders reuse pooled scratch without an intermediate copy
    /// (`mem::take` the scratch in, [`into_bytes`](Writer::into_bytes) it
    /// back out).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a 24-bit big-endian length (TLS handshake convention).
    ///
    /// # Panics
    ///
    /// Panics if `v >= 2^24`.
    pub fn u24(&mut self, v: u32) -> &mut Self {
        assert!(v < 1 << 24, "u24 overflow");
        self.buf.extend_from_slice(&v.to_be_bytes()[1..]);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a `u8`-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() > 255`.
    pub fn vec8(&mut self, v: &[u8]) -> &mut Self {
        assert!(v.len() <= u8::MAX as usize, "vec8 overflow");
        self.u8(v.len() as u8);
        self.bytes(v)
    }

    /// Appends a `u16`-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() > 65535`.
    pub fn vec16(&mut self, v: &[u8]) -> &mut Self {
        assert!(v.len() <= u16::MAX as usize, "vec16 overflow");
        self.u16(v.len() as u16);
        self.bytes(v)
    }

    /// Appends a `u24`-length-prefixed byte string.
    pub fn vec24(&mut self, v: &[u8]) -> &mut Self {
        self.u24(v.len() as u32);
        self.bytes(v)
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// A cursor-based decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(context, self.pos));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes(b.try_into().expect("2 bytes")))
    }

    /// Reads a 24-bit big-endian value.
    pub fn u24(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(3, context)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, context)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads exactly `N` bytes into an array.
    pub fn array<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], DecodeError> {
        let b = self.take(N, context)?;
        Ok(b.try_into().expect("N bytes"))
    }

    /// Reads `n` raw bytes.
    pub fn slice(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        self.take(n, context)
    }

    /// Reads a `u8`-length-prefixed byte string.
    pub fn vec8(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.u8(context)? as usize;
        self.take(n, context)
    }

    /// Reads a `u16`-length-prefixed byte string.
    pub fn vec16(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.u16(context)? as usize;
        self.take(n, context)
    }

    /// Reads a `u24`-length-prefixed byte string.
    pub fn vec24(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.u24(context)? as usize;
        self.take(n, context)
    }

    /// Validates a decoded element count against the bytes actually left:
    /// each element needs at least `min_elem_bytes` to encode, so any count
    /// exceeding `remaining / min_elem_bytes` is forged. Call this before
    /// sizing an allocation or loop by an attacker-controlled count.
    pub fn check_count(
        &self,
        count: usize,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<(), DecodeError> {
        if count.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(DecodeError::new(context, self.pos));
        }
        Ok(())
    }

    /// Fails unless the reader is fully consumed — catches trailing garbage.
    pub fn finish(&self, context: &'static str) -> Result<(), DecodeError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(DecodeError::new(context, self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = Writer::new();
        w.u8(1)
            .u16(2)
            .u24(3)
            .u32(4)
            .u64(5)
            .vec8(b"abc")
            .vec16(b"de")
            .vec24(b"f");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 1);
        assert_eq!(r.u16("b").unwrap(), 2);
        assert_eq!(r.u24("c").unwrap(), 3);
        assert_eq!(r.u32("d").unwrap(), 4);
        assert_eq!(r.u64("e").unwrap(), 5);
        assert_eq!(r.vec8("f").unwrap(), b"abc");
        assert_eq!(r.vec16("g").unwrap(), b"de");
        assert_eq!(r.vec24("h").unwrap(), b"f");
        assert!(r.finish("end").is_ok());
    }

    #[test]
    fn truncated_input_errors_with_offset() {
        // vec8 claims 5 bytes but only 1 follows (failure offset = 1).
        let mut r = Reader::new(&[5, 9]);
        let err = r.clone().vec8("v").unwrap_err();
        assert_eq!(err.offset, 1);
        // The same bytes read fine as a u16.
        assert_eq!(r.u16("ok").unwrap(), 0x0509);
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let r = Reader::new(&[1, 2, 3]);
        assert!(r.finish("trailing").is_err());
    }

    #[test]
    #[should_panic(expected = "u24 overflow")]
    fn u24_overflow_panics() {
        Writer::new().u24(1 << 24);
    }

    #[test]
    fn array_read() {
        let mut r = Reader::new(&[9, 8, 7]);
        let a: [u8; 2] = r.array("a").unwrap();
        assert_eq!(a, [9, 8]);
        assert!(r.array::<2>("b").is_err());
    }

    #[test]
    fn error_display() {
        let e = DecodeError::new("bad thing", 12);
        let s = format!("{e}");
        assert!(s.contains("12") && s.contains("bad thing"));
    }

    #[test]
    fn check_count_bounds_by_remaining() {
        let r = Reader::new(&[0; 10]);
        assert!(r.check_count(5, 2, "ok").is_ok());
        assert!(r.check_count(6, 2, "too many").is_err());
        assert!(r.check_count(10, 0, "min clamps to 1").is_ok());
        assert!(r.check_count(11, 0, "min clamps to 1").is_err());
        // Overflow-safe: a huge count must not wrap into acceptance.
        assert!(r.check_count(usize::MAX, 20, "overflow").is_err());
    }
}
