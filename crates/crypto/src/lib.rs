//! # ritm-crypto — cryptographic substrate for the RITM reproduction
//!
//! Implements, from scratch, every primitive the paper relies on (§II, §VI):
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hash functions;
//! * [`digest`] — the 20-byte truncated SHA-256 digest `H(.)` used by the
//!   authenticated dictionaries;
//! * [`hashchain`] — hash chains backing CA freshness statements;
//! * [`ed25519`] — RFC 8032 signatures (64-byte, as in the paper) over
//!   curve25519, including the full field/scalar/point arithmetic;
//! * [`hex`] — encoding helpers;
//! * [`crc32`] — the (non-cryptographic) CRC-32 guarding on-disk formats
//!   such as the CA issuance log and RA mirror snapshots.
//!
//! # Examples
//!
//! ```
//! use ritm_crypto::{digest::Digest20, ed25519::SigningKey, hashchain::HashChain};
//!
//! // The three primitives a CA combines to authenticate its dictionary:
//! let root = Digest20::hash(b"dictionary root");
//! let chain = HashChain::from_seed([9u8; 20], 1_000);
//! let sk = SigningKey::from_seed([1u8; 32]);
//! let sig = sk.sign(root.as_bytes());
//! assert!(sk.verifying_key().verify(root.as_bytes(), &sig).is_ok());
//! assert_eq!(chain.statement(0).unwrap(), chain.anchor());
//! ```

pub mod crc32;
pub mod digest;
pub mod ed25519;
pub mod hashchain;
pub mod hex;
pub mod sha256;
pub mod sha512;
pub mod wire;

pub use digest::Digest20;
pub use ed25519::{InvalidSignature, Signature, SigningKey, VerifyingKey};
pub use hashchain::HashChain;
