//! Hash chains backing RITM freshness statements (paper §II, Fig. 2).
//!
//! A CA draws a random value `v`, picks a chain length `m`, and commits to
//! the anchor `H^m(v)` inside a signed dictionary root. At period `p` (with
//! `p < m`) it releases the preimage `H^(m-p)(v)` as the period-`p` freshness
//! statement; verifiers hash the statement forward `p` (or `p+1`, to absorb
//! publish/poll skew — §III validation step 5c) times and compare against the
//! anchor. Only the CA can walk the chain backwards.

use crate::digest::{h_iter, Digest20};
use rand::RngCore;

/// Error returned when a [`HashChain`] is asked for a statement past its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainExhausted {
    /// The period that was requested.
    pub period: u64,
    /// The chain length `m`; valid periods are `0..m`.
    pub length: u64,
}

impl core::fmt::Display for ChainExhausted {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "hash chain exhausted: period {} >= chain length {}",
            self.period, self.length
        )
    }
}

impl std::error::Error for ChainExhausted {}

/// The CA-side secret hash chain.
///
/// # Examples
///
/// ```
/// use ritm_crypto::hashchain::{HashChain, verify_statement};
/// let chain = HashChain::from_seed([7u8; 20], 100);
/// let anchor = chain.anchor();
/// let stmt = chain.statement(3).unwrap();
/// assert_eq!(verify_statement(anchor, stmt, 3, 0), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct HashChain {
    /// `H^0(v) = v` as a digest-sized secret.
    seed: Digest20,
    /// Chain length `m`.
    length: u64,
    /// Cached anchor `H^m(v)`.
    anchor: Digest20,
}

impl HashChain {
    /// Builds a chain of length `m` from an explicit 20-byte seed `v`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`; a zero-length chain has no usable statements.
    pub fn from_seed(seed: [u8; 20], m: u64) -> Self {
        assert!(m > 0, "hash chain length must be positive");
        let seed = Digest20::from_bytes(seed);
        let anchor = h_iter(seed, m);
        HashChain {
            seed,
            length: m,
            anchor,
        }
    }

    /// Builds a chain of length `m` with a seed drawn from `rng`.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R, m: u64) -> Self {
        let mut seed = [0u8; 20];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed, m)
    }

    /// The public anchor `H^m(v)` committed to in the signed root (Eq. 1).
    pub fn anchor(&self) -> Digest20 {
        self.anchor
    }

    /// The chain length `m`.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// The freshness statement for period `p`: `H^(m-p)(v)` (Eq. 2).
    ///
    /// Period 0 is the anchor itself; the last usable period is `m - 1`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainExhausted`] when `p >= m`; the CA must then rotate to a
    /// new chain via a fresh signed root (Fig. 2, `refresh` step 3).
    pub fn statement(&self, p: u64) -> Result<Digest20, ChainExhausted> {
        if p >= self.length {
            return Err(ChainExhausted {
                period: p,
                length: self.length,
            });
        }
        Ok(h_iter(self.seed, self.length - p))
    }

    /// Whether period `p` still lies on this chain.
    pub fn covers(&self, p: u64) -> bool {
        p < self.length
    }
}

/// Verifies a freshness statement against an anchor.
///
/// Hashing the period-`p` statement `k` times reproduces the anchor exactly
/// when `k = p`, so this checks every period in
/// `expected_period ± tolerance` and returns the one that matched. The
/// paper's validation step 5c is `tolerance = 1`: a statement one period
/// *old* is still accepted (the RA may have pulled just before the CA
/// published — the CDN pull skew that makes the attack window 2Δ, §V), and
/// one period *new* absorbs forward clock skew.
pub fn verify_statement(
    anchor: Digest20,
    statement: Digest20,
    expected_period: u64,
    tolerance: u64,
) -> Option<u64> {
    let lo = expected_period.saturating_sub(tolerance);
    let hi = expected_period + tolerance;
    let mut cur = h_iter(statement, lo);
    for k in lo..=hi {
        if cur == anchor {
            return Some(k);
        }
        cur = h_iter(cur, 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> HashChain {
        HashChain::from_seed([42u8; 20], 16)
    }

    #[test]
    fn period_zero_is_anchor() {
        let c = chain();
        assert_eq!(c.statement(0).unwrap(), c.anchor());
    }

    #[test]
    fn each_statement_hashes_to_previous() {
        let c = chain();
        for p in 1..c.length() {
            let cur = c.statement(p).unwrap();
            let prev = c.statement(p - 1).unwrap();
            assert_eq!(h_iter(cur, 1), prev, "period {p}");
        }
    }

    #[test]
    fn verify_accepts_exact_period() {
        let c = chain();
        for p in 0..c.length() {
            assert_eq!(
                verify_statement(c.anchor(), c.statement(p).unwrap(), p, 0),
                Some(p)
            );
        }
    }

    #[test]
    fn verify_accepts_skew_within_tolerance() {
        let c = chain();
        // Verifier thinks we are at period 4, CA already released period 5.
        let stmt = c.statement(5).unwrap();
        assert_eq!(verify_statement(c.anchor(), stmt, 4, 1), Some(5));
        assert_eq!(verify_statement(c.anchor(), stmt, 4, 0), None);
    }

    #[test]
    fn verify_accepts_one_period_old_statement() {
        // The RA pulled just before the CA published the next statement —
        // the common 2Δ case of §V.
        let c = chain();
        let stmt = c.statement(3).unwrap();
        assert_eq!(verify_statement(c.anchor(), stmt, 4, 1), Some(3));
        assert_eq!(verify_statement(c.anchor(), stmt, 4, 0), None);
        // Two periods old is past the window.
        assert_eq!(verify_statement(c.anchor(), stmt, 5, 1), None);
    }

    #[test]
    fn verify_rejects_wrong_statement() {
        let c = chain();
        let bogus = Digest20::hash(b"not on the chain");
        assert_eq!(verify_statement(c.anchor(), bogus, 3, 2), None);
    }

    #[test]
    fn verify_rejects_replayed_old_statement() {
        let c = chain();
        // An attacker replays the period-2 statement claiming period 6.
        let old = c.statement(2).unwrap();
        assert_eq!(verify_statement(c.anchor(), old, 6, 1), None);
    }

    #[test]
    fn exhaustion_reported() {
        let c = chain();
        let err = c.statement(16).unwrap_err();
        assert_eq!(
            err,
            ChainExhausted {
                period: 16,
                length: 16
            }
        );
        assert!(!c.covers(16));
        assert!(c.covers(15));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        let _ = HashChain::from_seed([0u8; 20], 0);
    }

    #[test]
    fn generate_uses_rng() {
        use rand::SeedableRng;
        let mut a = rand::rngs::StdRng::seed_from_u64(1);
        let mut b = rand::rngs::StdRng::seed_from_u64(2);
        let ca = HashChain::generate(&mut a, 8);
        let cb = HashChain::generate(&mut b, 8);
        assert_ne!(ca.anchor(), cb.anchor());
    }
}
