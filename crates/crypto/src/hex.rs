//! Minimal hexadecimal encoding/decoding used throughout the workspace for
//! display of digests, serial numbers, and signatures.

/// Error returned when [`decode`] is given a malformed hexadecimal string.
///
/// # Examples
///
/// ```
/// use ritm_crypto::hex;
/// assert!(hex::decode("0g").is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseHexError {
    /// Byte offset of the first offending character, or the input length when
    /// the input had an odd number of digits.
    pub position: usize,
}

impl core::fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid hexadecimal input at position {}", self.position)
    }
}

impl std::error::Error for ParseHexError {}

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// use ritm_crypto::hex;
/// assert_eq!(hex::encode([0xde, 0xad, 0xbe, 0xef]), "deadbeef");
/// ```
pub fn encode(bytes: impl AsRef<[u8]>) -> String {
    let bytes = bytes.as_ref();
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Decodes a hexadecimal string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`ParseHexError`] if the input has an odd length or contains a
/// non-hexadecimal character.
///
/// # Examples
///
/// ```
/// use ritm_crypto::hex;
/// # fn main() -> Result<(), hex::ParseHexError> {
/// assert_eq!(hex::decode("00ff")?, vec![0x00, 0xff]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(ParseHexError { position: s.len() });
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for (i, pair) in s.chunks_exact(2).enumerate() {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(ParseHexError { position: i * 2 })?;
        let lo = (pair[1] as char).to_digit(16).ok_or(ParseHexError {
            position: i * 2 + 1,
        })?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// Decodes a hexadecimal string into a fixed-size array.
///
/// # Errors
///
/// Returns [`ParseHexError`] for malformed input; the `position` is the input
/// length when the decoded size does not match `N`.
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], ParseHexError> {
    let v = decode(s)?;
    let arr: [u8; N] = v
        .try_into()
        .map_err(|_| ParseHexError { position: s.len() })?;
    Ok(arr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0u8, 1, 2, 0x7f, 0x80, 0xff];
        assert_eq!(decode(&encode(data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode([]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode("abc"), Err(ParseHexError { position: 3 }));
    }

    #[test]
    fn bad_char_position() {
        assert_eq!(decode("0g"), Err(ParseHexError { position: 1 }));
        assert_eq!(decode("zz"), Err(ParseHexError { position: 0 }));
    }

    #[test]
    fn decode_array_size_mismatch() {
        assert!(decode_array::<4>("deadbeef").is_ok());
        assert!(decode_array::<3>("deadbeef").is_err());
    }

    #[test]
    fn error_display_is_nonempty() {
        let e = ParseHexError { position: 7 };
        assert!(format!("{e}").contains('7'));
    }
}
