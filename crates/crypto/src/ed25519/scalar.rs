//! Arithmetic modulo the Ed25519 group order
//! `ℓ = 2^252 + 27742317777372353535851937790883648493`.

use super::bigint::{add4, geq4, limbs_from_le_bytes, limbs_to_le_bytes, mul_wide, sub4};

/// The group order `ℓ`, little-endian limbs.
pub const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// An integer modulo `ℓ`, always canonically reduced.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Scalar(pub(crate) [u64; 4]);

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Scalar(0x")?;
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Lifts a small integer.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar([v, 0, 0, 0])
    }

    /// Interprets 32 little-endian bytes, reducing modulo `ℓ`.
    ///
    /// Used for clamped secret scalars, which may exceed `ℓ`; since the base
    /// point has order `ℓ`, reducing does not change the derived public key.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut limbs = limbs_from_le_bytes(bytes);
        while geq4(&limbs, &L) {
            limbs = sub4(&limbs, &L).0;
        }
        Scalar(limbs)
    }

    /// Interprets 32 little-endian bytes, rejecting non-canonical values.
    ///
    /// This is the strict RFC 8032 check applied to the `S` half of a
    /// signature, which defeats signature malleability.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let limbs = limbs_from_le_bytes(bytes);
        if geq4(&limbs, &L) {
            return None;
        }
        Some(Scalar(limbs))
    }

    /// Reduces a 64-byte little-endian integer (e.g. a SHA-512 digest)
    /// modulo `ℓ`, per RFC 8032.
    pub fn from_bytes_wide(bytes: &[u8; 64]) -> Scalar {
        let mut v = [0u64; 8];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            v[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Scalar(reduce_512(v))
    }

    /// Serializes to 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        limbs_to_le_bytes(&self.0)
    }

    /// Addition modulo `ℓ`.
    pub fn add(&self, other: &Scalar) -> Scalar {
        // Both inputs < ℓ < 2^253, so the sum fits in 256 bits without carry.
        let (mut sum, carry) = add4(&self.0, &other.0);
        debug_assert_eq!(carry, 0);
        if geq4(&sum, &L) {
            sum = sub4(&sum, &L).0;
        }
        Scalar(sum)
    }

    /// Multiplication modulo `ℓ`.
    pub fn mul(&self, other: &Scalar) -> Scalar {
        Scalar(reduce_512(mul_wide(&self.0, &other.0)))
    }

    /// `true` if this is the additive identity.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Bit `i` (little-endian) of the scalar; `i < 256`.
    pub(crate) fn bit(&self, i: usize) -> bool {
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }
}

/// Reduces a 512-bit little-endian value modulo `ℓ` by shift-and-subtract.
///
/// `ℓ` is 253 bits, so at most `512 - 253 + 1 = 260` shifted subtractions are
/// attempted. This is not constant time; the simulation does not require
/// side-channel resistance.
fn reduce_512(mut v: [u64; 8]) -> [u64; 4] {
    for shift in (0..=259).rev() {
        if geq_shifted(&v, shift) {
            sub_shifted(&mut v, shift);
        }
    }
    debug_assert_eq!(&v[4..], &[0, 0, 0, 0]);
    let out = [v[0], v[1], v[2], v[3]];
    debug_assert!(!geq4(&out, &L));
    out
}

/// Computes the limbs of `ℓ << shift` as a 9-limb value.
fn shifted_l(shift: usize) -> [u64; 9] {
    let word = shift / 64;
    let bit = shift % 64;
    let mut out = [0u64; 9];
    for i in 0..4 {
        out[word + i] |= L[i] << bit;
        if bit != 0 && word + i + 1 < 9 {
            out[word + i + 1] |= L[i] >> (64 - bit);
        }
    }
    out
}

fn geq_shifted(v: &[u64; 8], shift: usize) -> bool {
    let s = shifted_l(shift);
    if s[8] != 0 {
        return false;
    }
    for i in (0..8).rev() {
        if v[i] != s[i] {
            return v[i] > s[i];
        }
    }
    true
}

fn sub_shifted(v: &mut [u64; 8], shift: usize) {
    let s = shifted_l(shift);
    let mut borrow = 0u64;
    for i in 0..8 {
        let (d, b) = super::bigint::sbb(v[i], s[i], borrow);
        v[i] = d;
        borrow = b;
    }
    debug_assert_eq!(borrow, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_round_trips_to_zero() {
        let l_bytes = limbs_to_le_bytes(&L);
        assert_eq!(Scalar::from_bytes_mod_order(&l_bytes), Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&l_bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let (lm1, _) = sub4(&L, &[1, 0, 0, 0]);
        let s = Scalar::from_canonical_bytes(&limbs_to_le_bytes(&lm1)).unwrap();
        assert_eq!(s.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn wide_reduction_of_l_squared() {
        // ℓ * ℓ mod ℓ = 0.
        let wide = mul_wide(&L, &L);
        let mut bytes = [0u8; 64];
        for (i, limb) in wide.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(Scalar::from_bytes_wide(&bytes), Scalar::ZERO);
    }

    #[test]
    fn wide_reduction_small_value() {
        let mut bytes = [0u8; 64];
        bytes[0] = 42;
        assert_eq!(Scalar::from_bytes_wide(&bytes), Scalar::from_u64(42));
    }

    #[test]
    fn wide_reduction_all_ones() {
        // (2^512 - 1) mod ℓ computed two ways: directly, and as
        // ((2^256 - 1) * (2^256 + 1)) mod ℓ.
        let all = [0xffu8; 64];
        let direct = Scalar::from_bytes_wide(&all);

        let mut lo = [0u8; 64];
        lo[..32].copy_from_slice(&[0xff; 32]);
        let a = Scalar::from_bytes_wide(&lo); // 2^256 - 1 mod ℓ
        let mut hi = [0u8; 64];
        hi[0] = 1;
        hi[32] = 1;
        let b = Scalar::from_bytes_wide(&hi); // 2^256 + 1 mod ℓ
        assert_eq!(direct, a.mul(&b));
    }

    #[test]
    fn mul_matches_repeated_add() {
        let a = Scalar::from_u64(0x1234_5678);
        let mut sum = Scalar::ZERO;
        for _ in 0..9 {
            sum = sum.add(&a);
        }
        assert_eq!(a.mul(&Scalar::from_u64(9)), sum);
    }

    #[test]
    fn associativity_spot_check() {
        let a = Scalar::from_bytes_mod_order(&[0xa5; 32]);
        let b = Scalar::from_bytes_mod_order(&[0x3c; 32]);
        let c = Scalar::from_bytes_mod_order(&[0x77; 32]);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
    }

    #[test]
    fn bit_access() {
        let s = Scalar::from_u64(0b1010);
        assert!(!s.bit(0));
        assert!(s.bit(1));
        assert!(!s.bit(2));
        assert!(s.bit(3));
        assert!(!s.bit(255));
    }
}
