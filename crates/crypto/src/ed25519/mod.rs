//! Ed25519 signatures per RFC 8032, implemented from scratch.
//!
//! The paper (§VI) signs dictionary roots with Ed25519 to keep signatures at
//! 64 bytes. This module provides deterministic signing, strict verification
//! (canonical `S`, canonical point encodings), and key generation.

pub mod bigint;
pub mod field;
pub mod point;
pub mod scalar;

use crate::sha512::Sha512;
use point::Point;
use rand::RngCore;
use scalar::Scalar;

/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a secret seed in bytes.
pub const SEED_LEN: usize = 32;

/// A 64-byte Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl Signature {
    /// Parses a signature from raw bytes (no validation happens until
    /// verification).
    pub const fn from_bytes(bytes: [u8; SIGNATURE_LEN]) -> Self {
        Signature(bytes)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; SIGNATURE_LEN] {
        &self.0
    }
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature({}…)", crate::hex::encode(&self.0[..8]))
    }
}

/// Error returned when signature verification fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSignature;

impl core::fmt::Display for InvalidSignature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("invalid ed25519 signature")
    }
}

impl std::error::Error for InvalidSignature {}

/// An Ed25519 verifying (public) key.
///
/// # Examples
///
/// ```
/// use ritm_crypto::ed25519::SigningKey;
/// let sk = SigningKey::from_seed([1u8; 32]);
/// let vk = sk.verifying_key();
/// let sig = sk.sign(b"revocation root");
/// assert!(vk.verify(b"revocation root", &sig).is_ok());
/// assert!(vk.verify(b"tampered", &sig).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub [u8; PUBLIC_KEY_LEN]);

impl core::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VerifyingKey({}…)", crate::hex::encode(&self.0[..8]))
    }
}

impl VerifyingKey {
    /// Parses a verifying key from its 32-byte encoding.
    pub const fn from_bytes(bytes: [u8; PUBLIC_KEY_LEN]) -> Self {
        VerifyingKey(bytes)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LEN] {
        &self.0
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSignature`] if the key or signature fail to decode
    /// canonically, or if the verification equation `[S]B = R + [k]A` does
    /// not hold.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), InvalidSignature> {
        let a = Point::decompress(&self.0).ok_or(InvalidSignature)?;
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("32-byte R");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("32-byte S");
        let r = Point::decompress(&r_bytes).ok_or(InvalidSignature)?;
        // Strict: S must be canonical (< ℓ) to rule out malleability.
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(InvalidSignature)?;

        let mut h = Sha512::new();
        h.update(r_bytes);
        h.update(self.0);
        h.update(message);
        let k = Scalar::from_bytes_wide(&h.finalize());

        let lhs = Point::mul_base(&s);
        let rhs = r.add(&a.mul(&k));
        if lhs == rhs {
            Ok(())
        } else {
            Err(InvalidSignature)
        }
    }
}

/// An Ed25519 signing (secret) key, derived from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; SEED_LEN],
    scalar: Scalar,
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print the seed.
        write!(f, "SigningKey(public = {:?})", self.public)
    }
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed per RFC 8032 §5.1.5.
    pub fn from_seed(seed: [u8; SEED_LEN]) -> Self {
        let h = crate::sha512::digest(seed);
        let mut scalar_bytes: [u8; 32] = h[..32].try_into().expect("32-byte half");
        // Clamp.
        scalar_bytes[0] &= 248;
        scalar_bytes[31] &= 127;
        scalar_bytes[31] |= 64;
        let scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
        let prefix: [u8; 32] = h[32..].try_into().expect("32-byte half");
        let public = VerifyingKey(Point::mul_base(&scalar).compress());
        SigningKey {
            seed,
            scalar,
            prefix,
            public,
        }
    }

    /// Generates a signing key from `rng`.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; SEED_LEN];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed)
    }

    /// The seed this key was derived from.
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// The corresponding verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Produces a deterministic RFC 8032 signature over `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_wide(&h.finalize());
        let r_point = Point::mul_base(&r).compress();

        let mut h = Sha512::new();
        h.update(r_point);
        h.update(self.public.0);
        h.update(message);
        let k = Scalar::from_bytes_wide(&h.finalize());

        let s = r.add(&k.mul(&self.scalar));
        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn key(byte: u8) -> SigningKey {
        SigningKey::from_seed([byte; 32])
    }

    #[test]
    fn sign_verify_round_trip() {
        let sk = key(1);
        let vk = sk.verifying_key();
        for msg in [&b""[..], b"a", b"hello revocation", &[0u8; 300]] {
            let sig = sk.sign(msg);
            assert!(vk.verify(msg, &sig).is_ok());
        }
    }

    #[test]
    fn signing_is_deterministic() {
        let sk = key(2);
        assert_eq!(sk.sign(b"m").0, sk.sign(b"m").0);
    }

    #[test]
    fn different_messages_different_signatures() {
        let sk = key(3);
        assert_ne!(sk.sign(b"m1").0, sk.sign(b"m2").0);
    }

    #[test]
    fn tampered_message_rejected() {
        let sk = key(4);
        let sig = sk.sign(b"original");
        assert_eq!(
            sk.verifying_key().verify(b"0riginal", &sig),
            Err(InvalidSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = key(5);
        let mut sig = sk.sign(b"msg");
        sig.0[0] ^= 1;
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
        let mut sig2 = sk.sign(b"msg");
        sig2.0[63] ^= 0x10;
        assert!(sk.verifying_key().verify(b"msg", &sig2).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let sig = key(6).sign(b"msg");
        assert!(key(7).verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn high_s_rejected() {
        // Add ℓ to S: classic malleability; strict verification must reject.
        use super::bigint::{add4, limbs_from_le_bytes, limbs_to_le_bytes};
        use super::scalar::L;
        let sk = key(8);
        let mut sig = sk.sign(b"msg");
        let s_bytes: [u8; 32] = sig.0[32..].try_into().unwrap();
        let (s_plus_l, carry) = add4(&limbs_from_le_bytes(&s_bytes), &L);
        if carry == 0 {
            sig.0[32..].copy_from_slice(&limbs_to_le_bytes(&s_plus_l));
            assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
        }
    }

    #[test]
    fn keys_from_rng_differ() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        assert_ne!(a.verifying_key().0, b.verifying_key().0);
        let sig = a.sign(b"x");
        assert!(a.verifying_key().verify(b"x", &sig).is_ok());
        assert!(b.verifying_key().verify(b"x", &sig).is_err());
    }

    #[test]
    fn garbage_public_key_rejected() {
        // y = 2 is not on the curve.
        let mut pk = [0u8; 32];
        pk[0] = 2;
        let vk = VerifyingKey::from_bytes(pk);
        let sig = key(9).sign(b"m");
        assert!(vk.verify(b"m", &sig).is_err());
    }

    #[test]
    fn debug_never_prints_seed() {
        let sk = key(0xAB);
        let dbg = format!("{sk:?}");
        assert!(!dbg.contains(&crate::hex::encode([0xABu8; 32])));
    }
}
