//! Twisted Edwards points on edwards25519 (`-x² + y² = 1 + d·x²y²`),
//! in extended homogeneous coordinates `(X : Y : Z : T)` with `T = XY/Z`.

use super::field::Fe;
use super::scalar::Scalar;
use std::sync::OnceLock;

/// Curve constant `d = -121665/121666`.
fn d() -> &'static Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    D.get_or_init(|| {
        Fe::from_u64(121_665)
            .neg()
            .mul(&Fe::from_u64(121_666).invert())
    })
}

/// `2d`, used in the addition formula.
fn d2() -> &'static Fe {
    static D2: OnceLock<Fe> = OnceLock::new();
    D2.get_or_init(|| d().add(d()))
}

/// `sqrt(-1) = 2^((p-1)/4)`.
fn sqrt_m1() -> &'static Fe {
    static S: OnceLock<Fe> = OnceLock::new();
    S.get_or_init(|| {
        // (p - 1) / 4 = 2^253 - 5
        const EXP: [u64; 4] = [
            0xffff_ffff_ffff_fffb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x1fff_ffff_ffff_ffff,
        ];
        Fe::from_u64(2).pow(&EXP)
    })
}

/// An edwards25519 point in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) and (Y1/Z1 == Y2/Z2), cross-multiplied.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for Point {}

impl Point {
    /// The neutral element `(0, 1)`.
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The RFC 8032 base point `B` with `y = 4/5` and even `x`.
    pub fn basepoint() -> &'static Point {
        static B: OnceLock<Point> = OnceLock::new();
        B.get_or_init(|| {
            let y = Fe::from_u64(4).mul(&Fe::from_u64(5).invert());
            let x = recover_x(&y, false).expect("basepoint x exists");
            Point::from_affine(x, y)
        })
    }

    /// Builds a point from affine coordinates. The caller must ensure the
    /// coordinates satisfy the curve equation (checked in debug builds).
    pub fn from_affine(x: Fe, y: Fe) -> Point {
        debug_assert!(on_curve(&x, &y), "affine point not on curve");
        Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(&y),
        }
    }

    /// Point addition (add-2008-hwcd-3 for `a = -1`, unified).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(d2()).mul(&other.t);
        let dd = self.z.mul(&other.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling (dbl-2008-hwcd for `a = -1`).
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(&self.z.square());
        let d_ = a.neg();
        let e = self.x.add(&self.y).square().sub(&a).sub(&b);
        let g = d_.add(&b);
        let f = g.sub(&c);
        let h = d_.sub(&b);
        Point {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point negation.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication `[k]P` (double-and-add, not constant time —
    /// acceptable for a simulation substrate).
    pub fn mul(&self, k: &Scalar) -> Point {
        let mut acc = Point::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// `[k]B` for the base point.
    pub fn mul_base(k: &Scalar) -> Point {
        Point::basepoint().mul(k)
    }

    /// Compresses to the 32-byte RFC 8032 encoding: `y` with the sign of `x`
    /// in bit 255.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding; `None` if it is not a valid,
    /// canonical curve point.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7 == 1;
        let y = Fe::from_bytes(bytes)?;
        let x = recover_x(&y, sign)?;
        Some(Point::from_affine(x, y))
    }

    /// Affine coordinates `(x, y)`.
    pub fn to_affine(&self) -> (Fe, Fe) {
        let zinv = self.z.invert();
        (self.x.mul(&zinv), self.y.mul(&zinv))
    }

    /// `true` for the neutral element.
    pub fn is_identity(&self) -> bool {
        *self == Point::identity()
    }
}

/// Checks the curve equation `-x² + y² = 1 + d·x²y²`.
fn on_curve(x: &Fe, y: &Fe) -> bool {
    let xx = x.square();
    let yy = y.square();
    let lhs = yy.sub(&xx);
    let rhs = Fe::ONE.add(&d().mul(&xx).mul(&yy));
    lhs == rhs
}

/// Recovers `x` from `y` and the sign bit, per RFC 8032 §5.1.3.
fn recover_x(y: &Fe, sign: bool) -> Option<Fe> {
    // x² = (y² - 1) / (d·y² + 1)
    let yy = y.square();
    let u = yy.sub(&Fe::ONE);
    let v = d().mul(&yy).add(&Fe::ONE);

    // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8)
    const EXP: [u64; 4] = [
        // (p - 5) / 8 = 2^252 - 3
        0xffff_ffff_ffff_fffd,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0x0fff_ffff_ffff_ffff,
    ];
    let v3 = v.square().mul(&v);
    let v7 = v3.square().mul(&v);
    let mut x = u.mul(&v3).mul(&u.mul(&v7).pow(&EXP));

    let vxx = v.mul(&x.square());
    if vxx != u {
        if vxx == u.neg() {
            x = x.mul(sqrt_m1());
        } else {
            return None;
        }
    }
    if x.is_zero() && sign {
        // x = 0 admits no "negative" representation.
        return None;
    }
    if x.is_negative() != sign {
        x = x.neg();
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn basepoint_known_encoding() {
        // RFC 8032: B encodes to 0x58 followed by 31 bytes of 0x66
        // (little-endian y = 4/5, even x).
        assert_eq!(
            hex::encode(Point::basepoint().compress()),
            "5866666666666666666666666666666666666666666666666666666666666666"
        );
    }

    #[test]
    fn basepoint_on_curve() {
        let (x, y) = Point::basepoint().to_affine();
        assert!(on_curve(&x, &y));
    }

    #[test]
    fn identity_round_trip() {
        let id = Point::identity();
        let enc = id.compress();
        assert_eq!(Point::decompress(&enc).unwrap(), id);
        // Encoding of the identity is y=1 with positive x.
        assert_eq!(enc[0], 1);
        assert!(enc[1..].iter().all(|&b| b == 0));
    }

    #[test]
    fn double_equals_add_self() {
        let b = Point::basepoint();
        assert_eq!(b.double(), b.add(b));
        let b4 = b.double().double();
        assert_eq!(b4, b.add(b).add(b).add(b));
    }

    #[test]
    fn add_identity_is_noop() {
        let b = Point::basepoint();
        assert_eq!(b.add(&Point::identity()), *b);
        assert_eq!(Point::identity().add(b), *b);
    }

    #[test]
    fn add_negation_is_identity() {
        let p = Point::mul_base(&Scalar::from_u64(7));
        assert!(p.add(&p.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = Point::basepoint();
        let mut acc = Point::identity();
        for k in 1..=8u64 {
            acc = acc.add(b);
            assert_eq!(Point::mul_base(&Scalar::from_u64(k)), acc, "k = {k}");
        }
    }

    #[test]
    fn order_of_basepoint() {
        // [ℓ]B = identity and [ℓ+1]B = B.
        use super::super::bigint::limbs_to_le_bytes;
        use super::super::scalar::L;
        // ℓ reduces to 0 mod ℓ, so emulate [ℓ]B by adding B to [ℓ-1]B.
        let (lm1, _) = super::super::bigint::sub4(&L, &[1, 0, 0, 0]);
        let s = Scalar::from_canonical_bytes(&limbs_to_le_bytes(&lm1)).unwrap();
        let p = Point::mul_base(&s); // [ℓ-1]B = -B
        assert_eq!(p, Point::basepoint().neg());
        assert!(p.add(Point::basepoint()).is_identity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let a = Scalar::from_u64(1234567);
        let b = Scalar::from_u64(7654321);
        let lhs = Point::mul_base(&a.add(&b));
        let rhs = Point::mul_base(&a).add(&Point::mul_base(&b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn compress_decompress_round_trip() {
        for k in [1u64, 2, 3, 99, 1 << 40, u64::MAX] {
            let p = Point::mul_base(&Scalar::from_u64(k));
            let enc = p.compress();
            assert_eq!(Point::decompress(&enc).unwrap(), p, "k = {k}");
        }
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 gives x² = 3 / (4d + 1), which is not a square for this d.
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        assert!(Point::decompress(&bytes).is_none());
    }

    #[test]
    fn decompress_rejects_noncanonical_y() {
        // y = p is a non-canonical encoding of 0.
        let p_bytes = Fe(super::super::field::P).to_bytes();
        assert!(Point::decompress(&p_bytes).is_none());
    }

    #[test]
    fn sign_bit_selects_negation() {
        let p = Point::mul_base(&Scalar::from_u64(5));
        let mut enc = p.compress();
        enc[31] ^= 0x80;
        let q = Point::decompress(&enc).unwrap();
        assert_eq!(q, p.neg());
    }
}
