//! Arithmetic in GF(2^255 - 19), the base field of curve25519.
//!
//! Elements are kept fully reduced (canonical, `< p`) in four 64-bit limbs.
//! This implementation favours auditability over speed; it is still far
//! faster than the paper's Python prototype.

use super::bigint::{add4, geq4, limbs_from_le_bytes, limbs_to_le_bytes, mul_wide, sub4};

/// The field prime `p = 2^255 - 19`, little-endian limbs.
pub const P: [u64; 4] = [
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// An element of GF(2^255 - 19), always canonically reduced.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Fe(pub(crate) [u64; 4]);

impl core::fmt::Debug for Fe {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fe(0x")?;
        for limb in self.0.iter().rev() {
            write!(f, "{limb:016x}")?;
        }
        write!(f, ")")
    }
}

impl Fe {
    /// The additive identity.
    pub const ZERO: Fe = Fe([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: Fe = Fe([1, 0, 0, 0]);

    /// Lifts a small integer into the field.
    pub fn from_u64(v: u64) -> Fe {
        Fe([v, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes as a field element, ignoring bit 255
    /// (the Edwards sign bit) per RFC 8032.
    ///
    /// Returns `None` if the 255-bit value is not canonical (`>= p`), which
    /// rejects malleable encodings.
    pub fn from_bytes(bytes: &[u8; 32]) -> Option<Fe> {
        let mut b = *bytes;
        b[31] &= 0x7f;
        let limbs = limbs_from_le_bytes(&b);
        if geq4(&limbs, &P) {
            return None;
        }
        Some(Fe(limbs))
    }

    /// Serializes to 32 little-endian bytes (bit 255 clear).
    pub fn to_bytes(self) -> [u8; 32] {
        limbs_to_le_bytes(&self.0)
    }

    /// `true` if the canonical encoding has its least-significant bit set —
    /// the "negative" convention of RFC 8032 point compression.
    pub fn is_negative(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// `true` if this is the additive identity.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Field addition.
    pub fn add(&self, other: &Fe) -> Fe {
        let (mut sum, carry) = add4(&self.0, &other.0);
        // a + b < 2p < 2^256, so a single conditional subtraction suffices;
        // carry can only be set together with sum >= p being impossible
        // (2p - 2 < 2^256), hence carry is always 0 here.
        debug_assert_eq!(carry, 0);
        if geq4(&sum, &P) {
            sum = sub4(&sum, &P).0;
        }
        Fe(sum)
    }

    /// Field subtraction.
    pub fn sub(&self, other: &Fe) -> Fe {
        let (diff, borrow) = sub4(&self.0, &other.0);
        if borrow == 1 {
            Fe(add4(&diff, &P).0)
        } else {
            Fe(diff)
        }
    }

    /// Field negation.
    pub fn neg(&self) -> Fe {
        Fe::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(&self, other: &Fe) -> Fe {
        Fe(reduce_wide(mul_wide(&self.0, &other.0)))
    }

    /// Field squaring.
    pub fn square(&self) -> Fe {
        self.mul(self)
    }

    /// Raises to an arbitrary 256-bit exponent (square-and-multiply).
    pub fn pow(&self, exp: &[u64; 4]) -> Fe {
        let mut result = Fe::ONE;
        for i in (0..256).rev() {
            result = result.square();
            if (exp[i / 64] >> (i % 64)) & 1 == 1 {
                result = result.mul(self);
            }
        }
        result
    }

    /// Multiplicative inverse via Fermat: `self^(p-2)`.
    ///
    /// Returns `Fe::ZERO` for the zero input (which has no inverse); callers
    /// that care must check [`Fe::is_zero`] first.
    pub fn invert(&self) -> Fe {
        // p - 2 = 2^255 - 21
        const P_MINUS_2: [u64; 4] = [
            0xffff_ffff_ffff_ffeb,
            0xffff_ffff_ffff_ffff,
            0xffff_ffff_ffff_ffff,
            0x7fff_ffff_ffff_ffff,
        ];
        self.pow(&P_MINUS_2)
    }
}

/// Reduces a 512-bit product modulo `p = 2^255 - 19`.
///
/// Uses `2^256 ≡ 38 (mod p)` to fold the high half, twice, followed by
/// conditional subtractions.
fn reduce_wide(wide: [u64; 8]) -> [u64; 4] {
    // Fold 1: r = lo + 38 * hi  (fits in 5 limbs).
    let mut r = [0u64; 5];
    let mut carry: u128 = 0;
    for i in 0..4 {
        let t = wide[i] as u128 + 38u128 * wide[i + 4] as u128 + carry;
        r[i] = t as u64;
        carry = t >> 64;
    }
    r[4] = carry as u64;

    // Fold 2: add 38 * r[4] into the low 4 limbs.
    let mut out = [r[0], r[1], r[2], r[3]];
    let mut add = 38u128 * r[4] as u128;
    let mut i = 0;
    while add != 0 && i < 4 {
        let t = out[i] as u128 + (add & 0xffff_ffff_ffff_ffff);
        out[i] = t as u64;
        add = (add >> 64) + (t >> 64);
        i += 1;
    }
    // A final carry out of limb 3 means the value wrapped 2^256 → add 38.
    if add != 0 {
        let t = out[0] as u128 + 38 * add;
        out[0] = t as u64;
        let mut c = (t >> 64) as u64;
        let mut j = 1;
        while c != 0 && j < 4 {
            let (s, c2) = super::bigint::adc(out[j], 0, c);
            out[j] = s;
            c = c2;
            j += 1;
        }
    }

    while geq4(&out, &P) {
        out = sub4(&out, &P).0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_wraps_mod_p() {
        let pm1 = Fe(P).sub(&Fe::ONE); // p-1, i.e. -1
        assert_eq!(pm1.add(&Fe::ONE), Fe::ZERO);
        assert_eq!(pm1.add(&fe(2)), Fe::ONE);
    }

    #[test]
    fn sub_wraps_mod_p() {
        let a = Fe::ZERO.sub(&Fe::ONE); // -1 = p-1
        let (expected, _) = sub4(&P, &[1, 0, 0, 0]);
        assert_eq!(a.0, expected);
    }

    #[test]
    fn mul_matches_repeated_add() {
        let a = fe(0xdead_beef);
        let mut sum = Fe::ZERO;
        for _ in 0..7 {
            sum = sum.add(&a);
        }
        assert_eq!(a.mul(&fe(7)), sum);
    }

    #[test]
    fn two_to_255_is_19_plus_zero() {
        // 2^255 mod p = 19, so (2^128)*(2^127) should reduce to 19.
        let a = Fe([0, 0, 1, 0]); // 2^128
        let b = Fe([0, 0x8000_0000_0000_0000, 0, 0]); // 2^127
        assert_eq!(a.mul(&b), fe(19));
    }

    #[test]
    fn inverse_of_small_values() {
        for v in 1..50u64 {
            let a = fe(v);
            assert_eq!(a.mul(&a.invert()), Fe::ONE, "v = {v}");
        }
    }

    #[test]
    fn invert_zero_is_zero() {
        assert_eq!(Fe::ZERO.invert(), Fe::ZERO);
    }

    #[test]
    fn pow_small_exponent() {
        assert_eq!(fe(3).pow(&[5, 0, 0, 0]), fe(243));
    }

    #[test]
    fn from_bytes_rejects_noncanonical() {
        // p itself is non-canonical.
        let p_bytes = limbs_to_le_bytes(&P);
        assert!(Fe::from_bytes(&p_bytes).is_none());
        // p - 1 is canonical.
        let (pm1, _) = sub4(&P, &[1, 0, 0, 0]);
        assert!(Fe::from_bytes(&limbs_to_le_bytes(&pm1)).is_some());
    }

    #[test]
    fn from_bytes_ignores_sign_bit() {
        let mut one = Fe::ONE.to_bytes();
        one[31] |= 0x80;
        assert_eq!(Fe::from_bytes(&one), Some(Fe::ONE));
    }

    #[test]
    fn negativity_convention() {
        assert!(Fe::ONE.is_negative());
        assert!(!fe(2).is_negative());
        assert!(!Fe::ZERO.is_negative());
    }

    #[test]
    fn bytes_round_trip() {
        let a = fe(123456789).pow(&[3, 1, 0, 0]);
        assert_eq!(Fe::from_bytes(&a.to_bytes()), Some(a));
    }

    #[test]
    fn distributivity_spot_check() {
        let a = fe(0x1234_5678_9abc_def0).pow(&[7, 0, 0, 0]);
        let b = fe(0x0fed_cba9_8765_4321).pow(&[11, 0, 0, 0]);
        let c = fe(0xaaaa_bbbb_cccc_dddd);
        assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
    }
}
