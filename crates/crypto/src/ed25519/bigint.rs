//! Small fixed-width big-integer helpers shared by the curve25519 field and
//! scalar arithmetic. Values are little-endian arrays of `u64` limbs.

/// Adds `a + b + carry`, returning `(sum, carry_out)` with `carry_out ∈ {0,1}`.
#[inline]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtracts `a - b - borrow`, returning `(diff, borrow_out)` with
/// `borrow_out ∈ {0,1}`.
#[inline]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

/// Adds two 256-bit values, returning the 256-bit sum and the carry bit.
pub fn add4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut carry = 0;
    for i in 0..4 {
        let (s, c) = adc(a[i], b[i], carry);
        out[i] = s;
        carry = c;
    }
    (out, carry)
}

/// Subtracts two 256-bit values, returning the difference and the borrow bit.
pub fn sub4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut borrow = 0;
    for i in 0..4 {
        let (d, bo) = sbb(a[i], b[i], borrow);
        out[i] = d;
        borrow = bo;
    }
    (out, borrow)
}

/// `true` if `a >= b` as 256-bit unsigned integers.
pub fn geq4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// Schoolbook 256×256 → 512-bit multiplication.
pub fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let t = out[i + j] as u128 + a[i] as u128 * b[j] as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + 4;
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

/// Interprets 32 little-endian bytes as 4 limbs.
pub fn limbs_from_le_bytes(bytes: &[u8; 32]) -> [u64; 4] {
    let mut out = [0u64; 4];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        out[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    out
}

/// Serializes 4 limbs as 32 little-endian bytes.
pub fn limbs_to_le_bytes(limbs: &[u64; 4]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, l) in limbs.iter().enumerate() {
        out[i * 8..i * 8 + 8].copy_from_slice(&l.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_round_trip() {
        let a = [u64::MAX, 1, 2, 3];
        let b = [5, u64::MAX, 0, 1];
        let (s, c) = add4(&a, &b);
        assert_eq!(c, 0);
        let (d, bo) = sub4(&s, &b);
        assert_eq!(bo, 0);
        assert_eq!(d, a);
    }

    #[test]
    fn add_carries_out() {
        let a = [u64::MAX; 4];
        let (s, c) = add4(&a, &[1, 0, 0, 0]);
        assert_eq!(s, [0, 0, 0, 0]);
        assert_eq!(c, 1);
    }

    #[test]
    fn sub_borrows() {
        let (_, bo) = sub4(&[0, 0, 0, 0], &[1, 0, 0, 0]);
        assert_eq!(bo, 1);
    }

    #[test]
    fn geq_works() {
        assert!(geq4(&[0, 0, 0, 1], &[u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(geq4(&[7, 0, 0, 0], &[7, 0, 0, 0]));
        assert!(!geq4(&[6, 0, 0, 0], &[7, 0, 0, 0]));
    }

    #[test]
    fn mul_small_values() {
        let a = [3, 0, 0, 0];
        let b = [5, 0, 0, 0];
        assert_eq!(mul_wide(&a, &b), [15, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn mul_max_values() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let a = [u64::MAX; 4];
        let got = mul_wide(&a, &a);
        assert_eq!(
            got,
            [1, 0, 0, 0, u64::MAX - 1, u64::MAX, u64::MAX, u64::MAX]
        );
    }

    #[test]
    fn bytes_round_trip() {
        let limbs = [1, u64::MAX, 0xdead_beef, 42];
        assert_eq!(limbs_from_le_bytes(&limbs_to_le_bytes(&limbs)), limbs);
    }
}
