//! CRC-32 (IEEE 802.3) — the checksum guarding on-disk formats.
//!
//! Not a cryptographic primitive: CRC-32 detects torn writes and bit rot
//! in locally-written files (the CA issuance log, RA mirror snapshots),
//! where the threat is a crashed process or a flaky disk, not an
//! adversary. Anything adversarial is covered by the Ed25519 signatures
//! layered above.

/// CRC-32 with the reflected polynomial `0xEDB8_8320` — the classic
/// table-driven byte-at-a-time implementation, self-contained so on-disk
/// formats need no external checksum crate.
///
/// # Examples
///
/// ```
/// assert_eq!(ritm_crypto::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let base = b"issuance record payload".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "byte {i} bit {bit}");
            }
        }
    }
}
