//! Property-based tests for the authenticated dictionary: the dictionary
//! must agree with a trivial set-model for *every* query, and no byte-level
//! tampering of a revocation status may survive client validation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm_crypto::SigningKey;
use ritm_dictionary::persistent::PersistentTree;
use ritm_dictionary::tree::{Leaf, MerkleTree};
use ritm_dictionary::{
    CaDictionary, CaId, MirrorDictionary, ProvenStatus, RevocationStatus, SerialNumber,
};
use std::collections::BTreeSet;

const DELTA: u64 = 10;
const T0: u64 = 1_000_000;

fn setup(batches: &[Vec<u32>]) -> (CaDictionary, MirrorDictionary, BTreeSet<u32>) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut ca = CaDictionary::new(
        CaId::from_name("PropCA"),
        SigningKey::from_seed([1u8; 32]),
        DELTA,
        256,
        &mut rng,
        T0,
    );
    let mut ra = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
    ra.set_delta(DELTA);
    let mut model = BTreeSet::new();
    for (i, batch) in batches.iter().enumerate() {
        let serials: Vec<SerialNumber> = batch.iter().map(|&v| SerialNumber::from_u24(v)).collect();
        let now = T0 + i as u64 + 1;
        if let Some(iss) = ca.insert(&serials, &mut rng, now) {
            ra.apply_issuance(&iss, now).unwrap();
        }
        model.extend(batch.iter().copied().map(|v| v & 0x00ff_ffff));
    }
    // Bring the mirror's freshness up to the validation time used by the
    // properties (T0 + 100); otherwise statuses are *correctly* rejected as
    // stale (>2Δ old).
    let msg = ca.refresh(&mut rng, T0 + 100);
    ra.apply_refresh(&msg, T0 + 100).unwrap();
    (ca, ra, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any insertion history and any query, the RA's proof verifies and
    /// its verdict matches a plain set model.
    #[test]
    fn dictionary_agrees_with_set_model(
        batches in prop::collection::vec(prop::collection::vec(0u32..5_000, 0..40), 0..6),
        queries in prop::collection::vec(0u32..6_000, 1..30),
    ) {
        let (ca, ra, model) = setup(&batches);
        let now = T0 + 100;
        for q in queries {
            let serial = SerialNumber::from_u24(q);
            let status = ra.prove(&serial);
            let outcome = status
                .validate(&serial, &ca.verifying_key(), DELTA, now)
                .expect("honest proof must validate");
            prop_assert_eq!(
                outcome.is_revoked(),
                model.contains(&q),
                "query {} disagreed with model", q
            );
            if let ProvenStatus::Revoked { number } = outcome {
                prop_assert!(number >= 1 && number <= model.len() as u64);
            }
        }
    }

    /// Status messages survive an encode/decode round trip bit-exactly.
    #[test]
    fn status_encoding_round_trips(
        batch in prop::collection::vec(0u32..10_000, 1..200),
        query in 0u32..12_000,
    ) {
        let (_ca, ra, _model) = setup(&[batch]);
        let serial = SerialNumber::from_u24(query);
        let status = ra.prove(&serial);
        let bytes = status.to_bytes();
        let back = RevocationStatus::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, status);
    }

    /// Flipping any single byte of an encoded status must never yield a
    /// *different verdict that still validates*: tampering is either caught
    /// by decode/validation, or decodes back to an equivalent valid status.
    #[test]
    fn tampered_status_never_flips_verdict(
        batch in prop::collection::vec(0u32..2_000, 1..50),
        query in 0u32..2_500,
        flip_byte in any::<u8>(),
        flip_pos_seed in any::<u16>(),
    ) {
        let (ca, ra, model) = setup(&[batch]);
        let serial = SerialNumber::from_u24(query);
        let status = ra.prove(&serial);
        let honest_revoked = model.contains(&query);
        let mut bytes = status.to_bytes();
        let pos = flip_pos_seed as usize % bytes.len();
        if flip_byte == bytes[pos] {
            return Ok(()); // no-op flip
        }
        bytes[pos] = flip_byte;
        if let Ok(tampered) = RevocationStatus::from_bytes(&bytes) {
            if let Ok(outcome) =
                tampered.validate(&serial, &ca.verifying_key(), DELTA, T0 + 100)
            {
                prop_assert_eq!(
                    outcome.is_revoked(),
                    honest_revoked,
                    "tampering at byte {} flipped the verdict", pos
                );
            }
        }
    }

    /// The incremental engine is bit-identical to full rebuilds: for any
    /// sequence of batches, `apply_sorted_batch` produces the same root and
    /// the same audit path for every leaf as a from-scratch `rebuild`, and
    /// the epoch advances with every applied batch.
    #[test]
    fn incremental_batches_match_full_rebuild(
        batches in prop::collection::vec(prop::collection::vec(0u32..10_000, 1..60), 1..8),
    ) {
        let mut incremental = MerkleTree::new();
        let mut number = 0u64;
        let mut epochs_seen = vec![incremental.epoch()];
        for batch in &batches {
            // Canonicalize like the dictionary layer: drop serials already
            // present (and intra-batch duplicates), number in issuance
            // order, sort by serial.
            let mut fresh: Vec<Leaf> = Vec::new();
            for &v in batch {
                let serial = SerialNumber::from_u24(v);
                if incremental.find(&serial).is_none()
                    && fresh.iter().all(|l| l.serial != serial)
                {
                    number += 1;
                    fresh.push(Leaf::new(serial, number));
                }
            }
            fresh.sort_by_key(|l| l.serial);
            let epoch_before = incremental.epoch();
            let fast_path = incremental.apply_sorted_batch(&fresh);
            prop_assert!(fast_path, "canonical batches must take the incremental path");
            if fresh.is_empty() {
                prop_assert_eq!(incremental.epoch(), epoch_before);
            } else {
                prop_assert!(incremental.epoch() > epoch_before, "epoch must advance per batch");
            }
            epochs_seen.push(incremental.epoch());

            // Reference: identical leaves, rebuilt from scratch.
            let mut reference = MerkleTree::new();
            reference.extend_leaves(incremental.leaves().iter().copied());
            reference.rebuild();
            prop_assert_eq!(reference.root(), incremental.root());
            prop_assert_eq!(reference.len(), incremental.len());
            for i in 0..incremental.len() {
                prop_assert_eq!(
                    reference.audit_path(i),
                    incremental.audit_path(i),
                    "audit path {} diverged after batch", i
                );
            }
        }
        prop_assert!(
            epochs_seen.windows(2).all(|w| w[0] <= w[1]),
            "epoch must never regress: {:?}", epochs_seen
        );
    }

    /// Rolling back a batch (`remove_sorted_batch`) restores the exact
    /// pre-batch root and audit paths — the mirror's verify-then-commit
    /// guarantee without an O(n) scratch clone.
    #[test]
    fn batch_rollback_restores_previous_tree(
        initial in prop::collection::vec(0u32..5_000, 1..80),
        batch in prop::collection::vec(5_000u32..6_000, 1..30),
    ) {
        let mut tree = MerkleTree::new();
        let mut leaves: Vec<Leaf> = initial
            .iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .enumerate()
            .map(|(i, &v)| Leaf::new(SerialNumber::from_u24(v), i as u64 + 1))
            .collect();
        leaves.sort_by_key(|l| l.serial);
        tree.apply_sorted_batch(&leaves);
        let root_before = tree.root();
        let paths_before: Vec<_> = (0..tree.len()).map(|i| tree.audit_path(i)).collect();

        let fresh: Vec<Leaf> = batch
            .iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .enumerate()
            .map(|(i, &v)| Leaf::new(SerialNumber::from_u24(v), 1_000 + i as u64))
            .collect();
        tree.apply_sorted_batch(&fresh);
        prop_assert_ne!(tree.root(), root_before);
        let serials: Vec<SerialNumber> = fresh.iter().map(|l| l.serial).collect();
        let removed = tree.remove_sorted_batch(&serials);
        prop_assert_eq!(removed, fresh.len());
        prop_assert_eq!(tree.root(), root_before);
        for (i, path) in paths_before.iter().enumerate() {
            prop_assert_eq!(&tree.audit_path(i), path);
        }
    }

    /// A `MultiProof` over any query set is bit-equivalent to verifying each
    /// serial's individual audit path against the same root: same verdict
    /// per serial (presence *and* absence), same acceptance — and after the
    /// dictionary advances an epoch, both the multiproof and every
    /// individual proof are rejected against the new root.
    #[test]
    fn multiproof_equivalent_to_individual_paths(
        batch in prop::collection::vec(0u32..5_000, 0..100),
        queries in prop::collection::vec(0u32..6_000, 1..12),
        growth in prop::collection::vec(6_000u32..6_500, 1..4),
    ) {
        // Canonical tree construction (unique serials, issuance numbering).
        let mut tree = MerkleTree::new();
        let mut number = 0u64;
        let mut fresh: Vec<Leaf> = Vec::new();
        for &v in &batch {
            let serial = SerialNumber::from_u24(v);
            if fresh.iter().all(|l| l.serial != serial) {
                number += 1;
                fresh.push(Leaf::new(serial, number));
            }
        }
        fresh.sort_by_key(|l| l.serial);
        tree.apply_sorted_batch(&fresh);

        let serials: Vec<SerialNumber> =
            queries.iter().map(|&v| SerialNumber::from_u24(v)).collect();
        let root = tree.root();
        let size = tree.len() as u64;

        let mp = ritm_dictionary::MultiProof::generate(&tree, &serials);
        let multi_statuses = mp
            .verify(&serials, &root, size)
            .expect("honest multiproof must verify");
        prop_assert_eq!(multi_statuses.len(), serials.len());
        for (serial, multi_status) in serials.iter().zip(&multi_statuses) {
            let single = ritm_dictionary::RevocationProof::generate(&tree, serial)
                .verify(serial, &root, size)
                .expect("honest single proof must verify");
            prop_assert_eq!(*multi_status, single, "serial {:?} diverged", serial);
        }

        // Wire round trip is bit-exact and size-exact.
        let bytes = mp.to_bytes();
        prop_assert_eq!(bytes.len(), mp.encoded_len());
        let back = ritm_dictionary::MultiProof::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &mp);

        // Cross-epoch rejection: grow the dictionary, and the old proof
        // must fail against the new root exactly like every old single
        // proof does.
        let singles: Vec<_> = serials
            .iter()
            .map(|s| ritm_dictionary::RevocationProof::generate(&tree, s))
            .collect();
        let grow: Vec<Leaf> = growth
            .iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .enumerate()
            .map(|(i, &v)| Leaf::new(SerialNumber::from_u24(v), number + i as u64 + 1))
            .collect();
        tree.apply_sorted_batch(&grow);
        let new_root = tree.root();
        let new_size = tree.len() as u64;
        prop_assert!(
            mp.verify(&serials, &new_root, new_size).is_err(),
            "stale multiproof accepted across epochs"
        );
        for (serial, single) in serials.iter().zip(&singles) {
            prop_assert!(
                single.verify(serial, &new_root, new_size).is_err(),
                "stale single proof accepted across epochs for {:?}", serial
            );
        }
    }

    /// The structurally-shared tree is bit-equivalent to the dense one:
    /// over a random interleaving of batches, rollbacks, and publishes
    /// (clones), both trees produce identical roots, audit paths, and
    /// multiproof bytes — and every published snapshot keeps serving its
    /// frozen epoch's exact root and paths while the writer keeps mutating.
    #[test]
    fn persistent_tree_matches_dense_over_interleavings(
        rounds in prop::collection::vec(
            (
                prop::collection::vec(0u32..8_000, 0..60), // batch serials
                any::<u8>(),                               // action selector
            ),
            1..10,
        ),
        queries in prop::collection::vec(0u32..9_000, 1..10),
    ) {
        let mut dense = MerkleTree::new();
        let mut persistent = PersistentTree::new();
        let mut number = 0u64;
        // Published snapshots with the dense root frozen at publish time.
        let mut published: Vec<(PersistentTree, ritm_crypto::digest::Digest20, usize)> = Vec::new();
        let serials_of = |q: &[u32]| -> Vec<SerialNumber> {
            q.iter().map(|&v| SerialNumber::from_u24(v)).collect()
        };

        for (batch, action) in &rounds {
            // Canonicalize like the dictionary layer: unique fresh serials,
            // numbered in issuance order, sorted by serial.
            let mut fresh: Vec<Leaf> = Vec::new();
            for &v in batch {
                let serial = SerialNumber::from_u24(v);
                if dense.find(&serial).is_none() && fresh.iter().all(|l| l.serial != serial) {
                    number += 1;
                    fresh.push(Leaf::new(serial, number));
                }
            }
            fresh.sort_by_key(|l| l.serial);
            prop_assert_eq!(dense.apply_sorted_batch(&fresh), persistent.apply_sorted_batch(&fresh));

            match action % 3 {
                0 => {
                    // Publish: freeze the persistent tree (O(chunks) clone).
                    published.push((persistent.clone(), dense.root(), dense.len()));
                }
                1 if !fresh.is_empty() => {
                    // Roll the batch straight back out of both trees.
                    let serials: Vec<SerialNumber> = fresh.iter().map(|l| l.serial).collect();
                    prop_assert_eq!(
                        dense.remove_sorted_batch(&serials),
                        persistent.remove_sorted_batch(&serials)
                    );
                }
                _ => {}
            }

            // Bit-equivalence after every round.
            prop_assert_eq!(dense.root(), persistent.root());
            prop_assert_eq!(dense.len(), persistent.len());
            for i in 0..dense.len() {
                prop_assert_eq!(dense.audit_path(i), persistent.audit_path(i), "path {}", i);
            }
            let qs = serials_of(&queries);
            let mp_dense = ritm_dictionary::MultiProof::generate(&dense, &qs);
            let mp_persistent = ritm_dictionary::MultiProof::generate(&persistent, &qs);
            prop_assert_eq!(
                mp_dense.to_bytes(),
                mp_persistent.to_bytes(),
                "multiproof bytes diverged"
            );
            for q in &qs {
                prop_assert_eq!(
                    ritm_dictionary::RevocationProof::generate(&dense, q).to_bytes(),
                    ritm_dictionary::RevocationProof::generate(&persistent, q).to_bytes()
                );
            }
        }

        // Every snapshot published along the way still serves its frozen
        // state — later copy-on-write mutations must never reach into a
        // shared chunk.
        for (snap, root, len) in &published {
            prop_assert_eq!(snap.root(), *root);
            prop_assert_eq!(snap.len(), *len);
            if *len > 0 {
                let i = len - 1;
                let path = snap.audit_path(i);
                let got = ritm_dictionary::tree::root_from_path(
                    i,
                    *len,
                    snap.leaf(i).hash(),
                    &path,
                );
                prop_assert_eq!(got, Some(*root), "published snapshot path broke");
            }
        }
    }

    /// A replayed (stale) signed root from before the latest insert must not
    /// validate a serial revoked afterwards as "not revoked" *with current
    /// freshness* — the freshness statement is bound to the new root.
    #[test]
    fn stale_root_cannot_masquerade_as_fresh(
        first in prop::collection::vec(0u32..1_000, 1..20),
        victim in 1_000u32..1_100,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ca = CaDictionary::new(
            CaId::from_name("ReplayCA"),
            SigningKey::from_seed([2u8; 32]),
            DELTA,
            256,
            &mut rng,
            T0,
        );
        let mut ra = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        ra.set_delta(DELTA);
        let serials: Vec<SerialNumber> = first.iter().map(|&v| SerialNumber::from_u24(v)).collect();
        if let Some(iss) = ca.insert(&serials, &mut rng, T0 + 1) {
            ra.apply_issuance(&iss, T0 + 1).unwrap();
        }
        // Snapshot the old status for the victim before it is revoked.
        let victim_serial = SerialNumber::from_u24(victim);
        let old_status = ra.prove(&victim_serial);

        // CA revokes the victim; much later, the old status must be stale.
        ca.insert(&[victim_serial], &mut rng, T0 + 2);
        let much_later = T0 + 2 + 3 * DELTA;
        let res = old_status.validate(&victim_serial, &ca.verifying_key(), DELTA, much_later);
        prop_assert!(res.is_err(), "stale absence status accepted at +3Δ");
    }
}
