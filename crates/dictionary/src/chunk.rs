//! Copy-on-write chunked sequences — the storage layer of the persistent
//! tree ([`crate::persistent`]).
//!
//! A [`ChunkedVec`] stores its elements in fixed-size chunks, each behind an
//! [`Arc`]. Cloning the sequence clones only the chunk *spine* (one `Arc`
//! bump per chunk); mutating an element or truncating inside a chunk
//! materializes a private copy of just that chunk. Two sequences that share
//! history therefore share every chunk neither has touched — which is what
//! turns snapshot publication from an O(n) level copy into O(chunks) `Arc`
//! bumps, with O(dirty chunks) copying paid by the *writer* at mutation
//! time.
//!
//! The chunk size trades sharing granularity against spine overhead: at
//! [`CHUNK`] = 1024 a 1M-leaf dictionary has ~1k leaf-level chunks (an 8 KB
//! spine) and a 100-leaf *append* batch — the common issuance pattern,
//! fresh serials sorting after old ones — dirties at most two chunks per
//! level. A batch landing mid-tree (or a rollback) rewrites each level's
//! suffix from the first changed position, dirtying
//! O((n − dirty_from)/CHUNK) chunks per level: values are copied but never
//! rehashed, and everything left of the front stays shared.
//!
//! Every slot materialized by a copy-on-write clone, push, or truncation is
//! counted in a thread-local tally ([`slots_materialized`]) so tests and
//! benches can assert the O(b·log n + chunks) publish cost instead of
//! trusting it.

use std::cell::Cell;
use std::sync::Arc;

/// Elements per chunk. See the module docs for the size rationale.
pub const CHUNK: usize = 1024;

thread_local! {
    static MATERIALIZED: Cell<u64> = const { Cell::new(0) };
}

/// Total element slots this thread has materialized (freshly written or
/// copied by a copy-on-write clone) across all [`ChunkedVec`]s. Monotonic;
/// measure costs as deltas. Thread-local so concurrent tests do not
/// interfere.
pub fn slots_materialized() -> u64 {
    MATERIALIZED.with(Cell::get)
}

fn note(slots: usize) {
    MATERIALIZED.with(|c| c.set(c.get() + slots as u64));
}

/// A chunked sequence with `Arc`-shared, copy-on-write chunks.
///
/// Invariant: every chunk except the last holds exactly [`CHUNK`] elements;
/// the last holds `1..=CHUNK`; an empty sequence has no chunks.
#[derive(Debug, Clone)]
pub struct ChunkedVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T> Default for ChunkedVec<T> {
    fn default() -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Clone> ChunkedVec<T> {
    /// An empty sequence.
    pub fn new() -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    pub fn get(&self, index: usize) -> &T {
        debug_assert!(index < self.len, "chunked index out of bounds");
        &self.chunks[index / CHUNK][index % CHUNK]
    }

    /// Chunks this sequence shares with `other` (same `Arc`), for sharing
    /// assertions in tests.
    pub fn shared_chunks_with(&self, other: &Self) -> usize {
        self.chunks
            .iter()
            .zip(&other.chunks)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Number of chunks in the spine.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// A unique (copy-on-write) reference to chunk `ci`.
    fn chunk_mut(&mut self, ci: usize) -> &mut Vec<T> {
        let arc = &mut self.chunks[ci];
        if Arc::get_mut(arc).is_none() {
            note(arc.len());
            *arc = Arc::new(arc.as_ref().clone());
        }
        Arc::get_mut(arc).expect("chunk unique after copy-on-write")
    }

    /// Appends one element (materializing at most the tail chunk).
    pub fn push(&mut self, value: T) {
        if self.len.is_multiple_of(CHUNK) {
            let mut chunk = Vec::with_capacity(CHUNK);
            chunk.push(value);
            self.chunks.push(Arc::new(chunk));
        } else {
            let ci = self.chunks.len() - 1;
            self.chunk_mut(ci).push(value);
        }
        self.len += 1;
        note(1);
    }

    /// Appends every element of `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = T>) {
        for v in iter {
            self.push(v);
        }
    }

    /// Shortens the sequence to `new_len` elements. Whole dropped chunks
    /// cost nothing; a cut inside a shared chunk copies only the kept
    /// prefix.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        let keep = new_len.div_ceil(CHUNK);
        self.chunks.truncate(keep);
        if keep > 0 {
            let tail_len = new_len - (keep - 1) * CHUNK;
            let ci = keep - 1;
            if self.chunks[ci].len() != tail_len {
                match Arc::get_mut(&mut self.chunks[ci]) {
                    Some(chunk) => chunk.truncate(tail_len),
                    None => {
                        note(tail_len);
                        let prefix = self.chunks[ci][..tail_len].to_vec();
                        self.chunks[ci] = Arc::new(prefix);
                    }
                }
            }
        }
        self.len = new_len;
    }

    /// Drops every element.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Index of the first element for which `pred` is false (all elements
    /// satisfying `pred` must precede all that do not, as with
    /// `slice::partition_point`).
    pub fn partition_point(&self, pred: impl Fn(&T) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.get(mid)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Binary-searches with a comparator, as `slice::binary_search_by`.
    pub fn binary_search_by(&self, f: impl Fn(&T) -> core::cmp::Ordering) -> Result<usize, usize> {
        use core::cmp::Ordering;
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match f(self.get(mid)) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Approximate heap bytes held by the chunks (shared chunks counted in
    /// full — this measures reachable storage, not unique ownership).
    pub fn heap_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.capacity() * core::mem::size_of::<T>())
            .sum::<usize>()
            + self.chunks.capacity() * core::mem::size_of::<Arc<Vec<T>>>()
    }
}

impl<T: Clone> FromIterator<T> for ChunkedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = ChunkedVec::new();
        out.extend(iter);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize) -> ChunkedVec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn push_get_iter_round_trip() {
        let v = filled(2 * CHUNK + 37);
        assert_eq!(v.len(), 2 * CHUNK + 37);
        assert_eq!(*v.get(0), 0);
        assert_eq!(*v.get(CHUNK), CHUNK as u32);
        assert_eq!(*v.get(2 * CHUNK + 36), (2 * CHUNK + 36) as u32);
        let collected: Vec<u32> = v.iter().copied().collect();
        assert_eq!(collected.len(), v.len());
        assert!(collected.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn clone_shares_every_chunk() {
        let v = filled(3 * CHUNK + 5);
        let before = slots_materialized();
        let c = v.clone();
        assert_eq!(slots_materialized(), before, "clone materializes nothing");
        assert_eq!(c.shared_chunks_with(&v), v.chunk_count());
    }

    #[test]
    fn mutation_after_clone_copies_only_dirty_chunks() {
        let mut v = filled(4 * CHUNK);
        let snap = v.clone();
        let before = slots_materialized();
        v.push(99); // new tail chunk: 1 fresh slot, no copy
        assert_eq!(slots_materialized() - before, 1);
        assert_eq!(snap.shared_chunks_with(&v), 4, "old chunks still shared");
        assert_eq!(snap.len(), 4 * CHUNK);
        assert_eq!(*v.get(4 * CHUNK), 99);

        // Truncating inside a shared chunk copies only that chunk's prefix.
        let before = slots_materialized();
        v.truncate(CHUNK + 10);
        assert!(slots_materialized() - before <= 10);
        assert_eq!(snap.shared_chunks_with(&v), 1);
        // The retained snapshot still sees every original element.
        assert_eq!(*snap.get(4 * CHUNK - 1), (4 * CHUNK - 1) as u32);
    }

    #[test]
    fn truncate_then_extend_matches_vec() {
        let mut v = filled(2 * CHUNK + 100);
        let _keep = v.clone();
        v.truncate(CHUNK - 3);
        v.extend(1000..1100u32);
        let expect: Vec<u32> = (0..(CHUNK - 3) as u32).chain(1000..1100).collect();
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), expect);
        v.truncate(0);
        assert!(v.is_empty());
        assert_eq!(v.chunk_count(), 0);
    }

    #[test]
    fn search_matches_slice_behaviour() {
        let v = filled(CHUNK + 77);
        assert_eq!(v.partition_point(|&x| x < 500), 500);
        assert_eq!(v.partition_point(|&x| x < 1_000_000), v.len());
        assert_eq!(v.binary_search_by(|x| x.cmp(&600)), Ok(600));
        assert_eq!(v.binary_search_by(|x| x.cmp(&1_000_000)), Err(v.len()));
    }
}
