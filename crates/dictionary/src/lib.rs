//! # ritm-dictionary — RITM's authenticated dictionary (paper §III, Fig. 2)
//!
//! The central data structure of RITM: every CA maintains an append-only,
//! sorted-leaf hash tree of its revocations; every RA mirrors it; clients
//! verify logarithmic presence/absence proofs against CA-signed roots kept
//! fresh with hash-chain statements.
//!
//! * [`serial`] — certificate serial numbers (the leaf keys);
//! * [`tree`] — the sorted-leaf Merkle tree: epoch-aware, with incremental
//!   batch application ([`tree::MerkleTree::apply_sorted_batch`]) and audit
//!   paths;
//! * [`engine`] — the [`DictionaryEngine`] / [`MirrorEngine`] traits
//!   (Fig. 2 `insert`/`refresh`/`update`/`prove` plus `root` and `epoch`)
//!   that CA, RA, and client code program against;
//! * [`chunk`] / [`persistent`] — the copy-on-write chunked storage and the
//!   structurally-shared [`PersistentTree`] mirrors publish snapshots from
//!   in O(chunks) instead of O(n);
//! * [`parallel`] — the scoped-thread [`HashPool`] that fans tree hashing
//!   out across cores;
//! * [`snapshot`] — immutable, epoch-stamped [`DictionarySnapshot`]s
//!   published RCU-style through [`SnapshotCell`]s for lock-free proof
//!   serving;
//! * [`proof`] — presence and absence proofs, plus the compressed
//!   [`MultiProof`] for certificate chains;
//! * [`root`] — signed roots, Eq. (1);
//! * [`freshness`] — hash-chain freshness statements, Eq. (2);
//! * [`dictionary`] — [`CaDictionary`] (`insert`/`refresh`) and
//!   [`MirrorDictionary`] (`update`/`prove`), plus [`RevocationStatus`],
//!   Eq. (3);
//! * [`consistency`] — equivocation detection and misbehavior proofs;
//! * [`sharding`] — expiry-based dictionary splitting (§VIII).
//!
//! # Examples
//!
//! End-to-end CA → RA → client flow:
//!
//! ```
//! use ritm_dictionary::{CaDictionary, CaId, MirrorDictionary, SerialNumber};
//! use ritm_crypto::SigningKey;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut ca = CaDictionary::new(
//!     CaId::from_name("ExampleCA"),
//!     SigningKey::from_seed([1u8; 32]),
//!     10,   // Δ = 10 s
//!     8640, // one day of periods per hash chain
//!     &mut rng,
//!     1_000_000,
//! );
//! let mut ra = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root())?;
//! ra.set_delta(10);
//!
//! // CA revokes a certificate and the RA mirrors it.
//! let bad = SerialNumber::from_u24(0x073e10);
//! let issuance = ca.insert(&[bad], &mut rng, 1_000_001).expect("new revocation");
//! ra.apply_issuance(&issuance, 1_000_001)?;
//!
//! // A client validates the RA's proof for some other certificate.
//! let queried = SerialNumber::from_u24(0x111111);
//! let status = ra.prove(&queried);
//! let outcome = status.validate(&queried, &ca.verifying_key(), 10, 1_000_002)?;
//! assert!(!outcome.is_revoked());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod chunk;
pub mod consistency;
pub mod dictionary;
pub mod engine;
pub mod freshness;
pub mod parallel;
pub mod persistent;
pub mod proof;
pub mod root;
pub mod serial;
pub mod sharding;
pub mod snapshot;
pub mod tree;

pub use dictionary::{
    CaDictionary, MirrorDictionary, MultiRevocationStatus, RefreshMessage, RevocationIssuance,
    RevocationStatus, StatusError, UpdateError,
};
pub use engine::{DictionaryEngine, EngineError, MirrorEngine, UpdateMessage};
pub use freshness::{FreshnessError, FreshnessStatement};
pub use parallel::HashPool;
pub use persistent::PersistentTree;
pub use proof::{MultiProof, PresenceProof, ProofError, ProvenStatus, RevocationProof};
pub use root::{CaId, SignedRoot};
pub use serial::{SerialError, SerialNumber};
pub use sharding::ShardedCa;
pub use snapshot::{DictionarySnapshot, SnapshotCell};
