//! Presence and absence proofs over the authenticated dictionary.
//!
//! The prover (an RA) is untrusted: a client verifies every proof against a
//! CA-signed root (paper §III, "Revocation Lists"). Because leaves are sorted
//! by serial, absence is proven either by an adjacent pair of leaves
//! enclosing the queried serial, or by a boundary leaf, or — for an empty
//! dictionary — by the well-known empty root.

use crate::serial::SerialNumber;
use crate::tree::{empty_root, node_hash, root_from_path, Leaf, TreeReader};
use ritm_crypto::digest::Digest20;
use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// An audit path proving one leaf's membership at a given index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceProof {
    /// The leaf being proven.
    pub leaf: Leaf,
    /// Index of the leaf in the sorted leaf sequence.
    pub index: u64,
    /// Bottom-up sibling hashes.
    pub path: Vec<Digest20>,
}

impl PresenceProof {
    /// Builds the proof for leaf `index` of `tree` (dense or persistent —
    /// any [`TreeReader`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the tree needs a rebuild.
    pub fn generate<T: TreeReader>(tree: &T, index: usize) -> Self {
        PresenceProof {
            leaf: tree.leaf(index),
            index: index as u64,
            path: tree.audit_path(index),
        }
    }

    /// Recomputes the root this proof commits to, given the tree size.
    pub fn implied_root(&self, size: u64) -> Option<Digest20> {
        root_from_path(
            self.index as usize,
            size as usize,
            self.leaf.hash(),
            &self.path,
        )
    }

    /// Exact encoded size in bytes, computed without serializing — used to
    /// pre-size [`Writer`] buffers on the proof-injection hot path.
    pub fn encoded_len(&self) -> usize {
        8 + 1 + self.leaf.serial.len() + 8 + 2 + 20 * self.path.len()
    }

    fn encode(&self, w: &mut Writer) {
        w.u64(self.index);
        w.vec8(self.leaf.serial.as_bytes());
        w.u64(self.leaf.number);
        w.u16(self.path.len() as u16);
        for d in &self.path {
            w.bytes(d.as_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = r.u64("presence index")?;
        let serial_bytes = r.vec8("presence serial")?;
        let serial = SerialNumber::new(serial_bytes)
            .map_err(|_| DecodeError::new("invalid serial", r.position()))?;
        let number = r.u64("presence number")?;
        let path_len = r.u16("presence path len")? as usize;
        r.check_count(path_len, 20, "presence path exceeds buffer")?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(Digest20::from_bytes(r.array("presence path digest")?));
        }
        Ok(PresenceProof {
            leaf: Leaf { serial, number },
            index,
            path,
        })
    }
}

/// A proof that a serial is or is not in the dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevocationProof {
    /// The serial is revoked: membership proof of its leaf.
    Present(PresenceProof),
    /// The dictionary holds no revocations at all.
    AbsentEmpty,
    /// The serial sorts before every revoked serial; proof of leaf 0.
    AbsentBelow(PresenceProof),
    /// The serial sorts after every revoked serial; proof of the last leaf.
    AbsentAbove(PresenceProof),
    /// The serial falls strictly between two adjacent leaves.
    AbsentBetween(PresenceProof, PresenceProof),
}

/// Outcome of a successful proof verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenStatus {
    /// The certificate is revoked (presence proven).
    Revoked {
        /// The revocation number assigned by the CA.
        number: u64,
    },
    /// The certificate is not revoked (absence proven).
    NotRevoked,
}

impl ProvenStatus {
    /// Convenience predicate.
    pub fn is_revoked(&self) -> bool {
        matches!(self, ProvenStatus::Revoked { .. })
    }
}

/// Why a proof failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofError {
    /// The recomputed root differs from the trusted root.
    RootMismatch,
    /// The audit path shape does not match the claimed index/size.
    MalformedPath,
    /// The proven leaf does not relate to the queried serial as claimed
    /// (e.g. an "absent" proof whose bounds do not enclose the serial).
    SerialOutOfRange,
    /// A boundary proof used an interior index, or adjacency does not hold.
    WrongIndex,
    /// An `AbsentEmpty` proof was offered for a non-empty dictionary.
    NotEmpty,
}

impl core::fmt::Display for ProofError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ProofError::RootMismatch => "recomputed root does not match trusted root",
            ProofError::MalformedPath => "audit path inconsistent with index and tree size",
            ProofError::SerialOutOfRange => "proven leaves do not bound the queried serial",
            ProofError::WrongIndex => "proof indices violate boundary/adjacency requirements",
            ProofError::NotEmpty => "empty-dictionary proof for a non-empty dictionary",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProofError {}

impl RevocationProof {
    /// Builds the proof for `serial` against `tree` (RA-side `prove`,
    /// Fig. 2). Works over any [`TreeReader`] backend.
    pub fn generate<T: TreeReader>(tree: &T, serial: &SerialNumber) -> Self {
        if tree.is_empty() {
            return RevocationProof::AbsentEmpty;
        }
        if let Some(idx) = tree.find(serial) {
            return RevocationProof::Present(PresenceProof::generate(tree, idx));
        }
        let lb = tree.lower_bound(serial);
        if lb == 0 {
            RevocationProof::AbsentBelow(PresenceProof::generate(tree, 0))
        } else if lb == tree.len() {
            RevocationProof::AbsentAbove(PresenceProof::generate(tree, tree.len() - 1))
        } else {
            RevocationProof::AbsentBetween(
                PresenceProof::generate(tree, lb - 1),
                PresenceProof::generate(tree, lb),
            )
        }
    }

    /// Verifies this proof for `serial` against a trusted `(root, size)`
    /// pair taken from a validated signed root.
    ///
    /// # Errors
    ///
    /// Returns a [`ProofError`] describing the first check that failed.
    pub fn verify(
        &self,
        serial: &SerialNumber,
        root: &Digest20,
        size: u64,
    ) -> Result<ProvenStatus, ProofError> {
        let check_path = |p: &PresenceProof| -> Result<(), ProofError> {
            let implied = p.implied_root(size).ok_or(ProofError::MalformedPath)?;
            if implied == *root {
                Ok(())
            } else {
                Err(ProofError::RootMismatch)
            }
        };
        match self {
            RevocationProof::Present(p) => {
                if p.leaf.serial != *serial {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(p)?;
                Ok(ProvenStatus::Revoked {
                    number: p.leaf.number,
                })
            }
            RevocationProof::AbsentEmpty => {
                if size != 0 {
                    return Err(ProofError::NotEmpty);
                }
                if *root != empty_root() {
                    return Err(ProofError::RootMismatch);
                }
                Ok(ProvenStatus::NotRevoked)
            }
            RevocationProof::AbsentBelow(p) => {
                if p.index != 0 {
                    return Err(ProofError::WrongIndex);
                }
                if *serial >= p.leaf.serial {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(p)?;
                Ok(ProvenStatus::NotRevoked)
            }
            RevocationProof::AbsentAbove(p) => {
                if size == 0 || p.index != size - 1 {
                    return Err(ProofError::WrongIndex);
                }
                if *serial <= p.leaf.serial {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(p)?;
                Ok(ProvenStatus::NotRevoked)
            }
            RevocationProof::AbsentBetween(lo, hi) => {
                if lo.index + 1 != hi.index {
                    return Err(ProofError::WrongIndex);
                }
                if !(lo.leaf.serial < *serial && *serial < hi.leaf.serial) {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(lo)?;
                check_path(hi)?;
                Ok(ProvenStatus::NotRevoked)
            }
        }
    }

    /// Serializes the proof (part of the revocation status piggybacked onto
    /// TLS traffic; its size drives the §VII-D communication overhead). The
    /// buffer is pre-sized to [`RevocationProof::encoded_len`], so encoding
    /// never reallocates.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        match self {
            RevocationProof::Present(p) => {
                w.u8(0);
                p.encode(&mut w);
            }
            RevocationProof::AbsentEmpty => {
                w.u8(1);
            }
            RevocationProof::AbsentBelow(p) => {
                w.u8(2);
                p.encode(&mut w);
            }
            RevocationProof::AbsentAbove(p) => {
                w.u8(3);
                p.encode(&mut w);
            }
            RevocationProof::AbsentBetween(lo, hi) => {
                w.u8(4);
                lo.encode(&mut w);
                hi.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Parses a proof from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8("proof tag")?;
        let proof = match tag {
            0 => RevocationProof::Present(PresenceProof::decode(&mut r)?),
            1 => RevocationProof::AbsentEmpty,
            2 => RevocationProof::AbsentBelow(PresenceProof::decode(&mut r)?),
            3 => RevocationProof::AbsentAbove(PresenceProof::decode(&mut r)?),
            4 => RevocationProof::AbsentBetween(
                PresenceProof::decode(&mut r)?,
                PresenceProof::decode(&mut r)?,
            ),
            _ => return Err(DecodeError::new("unknown proof tag", 0)),
        };
        r.finish("proof trailing bytes")?;
        Ok(proof)
    }

    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            RevocationProof::Present(p)
            | RevocationProof::AbsentBelow(p)
            | RevocationProof::AbsentAbove(p) => p.encoded_len(),
            RevocationProof::AbsentEmpty => 0,
            RevocationProof::AbsentBetween(lo, hi) => lo.encoded_len() + hi.encoded_len(),
        }
    }
}

/// A compressed proof for a *set* of serials against one root.
///
/// A certificate chain of k serials would otherwise ship k independent
/// [`RevocationProof`]s whose audit paths share most of their sibling
/// nodes (all paths meet at the root, and an absence proof's adjacent pair
/// shares its entire path above level 0). A `MultiProof` carries the union
/// of the leaves needed to answer every query — the revoked leaf for a
/// present serial; the enclosing/boundary leaves for an absent one — plus
/// each sibling hash **once**, in a canonical bottom-up order. This is the
/// §VII-D communication-overhead optimization for multi-certificate chains
/// (Fig. 7).
///
/// Verification recomputes the root in one bottom-up sweep that combines
/// included nodes with each other where possible and consumes the sibling
/// stream otherwise, then answers each query from the authenticated leaf
/// set with exactly the same presence/absence rules as the single-serial
/// proofs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiProof {
    /// Included leaves with their indices, strictly ascending by index.
    pub leaves: Vec<(u64, Leaf)>,
    /// Deduplicated sibling hashes, bottom-up, ascending index per level.
    pub siblings: Vec<Digest20>,
}

impl MultiProof {
    /// Builds the compressed proof for `serials` against `tree`.
    ///
    /// Queries may arrive in any order and may repeat; the needed leaves
    /// are deduplicated. For an empty tree the proof is empty (the
    /// [`empty_root`] answers every query).
    ///
    /// # Panics
    ///
    /// Panics if the tree needs a rebuild (same contract as
    /// [`RevocationProof::generate`]).
    pub fn generate<T: TreeReader>(tree: &T, serials: &[SerialNumber]) -> Self {
        let mut needed = std::collections::BTreeMap::new();
        if tree.is_empty() {
            return MultiProof::default();
        }
        for serial in serials {
            if let Some(idx) = tree.find(serial) {
                needed.insert(idx, tree.leaf(idx));
            } else {
                let lb = tree.lower_bound(serial);
                if lb == 0 {
                    needed.insert(0, tree.leaf(0));
                } else if lb == tree.len() {
                    needed.insert(tree.len() - 1, tree.leaf(tree.len() - 1));
                } else {
                    needed.insert(lb - 1, tree.leaf(lb - 1));
                    needed.insert(lb, tree.leaf(lb));
                }
            }
        }
        let mut frontier: Vec<usize> = needed.keys().copied().collect();
        let mut siblings = Vec::new();
        let mut level_len = tree.len();
        let mut level = 0usize;
        while level_len > 1 {
            let mut next = Vec::with_capacity(frontier.len());
            let mut i = 0;
            while i < frontier.len() {
                let idx = frontier[i];
                let sib = idx ^ 1;
                if i + 1 < frontier.len() && frontier[i + 1] == sib {
                    i += 2; // both children included: combined internally
                } else {
                    if sib < level_len {
                        siblings.push(tree.level_node(level, sib));
                    }
                    i += 1;
                }
                next.push(idx / 2);
            }
            next.dedup();
            frontier = next;
            level_len = level_len.div_ceil(2);
            level += 1;
        }
        MultiProof {
            leaves: needed.into_iter().map(|(i, l)| (i as u64, l)).collect(),
            siblings,
        }
    }

    /// Verifies the proof for `serials` against a trusted `(root, size)`
    /// pair, returning one [`ProvenStatus`] per query, aligned with the
    /// input order.
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`ProofError`].
    pub fn verify(
        &self,
        serials: &[SerialNumber],
        root: &Digest20,
        size: u64,
    ) -> Result<Vec<ProvenStatus>, ProofError> {
        if serials.is_empty() {
            // Nothing is claimed, so there is nothing to check — and
            // `generate` over an empty query set produces an empty proof,
            // which must round-trip.
            return Ok(Vec::new());
        }
        if size == 0 {
            if !self.leaves.is_empty() || !self.siblings.is_empty() {
                return Err(ProofError::MalformedPath);
            }
            if *root != empty_root() {
                return Err(ProofError::RootMismatch);
            }
            return Ok(vec![ProvenStatus::NotRevoked; serials.len()]);
        }
        // Structural sanity: indices strictly ascending and in range, and
        // leaf serials strictly ascending in index order (an honest sorted
        // tree guarantees this; any violation is a forgery).
        if self.leaves.is_empty() {
            return Err(ProofError::MalformedPath);
        }
        for w in self.leaves.windows(2) {
            if w[0].0 >= w[1].0 || w[0].1.serial >= w[1].1.serial {
                return Err(ProofError::WrongIndex);
            }
        }
        if self.leaves.last().expect("non-empty").0 >= size {
            return Err(ProofError::MalformedPath);
        }

        // One bottom-up sweep authenticates every included leaf at once.
        let mut nodes: Vec<(usize, Digest20)> = self
            .leaves
            .iter()
            .map(|(i, l)| (*i as usize, l.hash()))
            .collect();
        let mut level_len = size as usize;
        let mut sibs = self.siblings.iter();
        while level_len > 1 {
            let mut next: Vec<(usize, Digest20)> = Vec::with_capacity(nodes.len());
            let mut i = 0;
            while i < nodes.len() {
                let (idx, h) = nodes[i];
                let sib = idx ^ 1;
                let combined = if idx % 2 == 0 && i + 1 < nodes.len() && nodes[i + 1].0 == sib {
                    let right = nodes[i + 1].1;
                    i += 2;
                    node_hash(&h, &right)
                } else if sib < level_len {
                    let s = sibs.next().ok_or(ProofError::MalformedPath)?;
                    i += 1;
                    if idx % 2 == 0 {
                        node_hash(&h, s)
                    } else {
                        node_hash(s, &h)
                    }
                } else {
                    i += 1;
                    h // odd node promoted
                };
                next.push((idx / 2, combined));
            }
            nodes = next;
            level_len = level_len.div_ceil(2);
        }
        if sibs.next().is_some() || nodes.len() != 1 {
            return Err(ProofError::MalformedPath);
        }
        if nodes[0].1 != *root {
            return Err(ProofError::RootMismatch);
        }

        // Answer each query from the authenticated leaf set with the same
        // rules as the single-serial absence proofs.
        let mut out = Vec::with_capacity(serials.len());
        for serial in serials {
            let j = self.leaves.partition_point(|(_, l)| l.serial < *serial);
            if j < self.leaves.len() && self.leaves[j].1.serial == *serial {
                out.push(ProvenStatus::Revoked {
                    number: self.leaves[j].1.number,
                });
            } else if j == 0 {
                // Absent below the smallest included leaf: only sound if
                // that leaf is the tree's first (index 0).
                if self.leaves[0].0 != 0 {
                    return Err(ProofError::SerialOutOfRange);
                }
                out.push(ProvenStatus::NotRevoked);
            } else if j == self.leaves.len() {
                // Absent above the largest included leaf: must be the
                // tree's last (index size-1).
                if self.leaves[j - 1].0 != size - 1 {
                    return Err(ProofError::SerialOutOfRange);
                }
                out.push(ProvenStatus::NotRevoked);
            } else {
                // Strictly between two included leaves: they must be
                // adjacent in the tree.
                if self.leaves[j - 1].0 + 1 != self.leaves[j].0 {
                    return Err(ProofError::WrongIndex);
                }
                out.push(ProvenStatus::NotRevoked);
            }
        }
        Ok(out)
    }

    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        2 + self
            .leaves
            .iter()
            .map(|(_, l)| 8 + 1 + l.serial.len() + 8)
            .sum::<usize>()
            + 2
            + 20 * self.siblings.len()
    }

    /// Serializes the proof (pre-sized; never reallocates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Encodes into an existing writer (for embedding in larger messages).
    ///
    /// # Panics
    ///
    /// Panics when a count exceeds `u16::MAX` (silent truncation would
    /// emit an undecodable proof).
    pub fn encode(&self, w: &mut Writer) {
        assert!(
            self.leaves.len() <= u16::MAX as usize,
            "multiproof leaf count overflow"
        );
        assert!(
            self.siblings.len() <= u16::MAX as usize,
            "multiproof sibling count overflow"
        );
        w.u16(self.leaves.len() as u16);
        for (idx, leaf) in &self.leaves {
            w.u64(*idx);
            w.vec8(leaf.serial.as_bytes());
            w.u64(leaf.number);
        }
        w.u16(self.siblings.len() as u16);
        for d in &self.siblings {
            w.bytes(d.as_bytes());
        }
    }

    /// Parses a proof from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let proof = Self::decode(&mut r)?;
        r.finish("multiproof trailing bytes")?;
        Ok(proof)
    }

    /// Parses from a reader (for embedding).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let leaf_count = r.u16("multiproof leaf count")? as usize;
        // Each leaf costs at least 8 + 1 + 1 + 8 bytes.
        r.check_count(leaf_count, 18, "multiproof leaf count exceeds buffer")?;
        let mut leaves = Vec::with_capacity(leaf_count);
        for _ in 0..leaf_count {
            let index = r.u64("multiproof leaf index")?;
            let serial_bytes = r.vec8("multiproof leaf serial")?;
            let serial = SerialNumber::new(serial_bytes)
                .map_err(|_| DecodeError::new("invalid serial", r.position()))?;
            let number = r.u64("multiproof leaf number")?;
            leaves.push((index, Leaf { serial, number }));
        }
        let sib_count = r.u16("multiproof sibling count")? as usize;
        r.check_count(sib_count, 20, "multiproof sibling count exceeds buffer")?;
        let mut siblings = Vec::with_capacity(sib_count);
        for _ in 0..sib_count {
            siblings.push(Digest20::from_bytes(r.array("multiproof sibling")?));
        }
        Ok(MultiProof { leaves, siblings })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::MerkleTree;

    fn tree_with(serials: &[u32]) -> MerkleTree {
        let mut t = MerkleTree::new();
        for (i, s) in serials.iter().enumerate() {
            t.insert_sorted(Leaf::new(SerialNumber::from_u24(*s), i as u64 + 1));
        }
        t.rebuild();
        t
    }

    fn sn(v: u32) -> SerialNumber {
        SerialNumber::from_u24(v)
    }

    #[test]
    fn presence_proof_verifies() {
        let t = tree_with(&[10, 20, 30, 40, 50]);
        let p = RevocationProof::generate(&t, &sn(30));
        let status = p.verify(&sn(30), &t.root(), t.len() as u64).unwrap();
        assert!(status.is_revoked());
    }

    #[test]
    fn absence_between_verifies() {
        let t = tree_with(&[10, 20, 30]);
        let p = RevocationProof::generate(&t, &sn(25));
        assert!(matches!(p, RevocationProof::AbsentBetween(_, _)));
        let status = p.verify(&sn(25), &t.root(), 3).unwrap();
        assert_eq!(status, ProvenStatus::NotRevoked);
    }

    #[test]
    fn absence_below_and_above() {
        let t = tree_with(&[10, 20, 30]);
        let below = RevocationProof::generate(&t, &sn(5));
        assert!(matches!(below, RevocationProof::AbsentBelow(_)));
        assert!(below.verify(&sn(5), &t.root(), 3).is_ok());

        let above = RevocationProof::generate(&t, &sn(99));
        assert!(matches!(above, RevocationProof::AbsentAbove(_)));
        assert!(above.verify(&sn(99), &t.root(), 3).is_ok());
    }

    #[test]
    fn empty_dictionary_absence() {
        let t = MerkleTree::new();
        let p = RevocationProof::generate(&t, &sn(1));
        assert_eq!(p, RevocationProof::AbsentEmpty);
        assert!(p.verify(&sn(1), &t.root(), 0).is_ok());
        // But the same proof must not pass for a non-empty dictionary.
        let t2 = tree_with(&[1]);
        assert_eq!(p.verify(&sn(1), &t2.root(), 1), Err(ProofError::NotEmpty));
    }

    #[test]
    fn absence_proof_rejected_for_revoked_serial() {
        // A malicious RA tries to hide a revocation by presenting a
        // *neighbouring* pair as if the serial were absent.
        let t = tree_with(&[10, 20, 30, 40]);
        let fake = RevocationProof::AbsentBetween(
            PresenceProof::generate(&t, 0),
            PresenceProof::generate(&t, 1),
        );
        // 20 IS revoked; the pair (10, 20) cannot enclose it strictly.
        assert_eq!(
            fake.verify(&sn(20), &t.root(), 4),
            Err(ProofError::SerialOutOfRange)
        );
    }

    #[test]
    fn nonadjacent_pair_rejected() {
        // Leaves 10 and 30 exist, 20 exists between them but the RA skips it.
        let t = tree_with(&[10, 20, 30]);
        let fake = RevocationProof::AbsentBetween(
            PresenceProof::generate(&t, 0),
            PresenceProof::generate(&t, 2),
        );
        assert_eq!(
            fake.verify(&sn(15), &t.root(), 3),
            Err(ProofError::WrongIndex)
        );
    }

    #[test]
    fn proof_from_stale_tree_rejected() {
        // Proof generated before an insert must fail against the new root.
        let old = tree_with(&[10, 20, 30]);
        let proof = RevocationProof::generate(&old, &sn(25));
        let new = tree_with(&[10, 20, 25, 30]);
        assert_eq!(
            proof.verify(&sn(25), &new.root(), 4),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn wrong_serial_for_presence_rejected() {
        let t = tree_with(&[10, 20]);
        let p = RevocationProof::generate(&t, &sn(10));
        assert_eq!(
            p.verify(&sn(20), &t.root(), 2),
            Err(ProofError::SerialOutOfRange)
        );
    }

    #[test]
    fn below_proof_with_interior_index_rejected() {
        let t = tree_with(&[10, 20, 30]);
        let fake = RevocationProof::AbsentBelow(PresenceProof::generate(&t, 1));
        assert_eq!(
            fake.verify(&sn(5), &t.root(), 3),
            Err(ProofError::WrongIndex)
        );
    }

    #[test]
    fn encoding_round_trips() {
        let t = tree_with(&[10, 20, 30, 40, 50, 60, 70]);
        for q in [10u32, 15, 5, 99, 40] {
            let p = RevocationProof::generate(&t, &sn(q));
            let bytes = p.to_bytes();
            let back = RevocationProof::from_bytes(&bytes).unwrap();
            assert_eq!(back, p, "query {q}");
        }
        let empty = RevocationProof::AbsentEmpty;
        assert_eq!(
            RevocationProof::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RevocationProof::from_bytes(&[]).is_err());
        assert!(RevocationProof::from_bytes(&[9]).is_err());
        let t = tree_with(&[10]);
        let mut good = RevocationProof::generate(&t, &sn(10)).to_bytes();
        good.push(0); // trailing byte
        assert!(RevocationProof::from_bytes(&good).is_err());
    }

    #[test]
    fn forged_path_length_rejected_before_allocation() {
        // A presence proof claiming a 0xffff-digest path (1.3 MB) with an
        // empty tail must fail the count check up front.
        let mut w = Writer::new();
        w.u8(0); // Present tag
        w.u64(0); // index
        w.vec8(&[1]); // serial
        w.u64(1); // number
        w.u16(u16::MAX); // forged path length, no path bytes follow
        let err = RevocationProof::from_bytes(w.as_bytes()).unwrap_err();
        assert!(err.context.contains("path"), "{err}");
    }

    #[test]
    fn multiproof_mixed_presence_absence_verifies() {
        let t = tree_with(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let queries = [sn(30), sn(35), sn(5), sn(99), sn(80)];
        let mp = MultiProof::generate(&t, &queries);
        let statuses = mp.verify(&queries, &t.root(), t.len() as u64).unwrap();
        assert!(statuses[0].is_revoked());
        assert_eq!(statuses[1], ProvenStatus::NotRevoked);
        assert_eq!(statuses[2], ProvenStatus::NotRevoked);
        assert_eq!(statuses[3], ProvenStatus::NotRevoked);
        assert!(statuses[4].is_revoked());
        // Each verdict matches the individual proof for the same serial.
        for (q, st) in queries.iter().zip(&statuses) {
            let single = RevocationProof::generate(&t, q)
                .verify(q, &t.root(), t.len() as u64)
                .unwrap();
            assert_eq!(*st, single, "query {q:?}");
        }
    }

    #[test]
    fn multiproof_compresses_shared_siblings() {
        // 5 absent serials: individually each needs an AbsentBetween pair
        // (two full audit paths); the multiproof ships each sibling once.
        let t = tree_with(&(0..1024u32).map(|i| i * 2).collect::<Vec<_>>());
        let queries: Vec<SerialNumber> = [101u32, 301, 501, 701, 901].map(sn).to_vec();
        let mp = MultiProof::generate(&t, &queries);
        let individual: usize = queries
            .iter()
            .map(|q| RevocationProof::generate(&t, q).encoded_len())
            .sum();
        let compressed = mp.encoded_len();
        assert!(
            compressed * 10 <= individual * 6,
            "multiproof {compressed}B must be ≤60% of {individual}B"
        );
        assert!(mp.verify(&queries, &t.root(), 1024).is_ok());
    }

    #[test]
    fn multiproof_round_trips() {
        let t = tree_with(&[10, 20, 30, 40, 50]);
        let queries = [sn(20), sn(25), sn(99)];
        let mp = MultiProof::generate(&t, &queries);
        let back = MultiProof::from_bytes(&mp.to_bytes()).unwrap();
        assert_eq!(back, mp);
        assert_eq!(mp.to_bytes().len(), mp.encoded_len());
    }

    #[test]
    fn multiproof_empty_tree() {
        let t = MerkleTree::new();
        let queries = [sn(1), sn(2)];
        let mp = MultiProof::generate(&t, &queries);
        let statuses = mp.verify(&queries, &t.root(), 0).unwrap();
        assert_eq!(statuses, vec![ProvenStatus::NotRevoked; 2]);
        // The empty proof must not pass against a non-empty dictionary.
        let t2 = tree_with(&[1]);
        assert!(mp.verify(&queries, &t2.root(), 1).is_err());
    }

    #[test]
    fn multiproof_empty_query_set_round_trips() {
        // No queries → nothing claimed → trivially valid, on both empty
        // and non-empty trees.
        let t = tree_with(&[10, 20, 30]);
        let mp = MultiProof::generate(&t, &[]);
        assert_eq!(mp.verify(&[], &t.root(), 3).unwrap(), vec![]);
        let empty = MerkleTree::new();
        let mp = MultiProof::generate(&empty, &[]);
        assert_eq!(mp.verify(&[], &empty.root(), 0).unwrap(), vec![]);
    }

    #[test]
    fn multiproof_cross_epoch_rejected() {
        let old = tree_with(&[10, 20, 30]);
        let queries = [sn(20), sn(25)];
        let mp = MultiProof::generate(&old, &queries);
        // Size change reshapes the sweep (MalformedPath); same-size content
        // change yields RootMismatch. Either way the stale proof dies.
        let new = tree_with(&[10, 20, 25, 30]);
        assert!(mp.verify(&queries, &new.root(), 4).is_err());
        let swapped = tree_with(&[10, 20, 31]);
        assert_eq!(
            mp.verify(&queries, &swapped.root(), 3),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn multiproof_forged_gap_rejected() {
        // An RA omits leaf 20 and presents (10, 30) as adjacent to hide a
        // revocation between them: the indices give it away.
        let t = tree_with(&[10, 20, 30]);
        let honest = MultiProof::generate(&t, &[sn(10), sn(30)]);
        // Forge: drop the middle leaf and claim 15 absent.
        let forged = MultiProof {
            leaves: honest.leaves.clone(),
            siblings: honest.siblings.clone(),
        };
        assert_eq!(
            forged.verify(&[sn(15)], &t.root(), 3),
            Err(ProofError::WrongIndex)
        );
    }

    #[test]
    fn multiproof_boundary_absence_requires_boundary_leaf() {
        let t = tree_with(&[10, 20, 30]);
        // A proof including only the middle leaf cannot answer "5 absent".
        let mp = MultiProof::generate(&t, &[sn(20)]);
        assert_eq!(
            mp.verify(&[sn(5)], &t.root(), 3),
            Err(ProofError::SerialOutOfRange)
        );
        assert_eq!(
            mp.verify(&[sn(99)], &t.root(), 3),
            Err(ProofError::SerialOutOfRange)
        );
    }

    #[test]
    fn multiproof_forged_count_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u16(u16::MAX); // leaf count with no bytes behind it
        let err = MultiProof::from_bytes(w.as_bytes()).unwrap_err();
        assert!(err.context.contains("count"), "{err}");
    }

    #[test]
    fn encoded_len_is_exact_for_all_variants() {
        let t = tree_with(&[10, 20, 30, 40, 50]);
        for q in [10u32, 15, 5, 99] {
            let p = RevocationProof::generate(&t, &sn(q));
            assert_eq!(p.to_bytes().len(), p.encoded_len(), "query {q}");
        }
        let empty = RevocationProof::AbsentEmpty;
        assert_eq!(empty.to_bytes().len(), empty.encoded_len());
    }

    #[test]
    fn proof_size_is_logarithmic() {
        // Paper §VII-D: proof size is logarithmic in dictionary size.
        let small = tree_with(&(0..16u32).collect::<Vec<_>>());
        let big = tree_with(&(0..1024u32).collect::<Vec<_>>());
        let ps = RevocationProof::generate(&small, &sn(3)).encoded_len();
        let pb = RevocationProof::generate(&big, &sn(3)).encoded_len();
        // 1024/16 = 64x more leaves but only +6 path entries (120 bytes).
        assert!(pb > ps);
        assert!(pb - ps <= 6 * 20 + 8, "growth should be ~6 digests");
    }
}
