//! Presence and absence proofs over the authenticated dictionary.
//!
//! The prover (an RA) is untrusted: a client verifies every proof against a
//! CA-signed root (paper §III, "Revocation Lists"). Because leaves are sorted
//! by serial, absence is proven either by an adjacent pair of leaves
//! enclosing the queried serial, or by a boundary leaf, or — for an empty
//! dictionary — by the well-known empty root.

use crate::serial::SerialNumber;
use crate::tree::{empty_root, root_from_path, Leaf, MerkleTree};
use ritm_crypto::digest::Digest20;
use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// An audit path proving one leaf's membership at a given index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceProof {
    /// The leaf being proven.
    pub leaf: Leaf,
    /// Index of the leaf in the sorted leaf sequence.
    pub index: u64,
    /// Bottom-up sibling hashes.
    pub path: Vec<Digest20>,
}

impl PresenceProof {
    /// Builds the proof for leaf `index` of `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the tree needs a rebuild.
    pub fn generate(tree: &MerkleTree, index: usize) -> Self {
        PresenceProof {
            leaf: tree.leaves()[index],
            index: index as u64,
            path: tree.audit_path(index),
        }
    }

    /// Recomputes the root this proof commits to, given the tree size.
    pub fn implied_root(&self, size: u64) -> Option<Digest20> {
        root_from_path(
            self.index as usize,
            size as usize,
            self.leaf.hash(),
            &self.path,
        )
    }

    fn encode(&self, w: &mut Writer) {
        w.u64(self.index);
        w.vec8(self.leaf.serial.as_bytes());
        w.u64(self.leaf.number);
        w.u16(self.path.len() as u16);
        for d in &self.path {
            w.bytes(d.as_bytes());
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let index = r.u64("presence index")?;
        let serial_bytes = r.vec8("presence serial")?;
        let serial = SerialNumber::new(serial_bytes)
            .map_err(|_| DecodeError::new("invalid serial", r.position()))?;
        let number = r.u64("presence number")?;
        let path_len = r.u16("presence path len")? as usize;
        r.check_count(path_len, 20, "presence path exceeds buffer")?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(Digest20::from_bytes(r.array("presence path digest")?));
        }
        Ok(PresenceProof {
            leaf: Leaf { serial, number },
            index,
            path,
        })
    }
}

/// A proof that a serial is or is not in the dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevocationProof {
    /// The serial is revoked: membership proof of its leaf.
    Present(PresenceProof),
    /// The dictionary holds no revocations at all.
    AbsentEmpty,
    /// The serial sorts before every revoked serial; proof of leaf 0.
    AbsentBelow(PresenceProof),
    /// The serial sorts after every revoked serial; proof of the last leaf.
    AbsentAbove(PresenceProof),
    /// The serial falls strictly between two adjacent leaves.
    AbsentBetween(PresenceProof, PresenceProof),
}

/// Outcome of a successful proof verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenStatus {
    /// The certificate is revoked (presence proven).
    Revoked {
        /// The revocation number assigned by the CA.
        number: u64,
    },
    /// The certificate is not revoked (absence proven).
    NotRevoked,
}

impl ProvenStatus {
    /// Convenience predicate.
    pub fn is_revoked(&self) -> bool {
        matches!(self, ProvenStatus::Revoked { .. })
    }
}

/// Why a proof failed to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofError {
    /// The recomputed root differs from the trusted root.
    RootMismatch,
    /// The audit path shape does not match the claimed index/size.
    MalformedPath,
    /// The proven leaf does not relate to the queried serial as claimed
    /// (e.g. an "absent" proof whose bounds do not enclose the serial).
    SerialOutOfRange,
    /// A boundary proof used an interior index, or adjacency does not hold.
    WrongIndex,
    /// An `AbsentEmpty` proof was offered for a non-empty dictionary.
    NotEmpty,
}

impl core::fmt::Display for ProofError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ProofError::RootMismatch => "recomputed root does not match trusted root",
            ProofError::MalformedPath => "audit path inconsistent with index and tree size",
            ProofError::SerialOutOfRange => "proven leaves do not bound the queried serial",
            ProofError::WrongIndex => "proof indices violate boundary/adjacency requirements",
            ProofError::NotEmpty => "empty-dictionary proof for a non-empty dictionary",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProofError {}

impl RevocationProof {
    /// Builds the proof for `serial` against `tree` (RA-side `prove`,
    /// Fig. 2).
    pub fn generate(tree: &MerkleTree, serial: &SerialNumber) -> Self {
        if tree.is_empty() {
            return RevocationProof::AbsentEmpty;
        }
        if let Some(idx) = tree.find(serial) {
            return RevocationProof::Present(PresenceProof::generate(tree, idx));
        }
        let lb = tree.lower_bound(serial);
        if lb == 0 {
            RevocationProof::AbsentBelow(PresenceProof::generate(tree, 0))
        } else if lb == tree.len() {
            RevocationProof::AbsentAbove(PresenceProof::generate(tree, tree.len() - 1))
        } else {
            RevocationProof::AbsentBetween(
                PresenceProof::generate(tree, lb - 1),
                PresenceProof::generate(tree, lb),
            )
        }
    }

    /// Verifies this proof for `serial` against a trusted `(root, size)`
    /// pair taken from a validated signed root.
    ///
    /// # Errors
    ///
    /// Returns a [`ProofError`] describing the first check that failed.
    pub fn verify(
        &self,
        serial: &SerialNumber,
        root: &Digest20,
        size: u64,
    ) -> Result<ProvenStatus, ProofError> {
        let check_path = |p: &PresenceProof| -> Result<(), ProofError> {
            let implied = p.implied_root(size).ok_or(ProofError::MalformedPath)?;
            if implied == *root {
                Ok(())
            } else {
                Err(ProofError::RootMismatch)
            }
        };
        match self {
            RevocationProof::Present(p) => {
                if p.leaf.serial != *serial {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(p)?;
                Ok(ProvenStatus::Revoked {
                    number: p.leaf.number,
                })
            }
            RevocationProof::AbsentEmpty => {
                if size != 0 {
                    return Err(ProofError::NotEmpty);
                }
                if *root != empty_root() {
                    return Err(ProofError::RootMismatch);
                }
                Ok(ProvenStatus::NotRevoked)
            }
            RevocationProof::AbsentBelow(p) => {
                if p.index != 0 {
                    return Err(ProofError::WrongIndex);
                }
                if *serial >= p.leaf.serial {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(p)?;
                Ok(ProvenStatus::NotRevoked)
            }
            RevocationProof::AbsentAbove(p) => {
                if size == 0 || p.index != size - 1 {
                    return Err(ProofError::WrongIndex);
                }
                if *serial <= p.leaf.serial {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(p)?;
                Ok(ProvenStatus::NotRevoked)
            }
            RevocationProof::AbsentBetween(lo, hi) => {
                if lo.index + 1 != hi.index {
                    return Err(ProofError::WrongIndex);
                }
                if !(lo.leaf.serial < *serial && *serial < hi.leaf.serial) {
                    return Err(ProofError::SerialOutOfRange);
                }
                check_path(lo)?;
                check_path(hi)?;
                Ok(ProvenStatus::NotRevoked)
            }
        }
    }

    /// Serializes the proof (part of the revocation status piggybacked onto
    /// TLS traffic; its size drives the §VII-D communication overhead).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            RevocationProof::Present(p) => {
                w.u8(0);
                p.encode(&mut w);
            }
            RevocationProof::AbsentEmpty => {
                w.u8(1);
            }
            RevocationProof::AbsentBelow(p) => {
                w.u8(2);
                p.encode(&mut w);
            }
            RevocationProof::AbsentAbove(p) => {
                w.u8(3);
                p.encode(&mut w);
            }
            RevocationProof::AbsentBetween(lo, hi) => {
                w.u8(4);
                lo.encode(&mut w);
                hi.encode(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Parses a proof from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8("proof tag")?;
        let proof = match tag {
            0 => RevocationProof::Present(PresenceProof::decode(&mut r)?),
            1 => RevocationProof::AbsentEmpty,
            2 => RevocationProof::AbsentBelow(PresenceProof::decode(&mut r)?),
            3 => RevocationProof::AbsentAbove(PresenceProof::decode(&mut r)?),
            4 => RevocationProof::AbsentBetween(
                PresenceProof::decode(&mut r)?,
                PresenceProof::decode(&mut r)?,
            ),
            _ => return Err(DecodeError::new("unknown proof tag", 0)),
        };
        r.finish("proof trailing bytes")?;
        Ok(proof)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(serials: &[u32]) -> MerkleTree {
        let mut t = MerkleTree::new();
        for (i, s) in serials.iter().enumerate() {
            t.insert_sorted(Leaf::new(SerialNumber::from_u24(*s), i as u64 + 1));
        }
        t.rebuild();
        t
    }

    fn sn(v: u32) -> SerialNumber {
        SerialNumber::from_u24(v)
    }

    #[test]
    fn presence_proof_verifies() {
        let t = tree_with(&[10, 20, 30, 40, 50]);
        let p = RevocationProof::generate(&t, &sn(30));
        let status = p.verify(&sn(30), &t.root(), t.len() as u64).unwrap();
        assert!(status.is_revoked());
    }

    #[test]
    fn absence_between_verifies() {
        let t = tree_with(&[10, 20, 30]);
        let p = RevocationProof::generate(&t, &sn(25));
        assert!(matches!(p, RevocationProof::AbsentBetween(_, _)));
        let status = p.verify(&sn(25), &t.root(), 3).unwrap();
        assert_eq!(status, ProvenStatus::NotRevoked);
    }

    #[test]
    fn absence_below_and_above() {
        let t = tree_with(&[10, 20, 30]);
        let below = RevocationProof::generate(&t, &sn(5));
        assert!(matches!(below, RevocationProof::AbsentBelow(_)));
        assert!(below.verify(&sn(5), &t.root(), 3).is_ok());

        let above = RevocationProof::generate(&t, &sn(99));
        assert!(matches!(above, RevocationProof::AbsentAbove(_)));
        assert!(above.verify(&sn(99), &t.root(), 3).is_ok());
    }

    #[test]
    fn empty_dictionary_absence() {
        let t = MerkleTree::new();
        let p = RevocationProof::generate(&t, &sn(1));
        assert_eq!(p, RevocationProof::AbsentEmpty);
        assert!(p.verify(&sn(1), &t.root(), 0).is_ok());
        // But the same proof must not pass for a non-empty dictionary.
        let t2 = tree_with(&[1]);
        assert_eq!(p.verify(&sn(1), &t2.root(), 1), Err(ProofError::NotEmpty));
    }

    #[test]
    fn absence_proof_rejected_for_revoked_serial() {
        // A malicious RA tries to hide a revocation by presenting a
        // *neighbouring* pair as if the serial were absent.
        let t = tree_with(&[10, 20, 30, 40]);
        let fake = RevocationProof::AbsentBetween(
            PresenceProof::generate(&t, 0),
            PresenceProof::generate(&t, 1),
        );
        // 20 IS revoked; the pair (10, 20) cannot enclose it strictly.
        assert_eq!(
            fake.verify(&sn(20), &t.root(), 4),
            Err(ProofError::SerialOutOfRange)
        );
    }

    #[test]
    fn nonadjacent_pair_rejected() {
        // Leaves 10 and 30 exist, 20 exists between them but the RA skips it.
        let t = tree_with(&[10, 20, 30]);
        let fake = RevocationProof::AbsentBetween(
            PresenceProof::generate(&t, 0),
            PresenceProof::generate(&t, 2),
        );
        assert_eq!(
            fake.verify(&sn(15), &t.root(), 3),
            Err(ProofError::WrongIndex)
        );
    }

    #[test]
    fn proof_from_stale_tree_rejected() {
        // Proof generated before an insert must fail against the new root.
        let old = tree_with(&[10, 20, 30]);
        let proof = RevocationProof::generate(&old, &sn(25));
        let new = tree_with(&[10, 20, 25, 30]);
        assert_eq!(
            proof.verify(&sn(25), &new.root(), 4),
            Err(ProofError::RootMismatch)
        );
    }

    #[test]
    fn wrong_serial_for_presence_rejected() {
        let t = tree_with(&[10, 20]);
        let p = RevocationProof::generate(&t, &sn(10));
        assert_eq!(
            p.verify(&sn(20), &t.root(), 2),
            Err(ProofError::SerialOutOfRange)
        );
    }

    #[test]
    fn below_proof_with_interior_index_rejected() {
        let t = tree_with(&[10, 20, 30]);
        let fake = RevocationProof::AbsentBelow(PresenceProof::generate(&t, 1));
        assert_eq!(
            fake.verify(&sn(5), &t.root(), 3),
            Err(ProofError::WrongIndex)
        );
    }

    #[test]
    fn encoding_round_trips() {
        let t = tree_with(&[10, 20, 30, 40, 50, 60, 70]);
        for q in [10u32, 15, 5, 99, 40] {
            let p = RevocationProof::generate(&t, &sn(q));
            let bytes = p.to_bytes();
            let back = RevocationProof::from_bytes(&bytes).unwrap();
            assert_eq!(back, p, "query {q}");
        }
        let empty = RevocationProof::AbsentEmpty;
        assert_eq!(
            RevocationProof::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RevocationProof::from_bytes(&[]).is_err());
        assert!(RevocationProof::from_bytes(&[9]).is_err());
        let t = tree_with(&[10]);
        let mut good = RevocationProof::generate(&t, &sn(10)).to_bytes();
        good.push(0); // trailing byte
        assert!(RevocationProof::from_bytes(&good).is_err());
    }

    #[test]
    fn forged_path_length_rejected_before_allocation() {
        // A presence proof claiming a 0xffff-digest path (1.3 MB) with an
        // empty tail must fail the count check up front.
        let mut w = Writer::new();
        w.u8(0); // Present tag
        w.u64(0); // index
        w.vec8(&[1]); // serial
        w.u64(1); // number
        w.u16(u16::MAX); // forged path length, no path bytes follow
        let err = RevocationProof::from_bytes(w.as_bytes()).unwrap_err();
        assert!(err.context.contains("path"), "{err}");
    }

    #[test]
    fn proof_size_is_logarithmic() {
        // Paper §VII-D: proof size is logarithmic in dictionary size.
        let small = tree_with(&(0..16u32).collect::<Vec<_>>());
        let big = tree_with(&(0..1024u32).collect::<Vec<_>>());
        let ps = RevocationProof::generate(&small, &sn(3)).encoded_len();
        let pb = RevocationProof::generate(&big, &sn(3)).encoded_len();
        // 1024/16 = 64x more leaves but only +6 path entries (120 bytes).
        assert!(pb > ps);
        assert!(pb - ps <= 6 * 20 + 8, "growth should be ~6 digests");
    }
}
