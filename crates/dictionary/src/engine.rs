//! The dictionary engine abstraction.
//!
//! Fig. 2 of the paper defines the authenticated dictionary by four
//! operations — `insert`/`refresh` on the trusted (CA) side and
//! `update`/`prove` on the untrusted (RA) side. The seed code exposed those
//! operations only as inherent methods of concrete types, so every layer of
//! the stack (CA, RA, client harnesses, benches) was welded to
//! [`CaDictionary`], [`MirrorDictionary`], or [`ShardedCa`]. This module
//! lifts the operations into traits:
//!
//! * [`DictionaryEngine`] — the Fig. 2 surface plus the two observability
//!   hooks the incremental engine adds: a monotonic [`epoch`] (bumped per
//!   applied batch; proof caches key on it) and the current [`root`].
//! * [`MirrorEngine`] — the extra surface an *untrusted* mirror provides:
//!   bootstrap from a genesis root, catch-up accounting, and direct proof
//!   generation for epoch-keyed caches.
//!
//! [`epoch`]: DictionaryEngine::epoch
//! [`root`]: DictionaryEngine::root

use crate::dictionary::{
    CaDictionary, MirrorDictionary, RefreshMessage, RevocationIssuance, RevocationStatus,
    UpdateError,
};
use crate::freshness::FreshnessStatement;
use crate::proof::RevocationProof;
use crate::root::{CaId, SignedRoot};
use crate::serial::SerialNumber;
use crate::sharding::ShardedCa;
use rand::RngCore;
use ritm_crypto::digest::Digest20;
use ritm_crypto::ed25519::VerifyingKey;

/// Why an engine rejected an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// An authoritative operation (`insert`/`refresh`) was invoked on an
    /// untrusted mirror.
    NotAuthoritative,
    /// A mirror operation (`update`) was invoked on an authoritative engine.
    NotMirror,
    /// The engine holds no dictionary yet (e.g. a sharded CA before its
    /// first revocation).
    Empty,
    /// The underlying mirror rejected the update.
    Update(UpdateError),
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::NotAuthoritative => {
                f.write_str("operation requires an authoritative (CA-side) engine")
            }
            EngineError::NotMirror => f.write_str("operation requires a mirror (RA-side) engine"),
            EngineError::Empty => f.write_str("engine holds no dictionary yet"),
            EngineError::Update(e) => write!(f, "update rejected: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<UpdateError> for EngineError {
    fn from(e: UpdateError) -> Self {
        EngineError::Update(e)
    }
}

/// What an RA feeds into `update`: a revocation batch or a periodic
/// freshness/rotation message.
#[derive(Debug, Clone, Copy)]
pub enum UpdateMessage<'a> {
    /// New revocations plus the signed root covering them.
    Issuance(&'a RevocationIssuance),
    /// A freshness statement or rotated root (no content change).
    Refresh(&'a RefreshMessage),
}

/// The Fig. 2 dictionary surface, epoch-aware.
///
/// Engines fall into two roles: *authoritative* (a CA holding the signing
/// key; `insert`/`refresh` succeed, `update` is refused) and *mirror* (an
/// RA's untrusted copy; the reverse). The role split is reported through
/// [`EngineError`] rather than separate traits so heterogeneous engine
/// collections can be driven uniformly.
pub trait DictionaryEngine {
    /// Identity of the CA whose dictionary this engine holds.
    fn engine_ca(&self) -> CaId;

    /// Monotonic content version: advances at least once per applied batch
    /// and never regresses. Proofs and audit paths generated at epoch `e`
    /// stay valid exactly while `epoch() == e`.
    fn epoch(&self) -> u64;

    /// The current Merkle root (for sharded engines, a digest binding every
    /// shard root).
    fn root(&self) -> Digest20;

    /// Revocations held.
    fn revocation_count(&self) -> u64;

    /// Whether `serial` is currently revoked.
    fn contains_serial(&self, serial: &SerialNumber) -> bool;

    /// Fig. 2 `insert`: revoke a batch, advance the epoch, and return the
    /// issuance to disseminate (`None` when every serial was already
    /// revoked).
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAuthoritative`] on mirrors.
    fn insert_batch(
        &mut self,
        serials: &[SerialNumber],
        rng: &mut dyn RngCore,
        now: u64,
    ) -> Result<Option<RevocationIssuance>, EngineError>;

    /// Fig. 2 `refresh`: produce the periodic freshness statement (or a
    /// rotated root when the hash chain is exhausted).
    ///
    /// # Errors
    ///
    /// [`EngineError::NotAuthoritative`] on mirrors; [`EngineError::Empty`]
    /// when there is no dictionary to refresh yet.
    fn refresh_period(
        &mut self,
        rng: &mut dyn RngCore,
        now: u64,
    ) -> Result<RefreshMessage, EngineError>;

    /// Fig. 2 `update`: verify and apply a disseminated message.
    ///
    /// # Errors
    ///
    /// [`EngineError::NotMirror`] on authoritative engines;
    /// [`EngineError::Update`] when verification fails (the engine is left
    /// unchanged).
    fn apply_update(&mut self, msg: UpdateMessage<'_>, now: u64) -> Result<(), EngineError>;

    /// The freshness statement covering `now`, if the engine can produce
    /// one (mirrors return their last accepted statement; CA-side engines
    /// walk their hash chain).
    fn freshness_for(&self, now: u64) -> Option<FreshnessStatement>;

    /// Fig. 2 `prove`: build the full revocation status (Eq. 3) for
    /// `serial`. Returns `None` when the engine cannot currently prove
    /// (e.g. no freshness statement for `now`, or an empty sharded CA).
    fn prove_status(&self, serial: &SerialNumber, now: u64) -> Option<RevocationStatus>;
}

impl DictionaryEngine for CaDictionary {
    fn engine_ca(&self) -> CaId {
        self.ca()
    }

    fn epoch(&self) -> u64 {
        self.epoch()
    }

    fn root(&self) -> Digest20 {
        self.signed_root().root
    }

    fn revocation_count(&self) -> u64 {
        self.len() as u64
    }

    fn contains_serial(&self, serial: &SerialNumber) -> bool {
        self.contains(serial)
    }

    fn insert_batch(
        &mut self,
        serials: &[SerialNumber],
        rng: &mut dyn RngCore,
        now: u64,
    ) -> Result<Option<RevocationIssuance>, EngineError> {
        Ok(self.insert(serials, rng, now))
    }

    fn refresh_period(
        &mut self,
        rng: &mut dyn RngCore,
        now: u64,
    ) -> Result<RefreshMessage, EngineError> {
        Ok(self.refresh(rng, now))
    }

    fn apply_update(&mut self, _msg: UpdateMessage<'_>, _now: u64) -> Result<(), EngineError> {
        Err(EngineError::NotMirror)
    }

    fn freshness_for(&self, now: u64) -> Option<FreshnessStatement> {
        self.current_freshness(now)
    }

    fn prove_status(&self, serial: &SerialNumber, now: u64) -> Option<RevocationStatus> {
        self.prove(serial, now)
    }
}

impl DictionaryEngine for MirrorDictionary {
    fn engine_ca(&self) -> CaId {
        self.ca()
    }

    fn epoch(&self) -> u64 {
        self.epoch()
    }

    fn root(&self) -> Digest20 {
        self.signed_root().root
    }

    fn revocation_count(&self) -> u64 {
        self.len() as u64
    }

    fn contains_serial(&self, serial: &SerialNumber) -> bool {
        self.contains(serial)
    }

    fn insert_batch(
        &mut self,
        _serials: &[SerialNumber],
        _rng: &mut dyn RngCore,
        _now: u64,
    ) -> Result<Option<RevocationIssuance>, EngineError> {
        Err(EngineError::NotAuthoritative)
    }

    fn refresh_period(
        &mut self,
        _rng: &mut dyn RngCore,
        _now: u64,
    ) -> Result<RefreshMessage, EngineError> {
        Err(EngineError::NotAuthoritative)
    }

    fn apply_update(&mut self, msg: UpdateMessage<'_>, now: u64) -> Result<(), EngineError> {
        match msg {
            UpdateMessage::Issuance(iss) => self.apply_issuance(iss, now)?,
            UpdateMessage::Refresh(r) => self.apply_refresh(r, now)?,
        }
        Ok(())
    }

    fn freshness_for(&self, _now: u64) -> Option<FreshnessStatement> {
        Some(*self.freshness())
    }

    fn prove_status(&self, serial: &SerialNumber, _now: u64) -> Option<RevocationStatus> {
        Some(self.prove(serial))
    }
}

impl DictionaryEngine for ShardedCa {
    fn engine_ca(&self) -> CaId {
        self.ca()
    }

    fn epoch(&self) -> u64 {
        self.epoch()
    }

    fn root(&self) -> Digest20 {
        self.combined_root()
    }

    fn revocation_count(&self) -> u64 {
        self.total_revocations() as u64
    }

    fn contains_serial(&self, serial: &SerialNumber) -> bool {
        self.shards().any(|(_, d)| d.contains(serial))
    }

    fn insert_batch(
        &mut self,
        serials: &[SerialNumber],
        rng: &mut dyn RngCore,
        now: u64,
    ) -> Result<Option<RevocationIssuance>, EngineError> {
        Ok(self.revoke_batch_default_expiry(serials, rng, now))
    }

    fn refresh_period(
        &mut self,
        rng: &mut dyn RngCore,
        now: u64,
    ) -> Result<RefreshMessage, EngineError> {
        self.refresh_newest(rng, now).ok_or(EngineError::Empty)
    }

    fn apply_update(&mut self, _msg: UpdateMessage<'_>, _now: u64) -> Result<(), EngineError> {
        Err(EngineError::NotMirror)
    }

    fn freshness_for(&self, now: u64) -> Option<FreshnessStatement> {
        self.newest_shard_freshness(now)
    }

    fn prove_status(&self, serial: &SerialNumber, now: u64) -> Option<RevocationStatus> {
        self.prove(serial, now)
    }
}

/// The extra surface an untrusted mirror engine provides: bootstrap,
/// catch-up accounting, and the pieces an epoch-keyed proof cache composes
/// statuses from.
pub trait MirrorEngine: DictionaryEngine + Sized {
    /// Bootstraps a mirror from a CA's genesis signed root.
    ///
    /// # Errors
    ///
    /// Propagates the mirror's verification failure.
    fn bootstrap(ca: CaId, ca_key: VerifyingKey, genesis: SignedRoot) -> Result<Self, UpdateError>;

    /// Sets the dissemination period Δ (from the CA manifest).
    fn set_delta(&mut self, delta: u64);

    /// Count of consecutive revocations held (reported when requesting
    /// catch-up).
    fn consecutive_count(&self) -> u64;

    /// The latest accepted signed root.
    fn current_signed_root(&self) -> &SignedRoot;

    /// The latest accepted freshness statement.
    fn current_freshness(&self) -> &FreshnessStatement;

    /// Generates the bare audit-path proof for `serial` — the cacheable part
    /// of a status. Callers compose it with [`current_signed_root`] and
    /// [`current_freshness`]; the proof stays reusable while
    /// [`DictionaryEngine::epoch`] is unchanged.
    ///
    /// [`current_signed_root`]: MirrorEngine::current_signed_root
    /// [`current_freshness`]: MirrorEngine::current_freshness
    fn generate_proof(&self, serial: &SerialNumber) -> RevocationProof;

    /// Freezes the mirror's current tree, signed root, and freshness into
    /// an immutable [`DictionarySnapshot`] for lock-free concurrent proof
    /// serving. Writers build the snapshot off to the side and publish it
    /// through a [`crate::snapshot::SnapshotCell`].
    ///
    /// [`DictionarySnapshot`]: crate::snapshot::DictionarySnapshot
    fn snapshot(&self) -> crate::snapshot::DictionarySnapshot;
}

impl MirrorEngine for MirrorDictionary {
    fn bootstrap(ca: CaId, ca_key: VerifyingKey, genesis: SignedRoot) -> Result<Self, UpdateError> {
        MirrorDictionary::new(ca, ca_key, genesis)
    }

    fn set_delta(&mut self, delta: u64) {
        MirrorDictionary::set_delta(self, delta)
    }

    fn consecutive_count(&self) -> u64 {
        MirrorDictionary::consecutive_count(self)
    }

    fn current_signed_root(&self) -> &SignedRoot {
        self.signed_root()
    }

    fn current_freshness(&self) -> &FreshnessStatement {
        self.freshness()
    }

    fn generate_proof(&self, serial: &SerialNumber) -> RevocationProof {
        self.proof(serial)
    }

    fn snapshot(&self) -> crate::snapshot::DictionarySnapshot {
        MirrorDictionary::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;

    const T0: u64 = 1_000_000;

    fn serials(range: core::ops::Range<u32>) -> Vec<SerialNumber> {
        range.map(SerialNumber::from_u24).collect()
    }

    #[test]
    fn ca_and_mirror_drive_through_the_trait() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ca = CaDictionary::new(
            CaId::from_name("EngineCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let mut ra = MirrorDictionary::bootstrap(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .expect("genesis");
        ra.set_delta(10);

        // Roles enforced.
        let e0 = DictionaryEngine::epoch(&ra);
        assert_eq!(
            ra.insert_batch(&serials(1..3), &mut rng, T0 + 1),
            Err(EngineError::NotAuthoritative)
        );
        let iss = ca
            .insert_batch(&serials(1..6), &mut rng, T0 + 1)
            .unwrap()
            .expect("fresh serials");
        assert_eq!(
            ca.apply_update(UpdateMessage::Issuance(&iss), T0 + 1),
            Err(EngineError::NotMirror)
        );

        // Update advances the mirror's epoch and root in lock-step with the CA.
        ra.apply_update(UpdateMessage::Issuance(&iss), T0 + 1)
            .unwrap();
        assert!(DictionaryEngine::epoch(&ra) > e0);
        assert_eq!(DictionaryEngine::root(&ra), DictionaryEngine::root(&ca));
        assert_eq!(ra.revocation_count(), 5);
        assert!(ra.contains_serial(&SerialNumber::from_u24(3)));

        // Proofs compose identically through the trait and inherent paths.
        let via_trait = ra.prove_status(&SerialNumber::from_u24(3), T0 + 2).unwrap();
        let composed = RevocationStatus {
            proof: ra.generate_proof(&SerialNumber::from_u24(3)),
            signed_root: *ra.current_signed_root(),
            freshness: *ra.current_freshness(),
        };
        assert_eq!(via_trait, composed);

        // Refresh flows through the trait too.
        let msg = ca.refresh_period(&mut rng, T0 + 10).unwrap();
        ra.apply_update(UpdateMessage::Refresh(&msg), T0 + 10)
            .unwrap();
    }

    #[test]
    fn sharded_ca_is_an_engine() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sharded = ShardedCa::new(
            CaId::from_name("ShardEngine"),
            SigningKey::from_seed([2u8; 32]),
            10,
            64,
            crate::sharding::DEFAULT_BUCKET_SECS,
        );
        assert_eq!(
            sharded.refresh_period(&mut rng, T0),
            Err(EngineError::Empty)
        );
        let e0 = sharded.epoch();
        let root0 = DictionaryEngine::root(&sharded);
        let iss = sharded
            .insert_batch(&serials(1..4), &mut rng, T0)
            .unwrap()
            .expect("fresh serials");
        assert_eq!(iss.serials.len(), 3);
        assert!(sharded.epoch() > e0);
        assert_ne!(DictionaryEngine::root(&sharded), root0);
        assert_eq!(sharded.revocation_count(), 3);
        assert!(sharded.contains_serial(&SerialNumber::from_u24(2)));
        assert!(sharded.refresh_period(&mut rng, T0 + 10).is_ok());

        // Presence provable through the engine surface.
        let status = sharded
            .prove_status(&SerialNumber::from_u24(2), T0 + 1)
            .expect("shard can prove");
        assert!(status
            .validate(
                &SerialNumber::from_u24(2),
                &status_key(&sharded),
                10,
                T0 + 1
            )
            .unwrap()
            .is_revoked());
    }

    fn status_key(sharded: &ShardedCa) -> VerifyingKey {
        sharded.verifying_key()
    }
}
