//! Certificate serial numbers.
//!
//! A serial number is a positive integer assigned uniquely to every
//! CA-issued certificate, represented by at most 20 bytes (RFC 5280; paper
//! footnote 1). The paper's dataset analysis (§VII-A) found 3-byte serials
//! most common (32 %), so workloads default to 3 bytes.

use ritm_crypto::hex;

/// Maximum encoded length of a serial number in bytes.
pub const MAX_SERIAL_LEN: usize = 20;

/// Error returned when constructing a [`SerialNumber`] from invalid bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialError {
    /// Serial numbers must contain at least one byte.
    Empty,
    /// Serial numbers are limited to [`MAX_SERIAL_LEN`] bytes.
    TooLong(usize),
}

impl core::fmt::Display for SerialError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SerialError::Empty => f.write_str("serial number must not be empty"),
            SerialError::TooLong(n) => {
                write!(f, "serial number of {n} bytes exceeds the 20-byte maximum")
            }
        }
    }
}

impl std::error::Error for SerialError {}

/// A certificate serial number: 1–20 bytes, compared lexicographically —
/// the sort order of dictionary leaves (paper §III).
///
/// # Examples
///
/// ```
/// use ritm_dictionary::SerialNumber;
/// # fn main() -> Result<(), ritm_dictionary::SerialError> {
/// let a = SerialNumber::new(&[0x07, 0x3e, 0x10])?;
/// let b = SerialNumber::new(&[0x07, 0x3e, 0x11])?;
/// assert!(a < b);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SerialNumber {
    bytes: [u8; MAX_SERIAL_LEN],
    len: u8,
}

impl SerialNumber {
    /// Creates a serial number from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SerialError`] when `bytes` is empty or longer than 20 bytes.
    pub fn new(bytes: &[u8]) -> Result<Self, SerialError> {
        if bytes.is_empty() {
            return Err(SerialError::Empty);
        }
        if bytes.len() > MAX_SERIAL_LEN {
            return Err(SerialError::TooLong(bytes.len()));
        }
        let mut buf = [0u8; MAX_SERIAL_LEN];
        buf[..bytes.len()].copy_from_slice(bytes);
        Ok(SerialNumber {
            bytes: buf,
            len: bytes.len() as u8,
        })
    }

    /// Creates a 3-byte serial from an integer (the common case in the
    /// paper's dataset). Only the low 24 bits are used.
    pub fn from_u24(v: u32) -> Self {
        let b = v.to_be_bytes();
        SerialNumber::new(&b[1..]).expect("3 bytes is always valid")
    }

    /// Creates an 8-byte serial from an integer.
    pub fn from_u64(v: u64) -> Self {
        SerialNumber::new(&v.to_be_bytes()).expect("8 bytes is always valid")
    }

    /// The serial's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: serials have at least one byte.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl PartialOrd for SerialNumber {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SerialNumber {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Lexicographic over the meaningful bytes, as the paper sorts leaves.
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl core::fmt::Debug for SerialNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SerialNumber({})", hex::encode(self.as_bytes()))
    }
}

impl core::fmt::Display for SerialNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&hex::encode(self.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = SerialNumber::new(&[1]).unwrap();
        let b = SerialNumber::new(&[1, 0]).unwrap();
        let c = SerialNumber::new(&[2]).unwrap();
        assert!(a < b, "prefix sorts first");
        assert!(b < c);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(SerialNumber::new(&[]), Err(SerialError::Empty));
    }

    #[test]
    fn too_long_rejected() {
        assert_eq!(SerialNumber::new(&[0u8; 21]), Err(SerialError::TooLong(21)));
        assert!(SerialNumber::new(&[0u8; 20]).is_ok());
    }

    #[test]
    fn from_u24_is_three_bytes() {
        let s = SerialNumber::from_u24(0x073e10);
        assert_eq!(s.as_bytes(), &[0x07, 0x3e, 0x10]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn from_u24_truncates_high_bits() {
        assert_eq!(
            SerialNumber::from_u24(0xff_aabbcc),
            SerialNumber::from_u24(0xaabbcc)
        );
    }

    #[test]
    fn display_is_hex() {
        let s = SerialNumber::new(&[0xde, 0xad]).unwrap();
        assert_eq!(s.to_string(), "dead");
    }

    #[test]
    fn distinct_lengths_are_distinct() {
        let a = SerialNumber::new(&[0, 0]).unwrap();
        let b = SerialNumber::new(&[0, 0, 0]).unwrap();
        assert_ne!(a, b);
    }
}
