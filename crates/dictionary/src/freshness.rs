//! Freshness statements — Eq. (2) of the paper.
//!
//! When no new revocation occurs within a period Δ, the CA disseminates only
//! the next hash-chain preimage `H^(m-p)(v)`, which is unforgeable yet much
//! smaller than a new signed root. Clients accept a statement no older than
//! 2Δ (validation step 5c): for a root timestamped `t` and current time
//! `now`, the expected period is `p' = ⌊(now - t)/Δ⌋` and the statement must
//! hash to the anchor in `p'` or `p' + 1` steps.

use crate::root::SignedRoot;
use ritm_crypto::digest::Digest20;
use ritm_crypto::hashchain::verify_statement;
use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// Tolerance (in periods) the paper's validation policy allows, yielding the
/// effective 2Δ attack window (§V, "Short Attack Window").
pub const PERIOD_TOLERANCE: u64 = 1;

/// A freshness statement: the hash-chain preimage for the current period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshnessStatement {
    /// `H^(m-p)(v)` for the current period `p`.
    pub value: Digest20,
}

/// Why a freshness statement was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreshnessError {
    /// The statement does not hash to the anchor within tolerance — it is
    /// stale, forged, or from a different chain.
    Stale,
    /// The signed root's timestamp lies in the future relative to `now`.
    FutureRoot,
}

impl core::fmt::Display for FreshnessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FreshnessError::Stale => f.write_str("freshness statement stale or not on chain"),
            FreshnessError::FutureRoot => f.write_str("signed root timestamp is in the future"),
        }
    }
}

impl std::error::Error for FreshnessError {}

impl FreshnessStatement {
    /// Wraps a raw chain value.
    pub fn new(value: Digest20) -> Self {
        FreshnessStatement { value }
    }

    /// Client-side check (validation step 5c): verifies this statement
    /// against the anchor in `root`, for period `⌊(now - t)/Δ⌋` with the
    /// paper's +1 tolerance.
    ///
    /// Returns the period the statement actually proves.
    ///
    /// # Errors
    ///
    /// [`FreshnessError::FutureRoot`] when `now < root.timestamp`;
    /// [`FreshnessError::Stale`] when no period within tolerance matches.
    pub fn verify(&self, root: &SignedRoot, delta: u64, now: u64) -> Result<u64, FreshnessError> {
        if now < root.timestamp {
            return Err(FreshnessError::FutureRoot);
        }
        let expected = (now - root.timestamp) / delta.max(1);
        verify_statement(root.anchor, self.value, expected, PERIOD_TOLERANCE)
            .ok_or(FreshnessError::Stale)
    }

    /// Serializes the statement (20 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(20);
        w.bytes(self.value.as_bytes());
        w.into_bytes()
    }

    /// Parses a statement.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let out = Self::decode(&mut r)?;
        r.finish("freshness trailing bytes")?;
        Ok(out)
    }

    /// Parses from a reader (for embedding).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(FreshnessStatement {
            value: Digest20::from_bytes(r.array("freshness value")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::root::CaId;
    use ritm_crypto::ed25519::SigningKey;
    use ritm_crypto::hashchain::HashChain;

    const DELTA: u64 = 10;
    const T0: u64 = 1_000_000;

    fn setup() -> (HashChain, SignedRoot) {
        let chain = HashChain::from_seed([1u8; 20], 100);
        let key = SigningKey::from_seed([2u8; 32]);
        let root = SignedRoot::create(
            &key,
            CaId::from_name("CA"),
            Digest20::hash(b"tree"),
            0,
            chain.anchor(),
            T0,
        );
        (chain, root)
    }

    #[test]
    fn current_statement_accepted() {
        let (chain, root) = setup();
        for p in 0..5 {
            let stmt = FreshnessStatement::new(chain.statement(p).unwrap());
            let now = T0 + p * DELTA + 3;
            assert_eq!(stmt.verify(&root, DELTA, now), Ok(p), "period {p}");
        }
    }

    #[test]
    fn one_period_ahead_accepted() {
        // CA published period p+1 but the client's clock still says p.
        let (chain, root) = setup();
        let stmt = FreshnessStatement::new(chain.statement(4).unwrap());
        let now = T0 + 3 * DELTA + 9; // client computes p' = 3
        assert_eq!(stmt.verify(&root, DELTA, now), Ok(4));
    }

    #[test]
    fn stale_statement_rejected() {
        // A blocked/replayed statement from 2 periods ago must fail — this
        // is what bounds the attack window to 2Δ.
        let (chain, root) = setup();
        let stmt = FreshnessStatement::new(chain.statement(2).unwrap());
        let now = T0 + 4 * DELTA; // p' = 4; statement proves period 2
        assert_eq!(stmt.verify(&root, DELTA, now), Err(FreshnessError::Stale));
    }

    #[test]
    fn forged_statement_rejected() {
        let (_, root) = setup();
        let stmt = FreshnessStatement::new(Digest20::hash(b"forged"));
        assert_eq!(
            stmt.verify(&root, DELTA, T0 + 5),
            Err(FreshnessError::Stale)
        );
    }

    #[test]
    fn future_root_rejected() {
        let (chain, root) = setup();
        let stmt = FreshnessStatement::new(chain.statement(0).unwrap());
        assert_eq!(
            stmt.verify(&root, DELTA, T0 - 1),
            Err(FreshnessError::FutureRoot)
        );
    }

    #[test]
    fn zero_delta_does_not_divide_by_zero() {
        let (chain, root) = setup();
        let stmt = FreshnessStatement::new(chain.statement(0).unwrap());
        // Δ = 0 is treated as 1-second periods.
        assert!(stmt.verify(&root, 0, T0).is_ok());
    }

    #[test]
    fn encoding_round_trips() {
        let (chain, _) = setup();
        let stmt = FreshnessStatement::new(chain.statement(7).unwrap());
        let back = FreshnessStatement::from_bytes(&stmt.to_bytes()).unwrap();
        assert_eq!(back, stmt);
    }
}
