//! Signed dictionary roots — Eq. (1) of the paper:
//! `{root, n, H^m(v), time()}_{K⁻_CA}`.

use ritm_crypto::digest::Digest20;
use ritm_crypto::ed25519::{InvalidSignature, Signature, SigningKey, VerifyingKey};
use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// Identifies a CA (and thereby its dictionary) across the system.
///
/// Derived from the CA's name; 8 bytes keeps dissemination messages small
/// while leaving collisions negligible for the ≤ few hundred CAs observed in
/// the paper's dataset (254 CRLs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CaId(pub [u8; 8]);

impl CaId {
    /// Derives an id from a CA name.
    ///
    /// # Examples
    ///
    /// ```
    /// use ritm_dictionary::CaId;
    /// assert_eq!(CaId::from_name("CA1"), CaId::from_name("CA1"));
    /// assert_ne!(CaId::from_name("CA1"), CaId::from_name("CA2"));
    /// ```
    pub fn from_name(name: &str) -> Self {
        let d = Digest20::hash(name.as_bytes());
        let mut id = [0u8; 8];
        id.copy_from_slice(&d.as_bytes()[..8]);
        CaId(id)
    }
}

impl core::fmt::Display for CaId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&ritm_crypto::hex::encode(self.0))
    }
}

/// A CA-signed commitment to one dictionary version.
///
/// Contains the tree root, the dictionary size `n`, the hash-chain anchor
/// `H^m(v)` for subsequent freshness statements, and the issuance timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignedRoot {
    /// Which CA's dictionary this commits to.
    pub ca: CaId,
    /// The Merkle root over the sorted leaves.
    pub root: Digest20,
    /// Number of revocations in the dictionary (`n` in the paper).
    pub size: u64,
    /// Hash-chain anchor `H^m(v)` for freshness statements.
    pub anchor: Digest20,
    /// Unix timestamp `t` at which this root was signed.
    pub timestamp: u64,
    /// Ed25519 signature over the canonical encoding of the above.
    pub signature: Signature,
}

/// Encoded size of a signed root in bytes (fixed).
pub const SIGNED_ROOT_LEN: usize = 8 + 20 + 8 + 20 + 8 + 64;

impl SignedRoot {
    /// Canonical bytes covered by the signature.
    pub fn signing_bytes(
        ca: CaId,
        root: &Digest20,
        size: u64,
        anchor: &Digest20,
        timestamp: u64,
    ) -> Vec<u8> {
        let mut w = Writer::with_capacity(70);
        w.bytes(b"RITM-ROOT-v1");
        w.bytes(&ca.0);
        w.bytes(root.as_bytes());
        w.u64(size);
        w.bytes(anchor.as_bytes());
        w.u64(timestamp);
        w.into_bytes()
    }

    /// Creates and signs a root (CA-side, Fig. 2 `insert` step 3).
    pub fn create(
        key: &SigningKey,
        ca: CaId,
        root: Digest20,
        size: u64,
        anchor: Digest20,
        timestamp: u64,
    ) -> Self {
        let msg = Self::signing_bytes(ca, &root, size, &anchor, timestamp);
        SignedRoot {
            ca,
            root,
            size,
            anchor,
            timestamp,
            signature: key.sign(&msg),
        }
    }

    /// Verifies the signature against the CA's public key.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSignature`] if verification fails.
    pub fn verify(&self, key: &VerifyingKey) -> Result<(), InvalidSignature> {
        let msg = Self::signing_bytes(self.ca, &self.root, self.size, &self.anchor, self.timestamp);
        key.verify(&msg, &self.signature)
    }

    /// Serializes the signed root (fixed [`SIGNED_ROOT_LEN`] bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(SIGNED_ROOT_LEN);
        w.bytes(&self.ca.0);
        w.bytes(self.root.as_bytes());
        w.u64(self.size);
        w.bytes(self.anchor.as_bytes());
        w.u64(self.timestamp);
        w.bytes(self.signature.as_bytes());
        w.into_bytes()
    }

    /// Parses a signed root (signature is *not* verified here).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let out = Self::decode(&mut r)?;
        r.finish("signed root trailing bytes")?;
        Ok(out)
    }

    /// Parses a signed root from a reader (for embedding in larger
    /// messages).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SignedRoot {
            ca: CaId(r.array("ca id")?),
            root: Digest20::from_bytes(r.array("root")?),
            size: r.u64("size")?,
            anchor: Digest20::from_bytes(r.array("anchor")?),
            timestamp: r.u64("timestamp")?,
            signature: Signature::from_bytes(r.array("signature")?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SigningKey {
        SigningKey::from_seed([3u8; 32])
    }

    fn sample() -> SignedRoot {
        SignedRoot::create(
            &key(),
            CaId::from_name("TestCA"),
            Digest20::hash(b"root"),
            7,
            Digest20::hash(b"anchor"),
            1_400_000_000,
        )
    }

    #[test]
    fn verifies_with_right_key() {
        assert!(sample().verify(&key().verifying_key()).is_ok());
    }

    #[test]
    fn rejects_wrong_key() {
        let other = SigningKey::from_seed([4u8; 32]);
        assert!(sample().verify(&other.verifying_key()).is_err());
    }

    #[test]
    fn any_field_change_invalidates() {
        let k = key().verifying_key();
        let mut a = sample();
        a.size += 1;
        assert!(a.verify(&k).is_err());
        let mut b = sample();
        b.timestamp += 1;
        assert!(b.verify(&k).is_err());
        let mut c = sample();
        c.root = Digest20::hash(b"other root");
        assert!(c.verify(&k).is_err());
        let mut d = sample();
        d.anchor = Digest20::hash(b"other anchor");
        assert!(d.verify(&k).is_err());
        let mut e = sample();
        e.ca = CaId::from_name("EvilCA");
        assert!(e.verify(&k).is_err());
    }

    #[test]
    fn encoding_round_trips_and_is_fixed_size() {
        let sr = sample();
        let bytes = sr.to_bytes();
        assert_eq!(bytes.len(), SIGNED_ROOT_LEN);
        let back = SignedRoot::from_bytes(&bytes).unwrap();
        assert_eq!(back, sr);
        assert!(back.verify(&key().verifying_key()).is_ok());
    }

    #[test]
    fn truncated_encoding_rejected() {
        let bytes = sample().to_bytes();
        assert!(SignedRoot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ca_id_display() {
        assert_eq!(CaId([0; 8]).to_string(), "0000000000000000");
    }
}
