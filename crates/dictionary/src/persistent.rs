//! The structurally-shared (persistent) sorted-leaf hash tree used by
//! mirrors and snapshots.
//!
//! [`PersistentTree`] is semantically identical to the dense
//! [`crate::tree::MerkleTree`] — same leaf/node hashing, same incremental
//! batch application, same epochs — but stores its leaves and interior
//! levels in copy-on-write [`ChunkedVec`]s. Cloning the tree (what snapshot
//! publication does) costs O(chunks) `Arc` bumps instead of an O(n) level
//! copy, and a mutation after a clone copies only the chunks it dirties:
//! publishing after a b-leaf append batch into an n-leaf dictionary
//! allocates O(b·log n + chunks), not O(n). The dense tree still wins on
//! the CA side, where full rebuilds dominate and nothing is ever cloned —
//! contiguous levels hash with better locality and zero spine overhead.
//!
//! Bit-equivalence with the dense tree (identical roots, audit paths, and
//! multiproof bytes over arbitrary batch/remove/publish interleavings) is
//! proptested in `tests/properties.rs`.

use crate::chunk::ChunkedVec;
use crate::parallel::HashPool;
use crate::serial::SerialNumber;
use crate::tree::{empty_root, node_hash, Leaf, TreeReader};
use ritm_crypto::digest::Digest20;

/// A Merkle tree over sorted dictionary leaves with `Arc`-chunked,
/// copy-on-write storage. Cheap to clone; clones share every untouched
/// chunk with their ancestor.
///
/// Unlike the dense tree, the interior levels are *always* valid: every
/// mutating operation leaves the tree proof-ready, so there is no
/// `rebuild()` step and [`PersistentTree::root`] never panics.
#[derive(Debug, Clone, Default)]
pub struct PersistentTree {
    /// Leaves sorted lexicographically by serial.
    leaves: ChunkedVec<Leaf>,
    /// `levels[0]` = leaf hashes, `levels.last()` = `[root]`; empty for an
    /// empty tree.
    levels: Vec<ChunkedVec<Digest20>>,
    /// Monotonic content version; bumped exactly like the dense tree's.
    epoch: u64,
}

impl PersistentTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        PersistentTree::default()
    }

    /// Builds a tree from leaves already sorted by serial.
    pub fn from_sorted_leaves(leaves: impl IntoIterator<Item = Leaf>, pool: &HashPool) -> Self {
        let mut tree = PersistentTree::new();
        tree.rebuild_from(leaves.into_iter().collect(), pool);
        tree
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` if the tree holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Monotonic content version (same semantics as
    /// [`crate::tree::MerkleTree::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The leaf at `index`.
    pub fn leaf(&self, index: usize) -> Leaf {
        *self.leaves.get(index)
    }

    /// Iterates the sorted leaves.
    pub fn iter_leaves(&self) -> impl Iterator<Item = &Leaf> {
        self.leaves.iter()
    }

    /// The current root ([`empty_root`] for an empty tree).
    pub fn root(&self) -> Digest20 {
        match self.levels.last() {
            Some(top) => *top.get(0),
            None => empty_root(),
        }
    }

    /// Binary-searches for `serial`, returning the leaf index if revoked.
    pub fn find(&self, serial: &SerialNumber) -> Option<usize> {
        self.leaves.binary_search_by(|l| l.serial.cmp(serial)).ok()
    }

    /// Index of the first leaf with serial `>= serial`.
    pub fn lower_bound(&self, serial: &SerialNumber) -> usize {
        self.leaves.partition_point(|l| l.serial < *serial)
    }

    /// The audit path (bottom-up sibling hashes) for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn audit_path(&self, index: usize) -> Vec<Digest20> {
        assert!(index < self.len(), "leaf index out of bounds");
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(*level.get(sibling));
            }
            idx /= 2;
        }
        path
    }

    /// Applies a batch of new leaves on the global [`HashPool`]; see
    /// [`PersistentTree::apply_sorted_batch_with`].
    pub fn apply_sorted_batch(&mut self, batch: &[Leaf]) -> bool {
        self.apply_sorted_batch_with(batch, HashPool::global())
    }

    /// Applies a batch of new leaves, copying only the chunks whose
    /// contents change and rehashing only node paths at or after the first
    /// changed position — the persistent counterpart of
    /// [`crate::tree::MerkleTree::apply_sorted_batch_with`], with identical
    /// results and epoch behaviour. Returns `true` when the incremental
    /// path ran (`batch` strictly sorted, no serial already present);
    /// otherwise the tree is rebuilt from scratch, which is always correct.
    pub fn apply_sorted_batch_with(&mut self, batch: &[Leaf], pool: &HashPool) -> bool {
        if batch.is_empty() {
            return true;
        }
        let invariants_hold = batch.windows(2).all(|w| w[0].serial < w[1].serial)
            && batch.iter().all(|l| self.find(&l.serial).is_none());
        if !invariants_hold {
            let mut all: Vec<Leaf> = self.leaves.iter().copied().collect();
            all.extend_from_slice(batch);
            all.sort_by_key(|l| l.serial);
            self.rebuild_from(all, pool);
            self.epoch += 1;
            return false;
        }

        let batch_hashes = pool.map_range(0, batch.len(), |i| batch[i].hash());
        let dirty_from = self.lower_bound(&batch[0].serial);
        let old_len = self.len();
        if self.levels.is_empty() {
            self.levels.push(ChunkedVec::new());
        }
        if dirty_from == old_len {
            // Pure append (the common issuance pattern): extend in place;
            // only the tail chunk is ever copied.
            self.leaves.extend(batch.iter().copied());
            self.levels[0].extend(batch_hashes);
        } else {
            // Merge the sorted batch into the suffix at/after the dirty
            // position. Positions shift, so the suffix chunks are rewritten
            // — values are copied, but no old leaf is rehashed.
            let old_suffix: Vec<Leaf> =
                (dirty_from..old_len).map(|i| *self.leaves.get(i)).collect();
            let old_hashes: Vec<Digest20> = (dirty_from..old_len)
                .map(|i| *self.levels[0].get(i))
                .collect();
            self.leaves.truncate(dirty_from);
            self.levels[0].truncate(dirty_from);
            let (mut oi, mut ni) = (0usize, 0usize);
            while oi < old_suffix.len() || ni < batch.len() {
                let take_old = match (old_suffix.get(oi), batch.get(ni)) {
                    (Some(o), Some(n)) => o.serial < n.serial,
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_old {
                    self.leaves.push(old_suffix[oi]);
                    self.levels[0].push(old_hashes[oi]);
                    oi += 1;
                } else {
                    self.leaves.push(batch[ni]);
                    self.levels[0].push(batch_hashes[ni]);
                    ni += 1;
                }
            }
        }
        self.rehash_levels_from(dirty_from, pool);
        self.epoch += 1;
        true
    }

    /// Removes the leaves carrying `serials`, splicing retained hashes and
    /// rehashing interior nodes only from the first removed position (same
    /// fixed algorithm as [`crate::tree::MerkleTree::remove_sorted_batch`]:
    /// no retained leaf is rehashed, and duplicate-serial leaves cannot
    /// leave a stale hash left of the rehash front). Returns how many
    /// leaves were removed.
    pub fn remove_sorted_batch(&mut self, serials: &[SerialNumber]) -> usize {
        let Some(first) = crate::tree::rollback_front(
            serials,
            |s| self.leaves.binary_search_by(|l| l.serial.cmp(s)).ok(),
            |i| self.leaves.get(i).serial,
        ) else {
            return 0;
        };
        let before = self.len();
        let doomed: std::collections::HashSet<&SerialNumber> = serials.iter().collect();
        let mut kept_leaves = Vec::new();
        let mut kept_hashes = Vec::new();
        for i in first..before {
            let leaf = *self.leaves.get(i);
            if doomed.contains(&leaf.serial) {
                continue;
            }
            kept_leaves.push(leaf);
            kept_hashes.push(*self.levels[0].get(i));
        }
        let removed = before - first - kept_leaves.len();
        self.leaves.truncate(first);
        self.levels[0].truncate(first);
        self.leaves.extend(kept_leaves);
        self.levels[0].extend(kept_hashes);
        if self.leaves.is_empty() {
            self.levels.clear();
        } else {
            self.rehash_levels_from(first, HashPool::global());
        }
        self.epoch += 1;
        removed
    }

    /// Rebuilds everything from `leaves` (sorted by serial) — the fallback
    /// when incremental invariants do not hold.
    fn rebuild_from(&mut self, leaves: Vec<Leaf>, pool: &HashPool) {
        self.levels.clear();
        let hashes = pool.map_range(0, leaves.len(), |i| leaves[i].hash());
        self.leaves = leaves.into_iter().collect();
        if self.leaves.is_empty() {
            return;
        }
        self.levels.push(hashes.into_iter().collect());
        self.rehash_levels_from(0, pool);
    }

    /// Rebuilds interior levels above valid level-0 hashes, recomputing
    /// only nodes whose subtree includes a position `>= dirty_from` —
    /// chunks fully left of the dirty front stay shared with any clone.
    fn rehash_levels_from(&mut self, mut dirty_from: usize, pool: &HashPool) {
        let mut k = 0;
        while self.levels[k].len() > 1 {
            let child_len = self.levels[k].len();
            let parent_len = child_len.div_ceil(2);
            dirty_from /= 2;
            if self.levels.len() == k + 1 {
                self.levels.push(ChunkedVec::new());
            }
            let (children, parents) = self.levels.split_at_mut(k + 1);
            let child = &children[k];
            let parent = &mut parents[0];
            parent.truncate(dirty_from.min(parent_len));
            let fresh = pool.map_range(parent.len(), parent_len, |j| {
                if 2 * j + 1 < child_len {
                    node_hash(child.get(2 * j), child.get(2 * j + 1))
                } else {
                    *child.get(2 * j) // odd node promoted
                }
            });
            parent.extend(fresh);
            k += 1;
        }
        self.levels.truncate(k + 1);
        debug_assert_eq!(self.levels[0].len(), self.leaves.len());
        debug_assert_eq!(self.levels.last().expect("non-empty").len(), 1);
    }

    /// Chunks (across leaves and all levels) this tree shares with `other`
    /// — what a published snapshot keeps alive for free.
    pub fn shared_chunks_with(&self, other: &Self) -> usize {
        self.leaves.shared_chunks_with(&other.leaves)
            + self
                .levels
                .iter()
                .zip(&other.levels)
                .map(|(a, b)| a.shared_chunks_with(b))
                .sum::<usize>()
    }

    /// Total chunks across leaves and levels.
    pub fn chunk_count(&self) -> usize {
        self.leaves.chunk_count()
            + self
                .levels
                .iter()
                .map(ChunkedVec::chunk_count)
                .sum::<usize>()
    }

    /// Approximate reachable heap bytes (shared chunks counted in full) —
    /// the §VII-D memory metric.
    pub fn memory_bytes(&self) -> usize {
        self.leaves.heap_bytes()
            + self
                .levels
                .iter()
                .map(ChunkedVec::heap_bytes)
                .sum::<usize>()
    }

    /// Bytes to persist just the revocation data — the paper's "storage"
    /// metric (matches the dense tree's accounting).
    pub fn storage_bytes(&self) -> usize {
        self.leaves.iter().map(|l| l.serial.len() + 8).sum()
    }
}

impl TreeReader for PersistentTree {
    fn len(&self) -> usize {
        PersistentTree::len(self)
    }

    fn leaf(&self, index: usize) -> Leaf {
        PersistentTree::leaf(self, index)
    }

    fn find(&self, serial: &SerialNumber) -> Option<usize> {
        PersistentTree::find(self, serial)
    }

    fn lower_bound(&self, serial: &SerialNumber) -> usize {
        PersistentTree::lower_bound(self, serial)
    }

    fn audit_path(&self, index: usize) -> Vec<Digest20> {
        PersistentTree::audit_path(self, index)
    }

    fn level_node(&self, level: usize, index: usize) -> Digest20 {
        *self.levels[level].get(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{slots_materialized, CHUNK};
    use crate::tree::MerkleTree;

    fn leaves(serials: impl IntoIterator<Item = u32>) -> Vec<Leaf> {
        let mut out: Vec<Leaf> = serials
            .into_iter()
            .enumerate()
            .map(|(i, s)| Leaf::new(SerialNumber::from_u24(s), i as u64 + 1))
            .collect();
        out.sort_by_key(|l| l.serial);
        out
    }

    fn dense_of(t: &PersistentTree) -> MerkleTree {
        let mut d = MerkleTree::new();
        d.extend_leaves(t.iter_leaves().copied());
        d.rebuild();
        d
    }

    #[test]
    fn matches_dense_for_all_small_sizes() {
        for n in 0..=33u32 {
            let batch = leaves((0..n).map(|i| i * 3 + 1));
            let mut p = PersistentTree::new();
            assert!(p.apply_sorted_batch(&batch) || batch.is_empty());
            let d = {
                let mut d = MerkleTree::new();
                d.apply_sorted_batch(&batch);
                d
            };
            assert_eq!(p.root(), d.root(), "n = {n}");
            for i in 0..p.len() {
                assert_eq!(p.audit_path(i), d.audit_path(i), "n = {n}, i = {i}");
                assert_eq!(p.leaf(i), d.leaves()[i]);
            }
        }
    }

    #[test]
    fn append_and_merge_batches_match_dense() {
        let mut p = PersistentTree::new();
        let mut d = MerkleTree::new();
        let first = leaves((0..CHUNK as u32 + 100).map(|i| i * 4 + 2));
        assert!(p.apply_sorted_batch(&first));
        d.apply_sorted_batch(&first);
        // A merge batch landing in the middle, then a pure append.
        let mid = leaves((0..50u32).map(|i| i * 8 + 3));
        let mid: Vec<Leaf> = mid
            .into_iter()
            .enumerate()
            .map(|(i, l)| Leaf::new(l.serial, 10_000 + i as u64))
            .collect();
        assert!(p.apply_sorted_batch(&mid));
        d.apply_sorted_batch(&mid);
        let tail = leaves((0..70u32).map(|i| 0x400000 + i));
        assert!(p.apply_sorted_batch(&tail));
        d.apply_sorted_batch(&tail);
        assert_eq!(p.root(), d.root());
        assert_eq!(p.epoch(), d.epoch(), "both bump once per applied batch");
        for i in [0usize, 1, CHUNK - 1, CHUNK, p.len() - 1] {
            assert_eq!(p.audit_path(i), d.audit_path(i), "path {i}");
        }
    }

    #[test]
    fn unsorted_batch_falls_back_and_still_matches() {
        let batch = leaves([9, 1, 5, 3]);
        let mut shuffled = batch.clone();
        shuffled.swap(0, 3);
        let mut p = PersistentTree::new();
        assert!(!p.apply_sorted_batch(&shuffled));
        let mut d = MerkleTree::new();
        d.apply_sorted_batch(&shuffled);
        assert_eq!(p.root(), d.root());
    }

    #[test]
    fn remove_matches_dense_and_restores_root() {
        let base = leaves((0..500u32).map(|i| i * 2));
        let mut p = PersistentTree::new();
        p.apply_sorted_batch(&base);
        let root_before = p.root();
        let batch: Vec<Leaf> = (0..30u32)
            .map(|i| Leaf::new(SerialNumber::from_u24(i * 16 + 1), 600 + i as u64))
            .collect();
        p.apply_sorted_batch(&batch);
        assert_ne!(p.root(), root_before);
        let serials: Vec<SerialNumber> = batch.iter().map(|l| l.serial).collect();
        assert_eq!(p.remove_sorted_batch(&serials), 30);
        assert_eq!(p.root(), root_before);
        assert_eq!(p.root(), dense_of(&p).root());
        // Removing absent serials is a no-op that does not bump the epoch.
        let e = p.epoch();
        assert_eq!(p.remove_sorted_batch(&[SerialNumber::from_u24(1)]), 0);
        assert_eq!(p.epoch(), e);
    }

    #[test]
    fn clone_is_structural_sharing_not_copy() {
        let base = leaves((0..(4 * CHUNK) as u32).map(|i| i * 2));
        let mut p = PersistentTree::new();
        p.apply_sorted_batch(&base);
        let before = slots_materialized();
        let snap = p.clone();
        assert_eq!(
            slots_materialized(),
            before,
            "publish (clone) must materialize zero slots"
        );
        assert_eq!(snap.shared_chunks_with(&p), p.chunk_count());

        // Mutating the original must not disturb the clone.
        let tail = leaves((0..10u32).map(|i| 0x700000 + i));
        let tail: Vec<Leaf> = tail
            .into_iter()
            .enumerate()
            .map(|(i, l)| Leaf::new(l.serial, 9_000 + i as u64))
            .collect();
        let root_snap = snap.root();
        p.apply_sorted_batch(&tail);
        assert_ne!(p.root(), root_snap);
        assert_eq!(snap.root(), root_snap, "retained snapshot unchanged");
        assert_eq!(snap.len(), 4 * CHUNK);
        assert_eq!(snap.root(), dense_of(&snap).root());
    }

    #[test]
    fn publish_after_batch_allocates_batch_not_dictionary() {
        // The acceptance assertion: after publishing (clone), a b-leaf
        // append batch into an n-leaf tree materializes
        // O(b·log n + dirty chunks·CHUNK) slots — bounded per level by the
        // batch plus one copied boundary chunk — never O(n).
        let n = 16 * CHUNK; // 16_384 leaves, 15 levels
        let b = 100usize;
        let base = leaves((0..n as u32).map(|i| i * 2));
        let mut p = PersistentTree::new();
        p.apply_sorted_batch(&base);
        let published = p.clone(); // everything shared: worst case for CoW

        let batch: Vec<Leaf> = (0..b as u32)
            .map(|i| {
                Leaf::new(
                    SerialNumber::from_u24((2 * n) as u32 + 1 + i),
                    (n + 1) as u64 + i as u64,
                )
            })
            .collect();
        let before = slots_materialized();
        assert!(p.apply_sorted_batch(&batch));
        let applied = (slots_materialized() - before) as usize;
        let levels = p.levels.len();
        let bound = (levels + 1) * (b + CHUNK);
        assert!(
            applied <= bound,
            "apply materialized {applied} slots, bound {bound} (n = {n})"
        );
        assert!(applied < n / 2, "apply cost must not scale with n");

        // And the follow-up publish is again allocation-free.
        let before = slots_materialized();
        let republished = p.clone();
        assert_eq!(slots_materialized() - before, 0);
        drop(published);
        assert_eq!(republished.root(), dense_of(&p).root());
    }
}
