//! Expiry-based dictionary sharding (paper §VIII, "Ever-growing
//! dictionaries").
//!
//! A CA may split revocations across several dictionaries, each dedicated to
//! certificates expiring before a given time. Since the CA/B Forum bounds
//! certificate lifetime (39 months at the time of the paper), RAs can delete
//! a whole shard once every certificate it covers has expired, bounding RA
//! storage without giving up the append-only property *within* each shard.

use crate::dictionary::{CaDictionary, RefreshMessage, RevocationIssuance, RevocationStatus};
use crate::root::CaId;
use crate::serial::SerialNumber;
use rand::{RngCore, SeedableRng};
use ritm_crypto::digest::Digest20;
use ritm_crypto::ed25519::{SigningKey, VerifyingKey};
use std::collections::BTreeMap;

/// Seconds per expiry bucket. One quarter keeps the shard count small while
/// letting RAs reclaim space regularly.
pub const DEFAULT_BUCKET_SECS: u64 = 90 * 24 * 3600;

/// Default certificate lifetime assumed when a revocation arrives without
/// expiry metadata: the CA/B Forum's 39-month bound at the time of the
/// paper.
pub const DEFAULT_CERT_LIFETIME_SECS: u64 = 39 * 30 * 24 * 3600;

/// A CA maintaining one dictionary per certificate-expiry bucket.
#[derive(Debug)]
pub struct ShardedCa {
    ca: CaId,
    key: SigningKey,
    delta: u64,
    chain_len: u64,
    bucket_secs: u64,
    /// Bucket start time → dictionary for certs expiring within the bucket.
    shards: BTreeMap<u64, CaDictionary>,
    /// Monotonic content version across every shard (bumped on revocations
    /// and pruning; shard-local epochs alone could regress when a shard is
    /// dropped).
    epoch: u64,
}

impl ShardedCa {
    /// Creates a sharded CA. Shards are created lazily on first revocation.
    pub fn new(ca: CaId, key: SigningKey, delta: u64, chain_len: u64, bucket_secs: u64) -> Self {
        assert!(bucket_secs > 0, "bucket size must be positive");
        ShardedCa {
            ca,
            key,
            delta,
            chain_len,
            bucket_secs,
            shards: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// The CA identity shared by all shards (each shard gets a derived id).
    pub fn ca(&self) -> CaId {
        self.ca
    }

    /// The group verifying key (every shard signs with the same key).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// Monotonic content version across all shards.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A digest binding every live shard's root (shard ids are derived from
    /// bucket numbers, so the fold is order-stable over the sorted map).
    pub fn combined_root(&self) -> Digest20 {
        let mut acc = crate::tree::empty_root();
        for (bucket, dict) in &self.shards {
            let mut buf = Vec::with_capacity(20 + 8 + 20);
            buf.extend_from_slice(acc.as_bytes());
            buf.extend_from_slice(&bucket.to_be_bytes());
            buf.extend_from_slice(dict.signed_root().root.as_bytes());
            acc = Digest20::hash(&buf);
        }
        acc
    }

    /// Identifier of the shard for a certificate expiring at `expiry`.
    pub fn shard_id(&self, expiry: u64) -> CaId {
        let bucket = self.bucket_of(expiry);
        let mut name = Vec::with_capacity(16);
        name.extend_from_slice(&self.ca.0);
        name.extend_from_slice(&bucket.to_be_bytes());
        let d = ritm_crypto::digest::Digest20::hash(&name);
        let mut id = [0u8; 8];
        id.copy_from_slice(&d.as_bytes()[..8]);
        CaId(id)
    }

    fn bucket_of(&self, expiry: u64) -> u64 {
        expiry / self.bucket_secs
    }

    /// Revokes `serial` for a certificate expiring at `expiry`, routing it
    /// to (and lazily creating) the right shard.
    pub fn revoke<R: RngCore + ?Sized>(
        &mut self,
        serial: SerialNumber,
        expiry: u64,
        rng: &mut R,
        now: u64,
    ) -> Option<(CaId, RevocationIssuance)> {
        let bucket = self.bucket_of(expiry);
        let shard_id = self.shard_id(expiry);
        let delta = self.delta;
        let chain_len = self.chain_len;
        let key = self.key.clone();
        let dict = self
            .shards
            .entry(bucket)
            .or_insert_with(|| CaDictionary::new(shard_id, key, delta, chain_len, rng, now));
        let issued = dict.insert(&[serial], rng, now).map(|iss| (shard_id, iss));
        if issued.is_some() {
            self.epoch += 1;
        }
        issued
    }

    /// Batch-revokes serials whose expiry is unknown, routing the whole
    /// batch to the bucket for `now +`
    /// [`DEFAULT_CERT_LIFETIME_SECS`] (the CA/B-bounded worst case, so the
    /// shard is never reclaimed before the certificates could expire).
    ///
    /// Returns `None` when every serial was already revoked in that shard.
    pub fn revoke_batch_default_expiry<R: RngCore + ?Sized>(
        &mut self,
        serials: &[SerialNumber],
        rng: &mut R,
        now: u64,
    ) -> Option<RevocationIssuance> {
        let expiry = now + DEFAULT_CERT_LIFETIME_SECS;
        let bucket = self.bucket_of(expiry);
        let shard_id = self.shard_id(expiry);
        let delta = self.delta;
        let chain_len = self.chain_len;
        let key = self.key.clone();
        let dict = self
            .shards
            .entry(bucket)
            .or_insert_with(|| CaDictionary::new(shard_id, key, delta, chain_len, rng, now));
        let issued = dict.insert(serials, rng, now);
        if issued.is_some() {
            self.epoch += 1;
        }
        issued
    }

    /// Batch-revokes `(serial, expiry)` pairs, routing each to its expiry
    /// bucket and applying the per-shard batches **concurrently** on
    /// `pool`: shards are independent dictionaries (own tree, own hash
    /// chain, own signed root), so a Heartbleed-scale revocation storm
    /// spanning several buckets inserts, rebuilds, and re-signs every
    /// shard in parallel.
    ///
    /// Missing shards are created first (sequentially — creation is cheap);
    /// each shard's insert then runs on its own worker with an independent
    /// RNG seeded from the caller's. Returns the issuances in bucket order
    /// (deterministic; empty entries for shards where every serial was
    /// already revoked are omitted).
    pub fn revoke_batch_sharded<R: RngCore + ?Sized>(
        &mut self,
        entries: &[(SerialNumber, u64)],
        pool: &crate::parallel::HashPool,
        rng: &mut R,
        now: u64,
    ) -> Vec<(CaId, RevocationIssuance)> {
        use std::collections::BTreeMap;
        let mut by_bucket: BTreeMap<u64, Vec<SerialNumber>> = BTreeMap::new();
        for (serial, expiry) in entries {
            by_bucket
                .entry(self.bucket_of(*expiry))
                .or_default()
                .push(*serial);
        }
        // Create missing shards up front so the parallel phase only needs
        // disjoint &mut borrows of existing dictionaries.
        for &bucket in by_bucket.keys() {
            if !self.shards.contains_key(&bucket) {
                let dict = CaDictionary::new(
                    self.shard_id(bucket * self.bucket_secs),
                    self.key.clone(),
                    self.delta,
                    self.chain_len,
                    rng,
                    now,
                );
                self.shards.insert(bucket, dict);
            }
        }
        // Seed one RNG per shard from the caller's stream (deterministic
        // given the caller's seed, independent across workers).
        let seeds: BTreeMap<u64, u64> = by_bucket.keys().map(|&b| (b, rng.next_u64())).collect();
        let tasks: Vec<(u64, &mut CaDictionary, Vec<SerialNumber>, u64)> = {
            let mut batches = by_bucket;
            self.shards
                .iter_mut()
                .filter_map(|(bucket, dict)| {
                    let serials = batches.remove(bucket)?;
                    Some((*bucket, dict, serials, seeds[bucket]))
                })
                .collect()
        };
        let issued: Vec<(CaId, Option<RevocationIssuance>)> =
            pool.run_tasks(tasks, |(_bucket, dict, serials, seed)| {
                let mut shard_rng = rand::rngs::StdRng::seed_from_u64(seed);
                let ca = dict.ca();
                (ca, dict.insert(&serials, &mut shard_rng, now))
            });
        let out: Vec<(CaId, RevocationIssuance)> = issued
            .into_iter()
            .filter_map(|(ca, iss)| iss.map(|i| (ca, i)))
            .collect();
        if !out.is_empty() {
            self.epoch += 1;
        }
        out
    }

    /// The newest shard's freshness statement for `now`, if any shard
    /// exists.
    pub fn newest_shard_freshness(&self, now: u64) -> Option<crate::FreshnessStatement> {
        self.shards
            .values()
            .next_back()
            .and_then(|d| d.current_freshness(now))
    }

    /// Fig. 2 `refresh` for the newest shard (the one still accepting
    /// revocations). Returns `None` when no shard exists yet.
    pub fn refresh_newest<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        now: u64,
    ) -> Option<RefreshMessage> {
        self.shards
            .values_mut()
            .next_back()
            .map(|d| d.refresh(rng, now))
    }

    /// Builds a revocation status for `serial`: a presence proof from the
    /// shard holding it, otherwise an absence proof from the newest shard.
    ///
    /// Absence here is **per-shard**: it proves the serial absent from the
    /// newest shard's dictionary only. Callers needing global absence must
    /// query every live shard (each shard is its own dictionary with its
    /// own signed root). Returns `None` when no shard exists or the owning
    /// shard has no current freshness statement.
    pub fn prove(&self, serial: &SerialNumber, now: u64) -> Option<RevocationStatus> {
        let owner = self
            .shards
            .values()
            .find(|d| d.contains(serial))
            .or_else(|| self.shards.values().next_back())?;
        owner.prove(serial, now)
    }

    /// Number of live shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total revocations across shards.
    pub fn total_revocations(&self) -> usize {
        self.shards.values().map(CaDictionary::len).sum()
    }

    /// Drops every shard whose bucket ended before `now` — all certificates
    /// it covered have expired, so its revocations are moot (RA-side
    /// reclamation from §VIII).
    ///
    /// Returns the number of shards (and revocations) dropped.
    pub fn prune_expired(&mut self, now: u64) -> (usize, usize) {
        let cutoff = now / self.bucket_secs;
        let expired: Vec<u64> = self.shards.range(..cutoff).map(|(b, _)| *b).collect();
        let mut dropped_revs = 0;
        for b in &expired {
            if let Some(d) = self.shards.remove(b) {
                dropped_revs += d.len();
            }
        }
        if !expired.is_empty() {
            self.epoch += 1;
        }
        (expired.len(), dropped_revs)
    }

    /// Total §VII-D storage across shards.
    pub fn storage_bytes(&self) -> usize {
        self.shards.values().map(CaDictionary::storage_bytes).sum()
    }

    /// Iterates over `(bucket_start, dictionary)` pairs.
    pub fn shards(&self) -> impl Iterator<Item = (&u64, &CaDictionary)> {
        self.shards.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BUCKET: u64 = 100;

    fn sharded() -> (ShardedCa, StdRng) {
        (
            ShardedCa::new(
                CaId::from_name("ShardedCA"),
                SigningKey::from_seed([6u8; 32]),
                10,
                64,
                BUCKET,
            ),
            StdRng::seed_from_u64(11),
        )
    }

    #[test]
    fn routes_by_expiry() {
        let (mut ca, mut rng) = sharded();
        ca.revoke(SerialNumber::from_u24(1), 50, &mut rng, 0);
        ca.revoke(SerialNumber::from_u24(2), 150, &mut rng, 0);
        ca.revoke(SerialNumber::from_u24(3), 160, &mut rng, 0);
        assert_eq!(ca.shard_count(), 2);
        assert_eq!(ca.total_revocations(), 3);
    }

    #[test]
    fn shard_ids_differ_per_bucket_and_ca() {
        let (ca, _) = sharded();
        assert_eq!(ca.shard_id(10), ca.shard_id(90));
        assert_ne!(ca.shard_id(10), ca.shard_id(110));
        let other = ShardedCa::new(
            CaId::from_name("Other"),
            SigningKey::from_seed([7u8; 32]),
            10,
            64,
            BUCKET,
        );
        assert_ne!(ca.shard_id(10), other.shard_id(10));
    }

    #[test]
    fn pruning_drops_expired_buckets_only() {
        let (mut ca, mut rng) = sharded();
        ca.revoke(SerialNumber::from_u24(1), 50, &mut rng, 0); // bucket 0
        ca.revoke(SerialNumber::from_u24(2), 150, &mut rng, 0); // bucket 1
        ca.revoke(SerialNumber::from_u24(3), 250, &mut rng, 0); // bucket 2

        let (shards, revs) = ca.prune_expired(199);
        assert_eq!((shards, revs), (1, 1), "only bucket 0 fully expired");
        assert_eq!(ca.shard_count(), 2);

        let (shards, _) = ca.prune_expired(1_000);
        assert_eq!(shards, 2);
        assert_eq!(ca.total_revocations(), 0);
    }

    #[test]
    fn same_serial_different_shards_allowed() {
        // Serial uniqueness is per dictionary; shards are separate
        // dictionaries.
        let (mut ca, mut rng) = sharded();
        assert!(ca
            .revoke(SerialNumber::from_u24(7), 50, &mut rng, 0)
            .is_some());
        assert!(ca
            .revoke(SerialNumber::from_u24(7), 150, &mut rng, 0)
            .is_some());
        // But within a shard duplicates are rejected.
        assert!(ca
            .revoke(SerialNumber::from_u24(7), 60, &mut rng, 0)
            .is_none());
    }

    #[test]
    fn storage_shrinks_after_prune() {
        let (mut ca, mut rng) = sharded();
        for i in 0..10u32 {
            ca.revoke(SerialNumber::from_u24(i), 50, &mut rng, 0);
        }
        let before = ca.storage_bytes();
        ca.prune_expired(500);
        assert!(ca.storage_bytes() < before);
        assert_eq!(ca.storage_bytes(), 0);
    }

    #[test]
    fn parallel_sharded_batch_matches_sequential_routing() {
        // The same entries applied via revoke_batch_sharded (multi-worker)
        // and via per-entry revoke (sequential) must land in the same
        // shards with the same revocations.
        let (mut par, _) = sharded();
        let (mut seq, mut rng_seq) = sharded();
        let entries: Vec<(SerialNumber, u64)> = (0..40u32)
            .map(|i| (SerialNumber::from_u24(i), (i as u64 % 4) * BUCKET + 10))
            .collect();

        let mut rng_par = StdRng::seed_from_u64(11);
        let pool = crate::parallel::HashPool::new(4);
        let issued = par.revoke_batch_sharded(&entries, &pool, &mut rng_par, 0);
        assert_eq!(issued.len(), 4, "one issuance per touched bucket");

        for (serial, expiry) in &entries {
            seq.revoke(*serial, *expiry, &mut rng_seq, 0);
        }
        assert_eq!(par.shard_count(), seq.shard_count());
        assert_eq!(par.total_revocations(), seq.total_revocations());
        for ((b1, d1), (b2, d2)) in par.shards().zip(seq.shards()) {
            assert_eq!(b1, b2);
            assert_eq!(d1.signed_root().root, d2.signed_root().root, "bucket {b1}");
            assert_eq!(d1.ca(), d2.ca());
        }

        // Re-applying the same serials yields nothing new.
        let again = par.revoke_batch_sharded(&entries, &pool, &mut rng_par, 1);
        assert!(again.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_panics() {
        ShardedCa::new(
            CaId::from_name("X"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            0,
        );
    }
}
