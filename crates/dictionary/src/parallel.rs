//! A small scoped-thread fork/join pool for hashing work.
//!
//! Full tree rebuilds and Heartbleed-scale batches hash hundreds of
//! thousands of independent leaves and interior nodes; on a multi-core RA
//! or CA that work is embarrassingly parallel. [`HashPool`] splits an index
//! range (or a list of owned tasks) into one contiguous chunk per worker
//! and runs the chunks on `std::thread::scope` threads — std-only, no
//! external dependencies, and results are concatenated back in input order
//! so parallel and sequential execution are bit-identical.
//!
//! Small inputs (below [`PAR_THRESHOLD`]) and single-worker pools run
//! inline: spawning threads for a handful of hashes costs more than it
//! saves, and it keeps the single-core fallback allocation-free.

use std::sync::OnceLock;

/// Minimum number of items before [`HashPool`] spawns threads; below this
/// the sequential loop wins on thread-spawn overhead alone.
pub const PAR_THRESHOLD: usize = 4096;

/// A fork/join worker pool over scoped threads.
///
/// The pool is just a worker count: each call carves its input into that
/// many contiguous chunks and joins them in order, so no state persists
/// between calls and borrowed inputs work without `'static` bounds.
#[derive(Debug, Clone, Copy)]
pub struct HashPool {
    workers: usize,
}

impl HashPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        HashPool {
            workers: workers.max(1),
        }
    }

    /// A single-worker pool: every call runs inline on the caller's thread.
    pub fn sequential() -> Self {
        HashPool::new(1)
    }

    /// The process-wide default pool, sized from
    /// `std::thread::available_parallelism` (overridable with the
    /// `RITM_HASH_WORKERS` environment variable, read once).
    pub fn global() -> &'static HashPool {
        static GLOBAL: OnceLock<HashPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("RITM_HASH_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&w| w > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                });
            HashPool::new(workers)
        })
    }

    /// Number of workers this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `start..end`, returning results in index order.
    ///
    /// Runs inline when the pool has one worker or the range is shorter
    /// than [`PAR_THRESHOLD`].
    pub fn map_range<U, F>(&self, start: usize, end: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let n = end.saturating_sub(start);
        if self.workers == 1 || n < PAR_THRESHOLD {
            return (start..end).map(f).collect();
        }
        let chunks = self.workers.min(n);
        let per = n.div_ceil(chunks);
        let f = &f;
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..chunks)
                .map(|c| {
                    let lo = start + c * per;
                    let hi = (lo + per).min(end);
                    s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("hash worker panicked"));
            }
        });
        out
    }

    /// Runs `f` over a list of owned tasks (e.g. per-shard batches),
    /// returning results in task order. Unlike [`HashPool::map_range`] this
    /// always fans out when there is more than one task and more than one
    /// worker — callers use it for coarse-grained jobs where each task is
    /// itself substantial.
    pub fn run_tasks<T, U, F>(&self, tasks: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = tasks.len();
        if self.workers == 1 || n <= 1 {
            return tasks.into_iter().map(f).collect();
        }
        let chunks = self.workers.min(n);
        let per = n.div_ceil(chunks);
        let f = &f;
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(chunks);
            let mut rest = tasks;
            while !rest.is_empty() {
                let tail = rest.split_off(per.min(rest.len()));
                let chunk = rest;
                rest = tail;
                handles.push(s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()));
            }
            for h in handles {
                out.extend(h.join().expect("task worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_range_matches_sequential() {
        let pool = HashPool::new(4);
        let par = pool.map_range(0, PAR_THRESHOLD + 37, |i| i * 3);
        let seq: Vec<usize> = (0..PAR_THRESHOLD + 37).map(|i| i * 3).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn small_ranges_run_inline() {
        let pool = HashPool::new(8);
        assert_eq!(pool.map_range(5, 8, |i| i), vec![5, 6, 7]);
        assert_eq!(pool.map_range(5, 5, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn run_tasks_preserves_order() {
        let pool = HashPool::new(3);
        let tasks: Vec<u64> = (0..10).collect();
        assert_eq!(
            pool.run_tasks(tasks, |t| t * t),
            (0..10).map(|t| t * t).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn single_worker_is_inline() {
        let pool = HashPool::sequential();
        assert_eq!(pool.workers(), 1);
        let v = pool.map_range(0, PAR_THRESHOLD * 2, |i| i);
        assert_eq!(v.len(), PAR_THRESHOLD * 2);
    }

    #[test]
    fn global_pool_has_at_least_one_worker() {
        assert!(HashPool::global().workers() >= 1);
    }
}
