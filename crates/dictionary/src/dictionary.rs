//! The authenticated dictionary — Fig. 2 of the paper.
//!
//! [`CaDictionary`] is the trusted, CA-side structure implementing `insert`
//! and `refresh`; [`MirrorDictionary`] is the untrusted copy every RA keeps,
//! implementing `update` and `prove`. Both wrap the same sorted-leaf
//! [`crate::tree::MerkleTree`] structure.

use crate::freshness::{FreshnessError, FreshnessStatement};
use crate::persistent::PersistentTree;
use crate::proof::{ProofError, ProvenStatus, RevocationProof};
use crate::root::{CaId, SignedRoot};
use crate::serial::SerialNumber;
use crate::tree::{Leaf, MerkleTree};
use rand::RngCore;
use ritm_crypto::ed25519::{SigningKey, VerifyingKey};
use ritm_crypto::hashchain::HashChain;
use ritm_crypto::wire::{DecodeError, Reader, Writer};

/// A revocation issuance message: the revoked serials plus the new signed
/// root (first row of Tab. I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationIssuance {
    /// Revocation number of the first serial in `serials`; the batch covers
    /// numbers `first_number .. first_number + serials.len()`.
    pub first_number: u64,
    /// Newly revoked serials, in issuance order.
    pub serials: Vec<SerialNumber>,
    /// The root signed over the dictionary including this batch.
    pub signed_root: SignedRoot,
}

impl RevocationIssuance {
    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        8 + 4
            + self.serials.iter().map(|s| 1 + s.len()).sum::<usize>()
            + crate::root::SIGNED_ROOT_LEN
    }

    /// Serializes the issuance for dissemination (pre-sized to
    /// [`RevocationIssuance::encoded_len`]; never reallocates).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Appends the encoding to an existing writer (protocol envelopes
    /// embed issuances without an intermediate buffer).
    pub fn encode_into(&self, w: &mut Writer) {
        w.u64(self.first_number);
        w.u32(self.serials.len() as u32);
        for s in &self.serials {
            w.vec8(s.as_bytes());
        }
        w.bytes(&self.signed_root.to_bytes());
    }

    /// Parses an issuance message.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let first_number = r.u64("issuance first number")?;
        let count = r.u32("issuance count")? as usize;
        // Each serial costs at least 2 bytes (length prefix + 1 data byte),
        // so a count not covered by the remaining buffer is forged; checking
        // here keeps the allocation and the parse loop attacker-independent.
        r.check_count(count, 2, "issuance count exceeds buffer")?;
        let mut serials = Vec::with_capacity(count);
        for _ in 0..count {
            let raw = r.vec8("issuance serial")?;
            serials.push(
                SerialNumber::new(raw)
                    .map_err(|_| DecodeError::new("invalid serial", r.position()))?,
            );
        }
        let signed_root = SignedRoot::decode(&mut r)?;
        r.finish("issuance trailing bytes")?;
        Ok(RevocationIssuance {
            first_number,
            serials,
            signed_root,
        })
    }
}

/// What a CA disseminates at each period boundary (rows of Tab. I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshMessage {
    /// Nothing new was revoked: only a freshness statement.
    Freshness(FreshnessStatement),
    /// The hash chain was exhausted: a brand-new signed root.
    NewRoot(SignedRoot),
}

/// The full revocation status an RA sends to a client — Eq. (3):
/// `proof, {root, n, H^m(v), t}_{K⁻_CA}, H^(m-p)(v)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevocationStatus {
    /// Presence/absence proof for the queried serial.
    pub proof: RevocationProof,
    /// The signed root the proof commits to.
    pub signed_root: SignedRoot,
    /// The latest freshness statement for that root.
    pub freshness: FreshnessStatement,
}

/// Why a [`RevocationStatus`] failed client-side validation (§III step 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusError {
    /// The signed root's signature is invalid (step 5b precondition).
    BadSignature,
    /// The proof does not verify against the signed root (step 5b).
    BadProof(ProofError),
    /// The freshness statement is older than 2Δ or forged (step 5c).
    NotFresh(FreshnessError),
}

impl core::fmt::Display for StatusError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StatusError::BadSignature => f.write_str("signed root signature invalid"),
            StatusError::BadProof(e) => write!(f, "revocation proof invalid: {e}"),
            StatusError::NotFresh(e) => write!(f, "freshness check failed: {e}"),
        }
    }
}

impl std::error::Error for StatusError {}

impl RevocationStatus {
    /// Client-side validation (§III step 5): signature, proof, freshness.
    ///
    /// Returns the proven status on success.
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`StatusError`].
    pub fn validate(
        &self,
        serial: &SerialNumber,
        ca_key: &VerifyingKey,
        delta: u64,
        now: u64,
    ) -> Result<ProvenStatus, StatusError> {
        self.signed_root
            .verify(ca_key)
            .map_err(|_| StatusError::BadSignature)?;
        let status = self
            .proof
            .verify(serial, &self.signed_root.root, self.signed_root.size)
            .map_err(StatusError::BadProof)?;
        self.freshness
            .verify(&self.signed_root, delta, now)
            .map_err(StatusError::NotFresh)?;
        Ok(status)
    }

    /// Serializes the status (this is the payload piggybacked onto TLS; its
    /// size is the paper's 500–900 byte figure, §VII-D). Pre-sized to
    /// [`RevocationStatus::encoded_len`]; never reallocates.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        w.vec16(&self.proof.to_bytes());
        w.bytes(&self.signed_root.to_bytes());
        w.bytes(&self.freshness.to_bytes());
        w.into_bytes()
    }

    /// Parses a status message.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let proof_bytes = r.vec16("status proof")?;
        let proof = RevocationProof::from_bytes(proof_bytes)?;
        let signed_root = SignedRoot::decode(&mut r)?;
        let freshness = FreshnessStatement::decode(&mut r)?;
        r.finish("status trailing bytes")?;
        Ok(RevocationStatus {
            proof,
            signed_root,
            freshness,
        })
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + self.proof.encoded_len() + crate::root::SIGNED_ROOT_LEN + 20
    }
}

/// A compressed revocation status for several serials of **one** CA's
/// chain: a single [`crate::proof::MultiProof`] plus one signed root and one freshness
/// statement instead of `k` independent [`RevocationStatus`] objects.
///
/// This is the wire form of the §VIII certificate-chain optimization: the
/// audit paths of a chain's serials share most of their sibling nodes, and
/// the root/freshness pair is common to all of them, so the compressed
/// status shrinks the per-handshake communication overhead (Fig. 7)
/// substantially for multi-certificate chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiRevocationStatus {
    /// The serials covered, in chain order.
    pub serials: Vec<SerialNumber>,
    /// One compressed proof answering every serial.
    pub proof: crate::proof::MultiProof,
    /// The signed root the proof commits to.
    pub signed_root: SignedRoot,
    /// The latest freshness statement for that root.
    pub freshness: FreshnessStatement,
}

impl MultiRevocationStatus {
    /// Client-side validation: signature, compressed proof, freshness —
    /// each checked **once** for the whole serial set.
    ///
    /// Returns one proven status per covered serial, aligned with
    /// [`MultiRevocationStatus::serials`].
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`StatusError`].
    pub fn validate(
        &self,
        ca_key: &VerifyingKey,
        delta: u64,
        now: u64,
    ) -> Result<Vec<ProvenStatus>, StatusError> {
        self.signed_root
            .verify(ca_key)
            .map_err(|_| StatusError::BadSignature)?;
        let statuses = self
            .proof
            .verify(&self.serials, &self.signed_root.root, self.signed_root.size)
            .map_err(StatusError::BadProof)?;
        self.freshness
            .verify(&self.signed_root, delta, now)
            .map_err(StatusError::NotFresh)?;
        Ok(statuses)
    }

    /// Exact encoded size in bytes, computed without serializing.
    pub fn encoded_len(&self) -> usize {
        1 + self.serials.iter().map(|s| 1 + s.len()).sum::<usize>()
            + 3
            + self.proof.encoded_len()
            + crate::root::SIGNED_ROOT_LEN
            + 20
    }

    /// Serializes the compressed status (pre-sized; never reallocates).
    ///
    /// # Panics
    ///
    /// Panics when more than 255 serials are covered (a silent truncation
    /// would emit an undecodable payload; real chains are single digits).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        assert!(
            self.serials.len() <= u8::MAX as usize,
            "multi status serial count overflow"
        );
        w.u8(self.serials.len() as u8);
        for s in &self.serials {
            w.vec8(s.as_bytes());
        }
        w.vec24(&self.proof.to_bytes());
        w.bytes(&self.signed_root.to_bytes());
        w.bytes(&self.freshness.to_bytes());
        w.into_bytes()
    }

    /// Parses a compressed status.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let n = r.u8("multi status serial count")? as usize;
        r.check_count(n, 2, "multi status serial count exceeds buffer")?;
        let mut serials = Vec::with_capacity(n);
        for _ in 0..n {
            let raw = r.vec8("multi status serial")?;
            serials.push(
                SerialNumber::new(raw)
                    .map_err(|_| DecodeError::new("invalid serial", r.position()))?,
            );
        }
        let proof_bytes = r.vec24("multi status proof")?;
        let proof = crate::proof::MultiProof::from_bytes(proof_bytes)?;
        let signed_root = SignedRoot::decode(&mut r)?;
        let freshness = FreshnessStatement::decode(&mut r)?;
        r.finish("multi status trailing bytes")?;
        Ok(MultiRevocationStatus {
            serials,
            proof,
            signed_root,
            freshness,
        })
    }
}

/// The CA-side authenticated dictionary (trusted; Fig. 2 `insert` and
/// `refresh`).
#[derive(Debug)]
pub struct CaDictionary {
    ca: CaId,
    key: SigningKey,
    tree: MerkleTree,
    /// Full issuance log by number (1-based), for RA catch-up sync.
    log: Vec<SerialNumber>,
    /// Historical `(end_count, signed_root)` per applied batch, in
    /// ascending `end_count` order — the per-version roots paged catch-up
    /// replies anchor to. Fed by [`CaDictionary::insert`] and by log
    /// replay after a crash.
    batch_roots: Vec<(u64, SignedRoot)>,
    chain: HashChain,
    chain_len: u64,
    delta: u64,
    signed_root: SignedRoot,
}

impl CaDictionary {
    /// Creates an empty dictionary and signs its genesis root.
    ///
    /// `chain_len` is the paper's `m` parameter — how many Δ-periods one
    /// hash chain covers before a new signed root is required.
    pub fn new<R: RngCore + ?Sized>(
        ca: CaId,
        key: SigningKey,
        delta: u64,
        chain_len: u64,
        rng: &mut R,
        now: u64,
    ) -> Self {
        let tree = MerkleTree::new();
        let chain = HashChain::generate(rng, chain_len);
        let signed_root = SignedRoot::create(&key, ca, tree.root(), 0, chain.anchor(), now);
        CaDictionary {
            ca,
            key,
            tree,
            log: Vec::new(),
            batch_roots: Vec::new(),
            chain,
            chain_len,
            delta,
            signed_root,
        }
    }

    /// Reconstructs a dictionary from a replayed sequence of issuance
    /// records (a crash-recovery log). Each record is verified exactly the
    /// way a mirror would verify it — signature, contiguous numbering, no
    /// duplicate serials, and the rebuilt root matching the record's signed
    /// root — so a corrupt or forged log can never resurrect a dictionary
    /// that disagrees with what was disseminated.
    ///
    /// The hash-chain preimages die with the crashed process, so recovery
    /// rotates: a fresh chain is generated and a new root (same tree, same
    /// size, new anchor, timestamp `now`) is signed — exactly the
    /// [`RefreshMessage::NewRoot`] rotation mirrors already follow.
    ///
    /// # Errors
    ///
    /// The index of the first record that failed verification; records
    /// before it were applied (callers typically truncate the log there).
    pub fn replay<R: RngCore + ?Sized>(
        ca: CaId,
        key: SigningKey,
        delta: u64,
        chain_len: u64,
        records: &[RevocationIssuance],
        rng: &mut R,
        now: u64,
    ) -> Result<Self, usize> {
        let verifying = key.verifying_key();
        let mut dict = CaDictionary::new(ca, key, delta, chain_len, rng, now);
        for (i, rec) in records.iter().enumerate() {
            let sr = &rec.signed_root;
            let ok = sr.ca == ca
                && sr.verify(&verifying).is_ok()
                && rec.first_number == dict.log.len() as u64 + 1
                && !rec.serials.is_empty();
            if !ok {
                return Err(i);
            }
            let first_number = rec.first_number;
            let mut in_batch = std::collections::HashSet::new();
            for s in &rec.serials {
                if dict.tree.find(s).is_some() || !in_batch.insert(*s) {
                    return Err(i);
                }
            }
            let mut batch: Vec<Leaf> = rec
                .serials
                .iter()
                .enumerate()
                .map(|(j, s)| Leaf::new(*s, first_number + j as u64))
                .collect();
            batch.sort_by_key(|l| l.serial);
            dict.tree.apply_sorted_batch(&batch);
            if dict.tree.root() != sr.root || dict.tree.len() as u64 != sr.size {
                dict.tree.remove_sorted_batch(&rec.serials);
                return Err(i);
            }
            dict.log.extend_from_slice(&rec.serials);
            dict.batch_roots.push((dict.log.len() as u64, *sr));
        }
        // Post-replay rotation: the recovered dictionary signs the same
        // content under a fresh chain.
        dict.signed_root = SignedRoot::create(
            &dict.key,
            dict.ca,
            dict.tree.root(),
            dict.tree.len() as u64,
            dict.chain.anchor(),
            now,
        );
        Ok(dict)
    }

    /// The CA identifier.
    pub fn ca(&self) -> CaId {
        self.ca
    }

    /// The CA's verifying key (what clients and RAs pin).
    pub fn verifying_key(&self) -> VerifyingKey {
        self.key.verifying_key()
    }

    /// The dissemination period Δ.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Number of revocations issued so far.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` if nothing has been revoked.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The latest signed root.
    pub fn signed_root(&self) -> &SignedRoot {
        &self.signed_root
    }

    /// Monotonic content epoch of the underlying tree (see
    /// [`crate::tree::MerkleTree::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.tree.epoch()
    }

    /// Whether `serial` is already revoked.
    pub fn contains(&self, serial: &SerialNumber) -> bool {
        self.tree.find(serial).is_some()
    }

    /// Fig. 2 `insert`, batched: revokes `serials` (duplicates and
    /// already-revoked serials are skipped), rebuilds the tree, rotates the
    /// hash chain, and returns the issuance message to disseminate.
    ///
    /// Returns `None` when every serial was already revoked (nothing to
    /// disseminate).
    pub fn insert<R: RngCore + ?Sized>(
        &mut self,
        serials: &[SerialNumber],
        rng: &mut R,
        now: u64,
    ) -> Option<RevocationIssuance> {
        let first_number = self.log.len() as u64 + 1;
        let mut added = Vec::new();
        let mut in_batch = std::collections::HashSet::new();
        for s in serials {
            if self.tree.find(s).is_some() || !in_batch.insert(*s) {
                continue;
            }
            added.push(*s);
        }
        if added.is_empty() {
            return None;
        }
        let mut batch: Vec<Leaf> = added
            .iter()
            .enumerate()
            .map(|(i, s)| Leaf::new(*s, first_number + i as u64))
            .collect();
        batch.sort_by_key(|l| l.serial);
        self.tree.apply_sorted_batch(&batch);
        self.log.extend_from_slice(&added);
        self.chain = HashChain::generate(rng, self.chain_len);
        self.signed_root = SignedRoot::create(
            &self.key,
            self.ca,
            self.tree.root(),
            self.tree.len() as u64,
            self.chain.anchor(),
            now,
        );
        self.batch_roots
            .push((self.log.len() as u64, self.signed_root));
        Some(RevocationIssuance {
            first_number,
            serials: added,
            signed_root: self.signed_root,
        })
    }

    /// Fig. 2 `refresh`: called at least every Δ when there is no new
    /// revocation. Returns either the next freshness statement or, when the
    /// chain is exhausted (`p ≥ m`), a brand-new signed root.
    pub fn refresh<R: RngCore + ?Sized>(&mut self, rng: &mut R, now: u64) -> RefreshMessage {
        let p = now.saturating_sub(self.signed_root.timestamp) / self.delta.max(1);
        match self.chain.statement(p) {
            Ok(value) => RefreshMessage::Freshness(FreshnessStatement::new(value)),
            Err(_) => {
                self.chain = HashChain::generate(rng, self.chain_len);
                self.signed_root = SignedRoot::create(
                    &self.key,
                    self.ca,
                    self.tree.root(),
                    self.tree.len() as u64,
                    self.chain.anchor(),
                    now,
                );
                RefreshMessage::NewRoot(self.signed_root)
            }
        }
    }

    /// Current freshness statement for time `now` (what an edge server would
    /// hand out between refreshes).
    pub fn current_freshness(&self, now: u64) -> Option<FreshnessStatement> {
        let p = now.saturating_sub(self.signed_root.timestamp) / self.delta.max(1);
        self.chain.statement(p).ok().map(FreshnessStatement::new)
    }

    /// Replays the issuance of every revocation after `have` (the RA's count
    /// of consecutive valid revocations) — the catch-up half of the paper's
    /// synchronization protocol.
    pub fn issuance_since(&self, have: u64) -> RevocationIssuance {
        let idx = (have as usize).min(self.log.len());
        RevocationIssuance {
            first_number: have + 1,
            serials: self.log[idx..].to_vec(),
            signed_root: self.signed_root,
        }
    }

    /// One page of the catch-up replay for an RA holding `have`
    /// consecutive revocations: at most `limit` serials, anchored to a
    /// signed root that covers exactly the prefix the RA holds after
    /// applying the page. Returns the page and how many serials remain
    /// beyond it (`0` = caught up).
    ///
    /// The page ends at the largest recorded batch boundary within
    /// `limit`; when a single batch alone exceeds `limit`, the page cuts
    /// mid-batch and a root over the prefix is synthesized (signed with
    /// the enclosing batch's timestamp, so the timestamps a mirror sees
    /// stay monotonic). A page ending at the current size carries the
    /// *current* signed root, so rotations are never regressed.
    pub fn issuance_page(&self, have: u64, limit: u32) -> (RevocationIssuance, u64) {
        let total = self.log.len() as u64;
        let have = have.min(total);
        let target = have.saturating_add((limit as u64).max(1)).min(total);
        // Largest batch boundary in (have, target], if any.
        let hi = self.batch_roots.partition_point(|(end, _)| *end <= target);
        let boundary = self.batch_roots[..hi]
            .last()
            .map(|(end, _)| *end)
            .filter(|end| *end > have);
        let end = boundary.unwrap_or(target);
        let signed_root = if end == total {
            self.signed_root
        } else {
            match self
                .batch_roots
                .binary_search_by_key(&end, |(e, _)| *e)
                .ok()
                .map(|i| self.batch_roots[i].1)
            {
                Some(sr) => sr,
                None => self.synthesize_root_at(end),
            }
        };
        let issuance = RevocationIssuance {
            first_number: have + 1,
            serials: self.log[have as usize..end as usize].to_vec(),
            signed_root,
        };
        (issuance, total - end)
    }

    /// Signs a root over the first `end` log entries — the mid-batch page
    /// cut. Timestamp and anchor are borrowed from the enclosing batch's
    /// root so the sequence of roots a catching-up mirror applies never
    /// regresses in time (the strict-monotonicity check admits equal
    /// timestamps).
    fn synthesize_root_at(&self, end: u64) -> SignedRoot {
        let idx = self.batch_roots.partition_point(|(e, _)| *e < end);
        let (ts, anchor) = match self.batch_roots.get(idx) {
            Some((_, sr)) => (sr.timestamp, sr.anchor),
            None => (self.signed_root.timestamp, self.signed_root.anchor),
        };
        let mut tree = MerkleTree::new();
        let mut leaves: Vec<Leaf> = self.log[..end as usize]
            .iter()
            .enumerate()
            .map(|(i, s)| Leaf::new(*s, i as u64 + 1))
            .collect();
        leaves.sort_by_key(|l| l.serial);
        tree.apply_sorted_batch(&leaves);
        SignedRoot::create(&self.key, self.ca, tree.root(), end, anchor, ts)
    }

    /// The latest issuance batch (what a `FetchDelta` pull would return),
    /// or `None` before any revocation.
    pub fn latest_issuance(&self) -> Option<RevocationIssuance> {
        let (&(end, _), prev) = match self.batch_roots.split_last() {
            Some((last, prev)) => (last, prev),
            None => return None,
        };
        let first = prev.last().map(|(e, _)| *e).unwrap_or(0);
        Some(RevocationIssuance {
            first_number: first + 1,
            serials: self.log[first as usize..end as usize].to_vec(),
            // Always the *current* root: a post-crash rotation supersedes
            // the root recorded at the batch boundary.
            signed_root: self.signed_root,
        })
    }

    /// Builds a full revocation status (Eq. 3) directly from the CA's own
    /// tree — used in tests and by the origin server.
    pub fn prove(&self, serial: &SerialNumber, now: u64) -> Option<RevocationStatus> {
        Some(RevocationStatus {
            proof: RevocationProof::generate(&self.tree, serial),
            signed_root: self.signed_root,
            freshness: self.current_freshness(now)?,
        })
    }

    /// Paper §VII-D storage metric: bytes to persist the revocation data.
    pub fn storage_bytes(&self) -> usize {
        self.tree.storage_bytes()
    }

    /// Paper §VII-D memory metric: bytes to hold the built dictionary.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }
}

/// Why an RA rejected an update (Fig. 2 `update`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// Signature on the new root is invalid.
    BadSignature,
    /// The root's timestamp regressed or is too far in the future.
    BadTimestamp,
    /// The issuance numbering does not continue the local copy — the RA is
    /// desynchronized and must request a catch-up (sync protocol, §III).
    Desynchronized {
        /// Consecutive revocations the RA has.
        have: u64,
        /// First number in the received batch.
        got: u64,
    },
    /// Rebuilt root or size does not match the signed root — the message is
    /// corrupt or the CA equivocated.
    RootMismatch,
    /// A serial in the batch is already present — violates append-only
    /// uniqueness.
    DuplicateSerial,
    /// Issuance was for a different CA's dictionary.
    WrongCa,
}

impl core::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UpdateError::BadSignature => f.write_str("issuance signature invalid"),
            UpdateError::BadTimestamp => f.write_str("issuance timestamp not acceptable"),
            UpdateError::Desynchronized { have, got } => write!(
                f,
                "desynchronized: have {have} consecutive revocations, batch starts at {got}"
            ),
            UpdateError::RootMismatch => f.write_str("rebuilt root does not match signed root"),
            UpdateError::DuplicateSerial => f.write_str("duplicate serial in issuance"),
            UpdateError::WrongCa => f.write_str("issuance for a different CA"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Maximum tolerated clock skew (seconds) when judging root timestamps.
pub const MAX_TIMESTAMP_SKEW: u64 = 300;

/// An RA's untrusted mirror of one CA dictionary (Fig. 2 `update` and
/// `prove`).
///
/// The mirror's tree is a structurally-shared [`PersistentTree`]: freezing
/// a [`crate::snapshot::DictionarySnapshot`] for publication clones only
/// the chunk spine (O(chunks) `Arc` bumps), and subsequent batches
/// copy-on-write only the chunks they dirty — publish cost tracks the
/// batch, not the dictionary. (The CA side keeps the dense
/// [`MerkleTree`], which wins when nothing is ever cloned.)
#[derive(Debug, Clone)]
pub struct MirrorDictionary {
    ca: CaId,
    ca_key: VerifyingKey,
    tree: PersistentTree,
    delta: u64,
    signed_root: SignedRoot,
    freshness: FreshnessStatement,
}

impl MirrorDictionary {
    /// Bootstraps a mirror from the CA's genesis signed root (size 0).
    ///
    /// # Errors
    ///
    /// [`UpdateError::BadSignature`] if the root is not validly signed;
    /// [`UpdateError::RootMismatch`] if it does not commit to an empty tree.
    pub fn new(ca: CaId, ca_key: VerifyingKey, genesis: SignedRoot) -> Result<Self, UpdateError> {
        genesis
            .verify(&ca_key)
            .map_err(|_| UpdateError::BadSignature)?;
        if genesis.ca != ca {
            return Err(UpdateError::WrongCa);
        }
        let tree = PersistentTree::new();
        if genesis.size != 0 || genesis.root != tree.root() {
            return Err(UpdateError::RootMismatch);
        }
        Ok(MirrorDictionary {
            ca,
            ca_key,
            tree,
            delta: 0, // set by set_delta or inherited from config
            signed_root: genesis,
            freshness: FreshnessStatement::new(genesis.anchor),
        })
    }

    /// Restores a mirror from persisted parts: the serials in issuance
    /// order plus the last accepted signed root. The tree is rebuilt from
    /// scratch and accepted only if it reproduces the signed root exactly —
    /// a tampered snapshot can never resurrect a mirror that disagrees
    /// with what the CA signed. The freshness statement is re-derived from
    /// the root's anchor (the restored RA refreshes on its next sync).
    ///
    /// `ca_key` comes from the caller's pinned configuration, never from
    /// the snapshot itself.
    ///
    /// # Errors
    ///
    /// See [`UpdateError`]; the same checks an `update` would run.
    pub fn restore(
        ca: CaId,
        ca_key: VerifyingKey,
        delta: u64,
        serials: &[SerialNumber],
        signed_root: SignedRoot,
    ) -> Result<Self, UpdateError> {
        if signed_root.ca != ca {
            return Err(UpdateError::WrongCa);
        }
        signed_root
            .verify(&ca_key)
            .map_err(|_| UpdateError::BadSignature)?;
        let mut in_batch = std::collections::HashSet::new();
        for s in serials {
            if !in_batch.insert(*s) {
                return Err(UpdateError::DuplicateSerial);
            }
        }
        let mut leaves: Vec<Leaf> = serials
            .iter()
            .enumerate()
            .map(|(i, s)| Leaf::new(*s, i as u64 + 1))
            .collect();
        leaves.sort_by_key(|l| l.serial);
        let mut tree = PersistentTree::new();
        tree.apply_sorted_batch(&leaves);
        if tree.root() != signed_root.root || tree.len() as u64 != signed_root.size {
            return Err(UpdateError::RootMismatch);
        }
        let freshness = FreshnessStatement::new(signed_root.anchor);
        Ok(MirrorDictionary {
            ca,
            ca_key,
            tree,
            delta,
            signed_root,
            freshness,
        })
    }

    /// The mirrored serials in issuance order (numbers `1..=len`) — what a
    /// persistence layer saves so [`MirrorDictionary::restore`] can rebuild
    /// and re-verify the tree.
    pub fn serials_in_issuance_order(&self) -> Vec<SerialNumber> {
        let mut pairs: Vec<(u64, SerialNumber)> = self
            .tree
            .iter_leaves()
            .map(|l| (l.number, l.serial))
            .collect();
        pairs.sort_unstable_by_key(|(n, _)| *n);
        pairs.into_iter().map(|(_, s)| s).collect()
    }

    /// Sets the dissemination period Δ (from the CA manifest, §VIII).
    pub fn set_delta(&mut self, delta: u64) {
        self.delta = delta;
    }

    /// The dissemination period Δ the mirror runs with.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The CA this mirror tracks.
    pub fn ca(&self) -> CaId {
        self.ca
    }

    /// Number of revocations mirrored.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when no revocation has been mirrored yet.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Latest accepted signed root.
    pub fn signed_root(&self) -> &SignedRoot {
        &self.signed_root
    }

    /// Monotonic content epoch: advances whenever the mirrored tree is
    /// mutated (every accepted issuance; a rejected one rolls content back
    /// but still advances the epoch, harmlessly refilling caches), so RAs
    /// can key proof caches on it. Freshness-only refreshes do not advance
    /// it — audit paths stay valid across them.
    pub fn epoch(&self) -> u64 {
        self.tree.epoch()
    }

    /// Latest accepted freshness statement.
    pub fn freshness(&self) -> &FreshnessStatement {
        &self.freshness
    }

    /// Fig. 2 `update`: verifies and applies an issuance batch.
    ///
    /// The tree is rebuilt with the new serials and the changes are kept
    /// only if the rebuilt root and size match the signed root exactly.
    ///
    /// # Errors
    ///
    /// See [`UpdateError`]; on any error the mirror is left unchanged.
    pub fn apply_issuance(
        &mut self,
        issuance: &RevocationIssuance,
        now: u64,
    ) -> Result<(), UpdateError> {
        let sr = &issuance.signed_root;
        if sr.ca != self.ca {
            return Err(UpdateError::WrongCa);
        }
        sr.verify(&self.ca_key)
            .map_err(|_| UpdateError::BadSignature)?;
        if sr.timestamp < self.signed_root.timestamp || sr.timestamp > now + MAX_TIMESTAMP_SKEW {
            return Err(UpdateError::BadTimestamp);
        }
        let have = self.tree.len() as u64;
        if issuance.first_number != have + 1 {
            return Err(UpdateError::Desynchronized {
                have,
                got: issuance.first_number,
            });
        }
        let mut in_batch = std::collections::HashSet::new();
        for s in &issuance.serials {
            if self.tree.find(s).is_some() || !in_batch.insert(*s) {
                return Err(UpdateError::DuplicateSerial);
            }
        }
        // Verify-then-commit without an O(n) scratch clone: apply the batch
        // incrementally, and roll it back (removing exactly the inserted
        // leaves) if the resulting root does not match the signed root.
        let mut batch: Vec<Leaf> = issuance
            .serials
            .iter()
            .enumerate()
            .map(|(i, s)| Leaf::new(*s, issuance.first_number + i as u64))
            .collect();
        batch.sort_by_key(|l| l.serial);
        self.tree.apply_sorted_batch(&batch);
        if self.tree.root() != sr.root || self.tree.len() as u64 != sr.size {
            self.tree.remove_sorted_batch(&issuance.serials);
            return Err(UpdateError::RootMismatch);
        }
        self.signed_root = *sr;
        self.freshness = FreshnessStatement::new(sr.anchor);
        Ok(())
    }

    /// Applies a periodic refresh message (freshness statement or root
    /// rotation).
    ///
    /// # Errors
    ///
    /// [`UpdateError::BadSignature`] / [`UpdateError::RootMismatch`] for a
    /// bad rotated root; a stale or off-chain freshness statement is
    /// reported as `RootMismatch` since it does not commit to our anchor.
    pub fn apply_refresh(&mut self, msg: &RefreshMessage, now: u64) -> Result<(), UpdateError> {
        match msg {
            RefreshMessage::Freshness(stmt) => {
                stmt.verify(&self.signed_root, self.delta.max(1), now)
                    .map_err(|_| UpdateError::RootMismatch)?;
                self.freshness = *stmt;
                Ok(())
            }
            RefreshMessage::NewRoot(sr) => {
                if sr.ca != self.ca {
                    return Err(UpdateError::WrongCa);
                }
                sr.verify(&self.ca_key)
                    .map_err(|_| UpdateError::BadSignature)?;
                // A rotation must not change the content.
                if sr.root != self.tree.root() || sr.size != self.tree.len() as u64 {
                    return Err(UpdateError::RootMismatch);
                }
                if sr.timestamp < self.signed_root.timestamp
                    || sr.timestamp > now + MAX_TIMESTAMP_SKEW
                {
                    return Err(UpdateError::BadTimestamp);
                }
                self.signed_root = *sr;
                self.freshness = FreshnessStatement::new(sr.anchor);
                Ok(())
            }
        }
    }

    /// Whether `serial` is currently mirrored as revoked.
    pub fn contains(&self, serial: &SerialNumber) -> bool {
        self.tree.find(serial).is_some()
    }

    /// Generates the bare audit-path proof for `serial` — the cacheable
    /// part of a status; it stays valid while [`MirrorDictionary::epoch`]
    /// is unchanged.
    pub fn proof(&self, serial: &SerialNumber) -> RevocationProof {
        RevocationProof::generate(&self.tree, serial)
    }

    /// Fig. 2 `prove`: builds the revocation status (Eq. 3) for `serial`.
    pub fn prove(&self, serial: &SerialNumber) -> RevocationStatus {
        RevocationStatus {
            proof: self.proof(serial),
            signed_root: self.signed_root,
            freshness: self.freshness,
        }
    }

    /// Builds a compressed status covering all of `serials` with one proof,
    /// one signed root, and one freshness statement (§VIII chains).
    pub fn prove_multi(&self, serials: &[SerialNumber]) -> MultiRevocationStatus {
        MultiRevocationStatus {
            serials: serials.to_vec(),
            proof: crate::proof::MultiProof::generate(&self.tree, serials),
            signed_root: self.signed_root,
            freshness: self.freshness,
        }
    }

    /// Freezes the mirror's current state into an immutable
    /// [`crate::snapshot::DictionarySnapshot`] for lock-free serving. With
    /// the structurally-shared tree this is O(chunks) `Arc` bumps — no
    /// leaf or level data is copied — so writers can republish after every
    /// batch at any issuance frequency (publishers swap it in with
    /// [`crate::snapshot::SnapshotCell::publish`]).
    pub fn snapshot(&self) -> crate::snapshot::DictionarySnapshot {
        crate::snapshot::DictionarySnapshot::new(
            self.ca,
            self.epoch(),
            self.tree.clone(),
            self.signed_root,
            self.freshness,
        )
    }

    /// Count of consecutive revocations held — what the RA reports to an
    /// edge server when requesting catch-up.
    pub fn consecutive_count(&self) -> u64 {
        self.tree.len() as u64
    }

    /// Paper §VII-D storage metric.
    pub fn storage_bytes(&self) -> usize {
        self.tree.storage_bytes()
    }

    /// Paper §VII-D memory metric.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DELTA: u64 = 10;
    const T0: u64 = 1_000_000;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn ca_dict(rng: &mut StdRng) -> CaDictionary {
        CaDictionary::new(
            CaId::from_name("TestCA"),
            SigningKey::from_seed([1u8; 32]),
            DELTA,
            64,
            rng,
            T0,
        )
    }

    fn mirror_of(ca: &CaDictionary) -> MirrorDictionary {
        let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root())
            .expect("genesis bootstrap");
        m.set_delta(DELTA);
        m
    }

    fn serials(range: core::ops::Range<u32>) -> Vec<SerialNumber> {
        range.map(SerialNumber::from_u24).collect()
    }

    #[test]
    fn insert_update_prove_round_trip() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);

        let iss = ca.insert(&serials(1..6), &mut rng, T0 + 1).unwrap();
        ra.apply_issuance(&iss, T0 + 1).unwrap();
        assert_eq!(ra.len(), 5);
        assert_eq!(ra.signed_root(), ca.signed_root());

        // Revoked serial → presence proof validates as revoked.
        let status = ra.prove(&SerialNumber::from_u24(3));
        let res = status
            .validate(
                &SerialNumber::from_u24(3),
                &ca.verifying_key(),
                DELTA,
                T0 + 2,
            )
            .unwrap();
        assert!(res.is_revoked());

        // Unrevoked serial → absence proof validates as not revoked.
        let status = ra.prove(&SerialNumber::from_u24(100));
        let res = status
            .validate(
                &SerialNumber::from_u24(100),
                &ca.verifying_key(),
                DELTA,
                T0 + 2,
            )
            .unwrap();
        assert_eq!(res, ProvenStatus::NotRevoked);
    }

    #[test]
    fn duplicate_insert_skipped() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        ca.insert(&serials(1..4), &mut rng, T0 + 1).unwrap();
        assert!(ca.insert(&serials(1..4), &mut rng, T0 + 2).is_none());
        assert_eq!(ca.len(), 3);
        // Partial overlap only adds the new ones.
        let iss = ca.insert(&serials(3..6), &mut rng, T0 + 3).unwrap();
        assert_eq!(iss.serials.len(), 2);
        assert_eq!(iss.first_number, 4);
    }

    #[test]
    fn refresh_yields_freshness_then_rotates() {
        let mut rng = rng();
        // Chain of length 3 rotates quickly.
        let mut ca = CaDictionary::new(
            CaId::from_name("ShortChain"),
            SigningKey::from_seed([2u8; 32]),
            DELTA,
            3,
            &mut rng,
            T0,
        );
        match ca.refresh(&mut rng, T0 + DELTA) {
            RefreshMessage::Freshness(_) => {}
            other => panic!("expected freshness, got {other:?}"),
        }
        match ca.refresh(&mut rng, T0 + 3 * DELTA) {
            RefreshMessage::NewRoot(sr) => assert_eq!(sr.timestamp, T0 + 3 * DELTA),
            other => panic!("expected rotation, got {other:?}"),
        }
    }

    #[test]
    fn mirror_applies_refresh_messages() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);

        let msg = ca.refresh(&mut rng, T0 + DELTA);
        ra.apply_refresh(&msg, T0 + DELTA).unwrap();

        // After rotation the mirror follows along too.
        let mut ca2 = CaDictionary::new(
            CaId::from_name("R"),
            SigningKey::from_seed([5u8; 32]),
            DELTA,
            2,
            &mut rng,
            T0,
        );
        let mut ra2 = {
            let mut m =
                MirrorDictionary::new(ca2.ca(), ca2.verifying_key(), *ca2.signed_root()).unwrap();
            m.set_delta(DELTA);
            m
        };
        let msg = ca2.refresh(&mut rng, T0 + 5 * DELTA);
        assert!(matches!(msg, RefreshMessage::NewRoot(_)));
        ra2.apply_refresh(&msg, T0 + 5 * DELTA).unwrap();
        assert_eq!(ra2.signed_root(), ca2.signed_root());
    }

    #[test]
    fn desynchronized_mirror_detects_gap_and_catches_up() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);

        let iss1 = ca.insert(&serials(1..4), &mut rng, T0 + 1).unwrap();
        let iss2 = ca.insert(&serials(10..14), &mut rng, T0 + 2).unwrap();

        // RA missed iss1; applying iss2 reports desync with have = 0.
        let err = ra.apply_issuance(&iss2, T0 + 2).unwrap_err();
        assert_eq!(err, UpdateError::Desynchronized { have: 0, got: 4 });

        // Catch-up: CA replays everything after `have`.
        let catchup = ca.issuance_since(ra.consecutive_count());
        ra.apply_issuance(&catchup, T0 + 3).unwrap();
        assert_eq!(ra.len(), 7);
        assert_eq!(ra.signed_root(), ca.signed_root());
        drop(iss1);
    }

    #[test]
    fn tampered_issuance_rejected_and_mirror_unchanged() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);

        let mut iss = ca.insert(&serials(1..5), &mut rng, T0 + 1).unwrap();
        // Attacker swaps a serial: rebuilt root will differ.
        iss.serials[0] = SerialNumber::from_u24(999);
        let err = ra.apply_issuance(&iss, T0 + 1).unwrap_err();
        assert_eq!(err, UpdateError::RootMismatch);
        assert_eq!(ra.len(), 0, "failed update must not change the mirror");
    }

    #[test]
    fn reordered_issuance_rejected() {
        // Revocation reordering attack (§V "Misbehaving CA"): same serials,
        // different order → different numbering → different leaf hashes.
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let mut iss = ca.insert(&serials(1..5), &mut rng, T0 + 1).unwrap();
        iss.serials.swap(0, 3);
        assert_eq!(
            ra.apply_issuance(&iss, T0 + 1),
            Err(UpdateError::RootMismatch)
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let mut iss = ca.insert(&serials(1..3), &mut rng, T0 + 1).unwrap();
        // Attacker signs with their own key.
        let evil = SigningKey::from_seed([9u8; 32]);
        iss.signed_root = SignedRoot::create(
            &evil,
            ca.ca(),
            iss.signed_root.root,
            iss.signed_root.size,
            iss.signed_root.anchor,
            iss.signed_root.timestamp,
        );
        assert_eq!(
            ra.apply_issuance(&iss, T0 + 1),
            Err(UpdateError::BadSignature)
        );
    }

    #[test]
    fn timestamp_regression_rejected() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let iss = ca.insert(&serials(1..3), &mut rng, T0 - 10);
        // Genesis was at T0; an older root must not be accepted.
        assert_eq!(
            ra.apply_issuance(&iss.unwrap(), T0),
            Err(UpdateError::BadTimestamp)
        );
    }

    #[test]
    fn future_timestamp_rejected() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let iss = ca
            .insert(&serials(1..3), &mut rng, T0 + MAX_TIMESTAMP_SKEW + 100)
            .unwrap();
        assert_eq!(ra.apply_issuance(&iss, T0), Err(UpdateError::BadTimestamp));
    }

    #[test]
    fn status_encoding_round_trips_and_size_matches_paper() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        // Dictionary comparable to the paper's largest CRL (339,557 entries
        // would be slow here; use 4096 and check the log-scaling claim).
        let batch: Vec<SerialNumber> = (0..4096u32).map(SerialNumber::from_u24).collect();
        let iss = ca.insert(&batch, &mut rng, T0 + 1).unwrap();
        ra.apply_issuance(&iss, T0 + 1).unwrap();

        let status = ra.prove(&SerialNumber::from_u24(5000));
        let bytes = status.to_bytes();
        assert_eq!(bytes.len(), status.encoded_len());
        let back = RevocationStatus::from_bytes(&bytes).unwrap();
        assert_eq!(back, status);
        // Paper §VII-D: status for the largest CRL is 500–900 bytes; a
        // 4096-entry dictionary (12 path levels) must come in below that.
        assert!(bytes.len() < 900, "status was {} bytes", bytes.len());
    }

    #[test]
    fn issuance_encoding_round_trips() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let iss = ca.insert(&serials(1..10), &mut rng, T0 + 1).unwrap();
        let back = RevocationIssuance::from_bytes(&iss.to_bytes()).unwrap();
        assert_eq!(back, iss);
    }

    #[test]
    fn forged_issuance_count_rejected_before_allocation() {
        // 8-byte first_number + a count claiming u32::MAX serials with no
        // bytes behind it: must fail the count check, not loop or allocate.
        let mut w = ritm_crypto::wire::Writer::new();
        w.u64(1).u32(u32::MAX);
        let err = RevocationIssuance::from_bytes(w.as_bytes()).unwrap_err();
        assert!(err.context.contains("count"), "{err}");

        // A count still exceeding the (tiny) remaining buffer is also caught.
        let mut w = ritm_crypto::wire::Writer::new();
        w.u64(1).u32(50).vec8(&[7]);
        assert!(RevocationIssuance::from_bytes(w.as_bytes()).is_err());
    }

    #[test]
    fn stale_freshness_fails_validation() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let iss = ca.insert(&serials(1..4), &mut rng, T0 + 1).unwrap();
        ra.apply_issuance(&iss, T0 + 1).unwrap();

        // RA never refreshes; 3Δ later its stored statement is too old.
        let status = ra.prove(&SerialNumber::from_u24(1));
        let res = status.validate(
            &SerialNumber::from_u24(1),
            &ca.verifying_key(),
            DELTA,
            T0 + 1 + 3 * DELTA,
        );
        assert!(matches!(res, Err(StatusError::NotFresh(_))));

        // After applying the current refresh, validation succeeds again.
        let msg = ca.refresh(&mut rng, T0 + 1 + 3 * DELTA);
        ra.apply_refresh(&msg, T0 + 1 + 3 * DELTA).unwrap();
        let status = ra.prove(&SerialNumber::from_u24(1));
        assert!(status
            .validate(
                &SerialNumber::from_u24(1),
                &ca.verifying_key(),
                DELTA,
                T0 + 1 + 3 * DELTA
            )
            .is_ok());
    }

    #[test]
    fn issuance_pages_converge_at_batch_boundaries() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        // Three batches of 4, 6, 5 serials.
        ca.insert(&serials(1..5), &mut rng, T0 + 1).unwrap();
        ca.insert(&serials(10..16), &mut rng, T0 + 2).unwrap();
        ca.insert(&serials(20..25), &mut rng, T0 + 3).unwrap();

        // Page with limit 7: boundaries at 4, 10, 15 → pages end at 4
        // (boundary ≤ 0+7), 10 (≤ 4+7), 15 (≤ 10+7).
        let mut pages = 0;
        loop {
            let have = ra.consecutive_count();
            let (page, remaining) = ca.issuance_page(have, 7);
            assert!(page.serials.len() <= 7);
            ra.apply_issuance(&page, T0 + 4).unwrap();
            pages += 1;
            if remaining == 0 {
                break;
            }
        }
        assert_eq!(pages, 3);
        assert_eq!(ra.consecutive_count(), 15);
        assert_eq!(ra.signed_root(), ca.signed_root());
    }

    #[test]
    fn mid_batch_page_synthesizes_applicable_root() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        // One giant batch forces mid-batch cuts at limit 16.
        ca.insert(&serials(0..50), &mut rng, T0 + 1).unwrap();

        let mut pages = 0;
        loop {
            let have = ra.consecutive_count();
            let (page, remaining) = ca.issuance_page(have, 16);
            assert!(page.serials.len() <= 16 && !page.serials.is_empty());
            ra.apply_issuance(&page, T0 + 2).unwrap();
            pages += 1;
            if remaining == 0 {
                break;
            }
        }
        assert_eq!(pages, 4); // ceil(50 / 16)
        assert_eq!(ra.consecutive_count(), 50);
        assert_eq!(ra.signed_root(), ca.signed_root());
    }

    #[test]
    fn page_after_rotation_carries_current_root() {
        let mut rng = rng();
        // Chain of length 2 rotates quickly.
        let mut ca = CaDictionary::new(
            CaId::from_name("RotCA"),
            SigningKey::from_seed([3u8; 32]),
            DELTA,
            2,
            &mut rng,
            T0,
        );
        let mut ra = {
            let mut m =
                MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
            m.set_delta(DELTA);
            m
        };
        ca.insert(&serials(1..6), &mut rng, T0 + 1).unwrap();
        let msg = ca.refresh(&mut rng, T0 + 1 + 5 * DELTA);
        assert!(matches!(msg, RefreshMessage::NewRoot(_)));

        // The final page must anchor to the rotated root, not the root
        // recorded at the batch boundary.
        let (page, remaining) = ca.issuance_page(0, 100);
        assert_eq!(remaining, 0);
        assert_eq!(page.signed_root, *ca.signed_root());
        ra.apply_issuance(&page, T0 + 1 + 5 * DELTA).unwrap();
        assert_eq!(ra.signed_root(), ca.signed_root());
    }

    #[test]
    fn replay_reconstructs_dictionary_and_pages() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let iss1 = ca.insert(&serials(1..8), &mut rng, T0 + 1).unwrap();
        let iss2 = ca.insert(&serials(20..30), &mut rng, T0 + 2).unwrap();
        let records = vec![iss1, iss2];

        let ca2 = CaDictionary::replay(
            ca.ca(),
            SigningKey::from_seed([1u8; 32]),
            DELTA,
            64,
            &records,
            &mut rng,
            T0 + 50,
        )
        .expect("clean replay");
        // Same content, rotated root (fresh chain, new timestamp).
        assert_eq!(ca2.len(), ca.len());
        assert_eq!(ca2.signed_root().root, ca.signed_root().root);
        assert_eq!(ca2.signed_root().timestamp, T0 + 50);
        assert_ne!(ca2.signed_root().anchor, ca.signed_root().anchor);

        // A mirror can still page-sync from the recovered dictionary.
        let genesis = SignedRoot::create(
            &SigningKey::from_seed([1u8; 32]),
            ca2.ca(),
            crate::tree::empty_root(),
            0,
            ca2.signed_root().anchor,
            T0,
        );
        let mut ra = MirrorDictionary::new(ca2.ca(), ca2.verifying_key(), genesis).unwrap();
        ra.set_delta(DELTA);
        loop {
            let (page, remaining) = ca2.issuance_page(ra.consecutive_count(), 6);
            ra.apply_issuance(&page, T0 + 51).unwrap();
            if remaining == 0 {
                break;
            }
        }
        assert_eq!(ra.signed_root(), ca2.signed_root());
    }

    #[test]
    fn replay_rejects_tampered_record() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let iss1 = ca.insert(&serials(1..5), &mut rng, T0 + 1).unwrap();
        let mut iss2 = ca.insert(&serials(10..15), &mut rng, T0 + 2).unwrap();
        iss2.serials[0] = SerialNumber::from_u24(999);
        let err = CaDictionary::replay(
            ca.ca(),
            SigningKey::from_seed([1u8; 32]),
            DELTA,
            64,
            &[iss1, iss2],
            &mut rng,
            T0 + 3,
        )
        .unwrap_err();
        assert_eq!(err, 1, "second record is the corrupt one");
    }

    #[test]
    fn mirror_restore_round_trips_and_rejects_tampering() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let iss = ca.insert(&serials(1..30), &mut rng, T0 + 1).unwrap();
        ra.apply_issuance(&iss, T0 + 1).unwrap();

        let saved = ra.serials_in_issuance_order();
        assert_eq!(saved, iss.serials, "issuance order must be preserved");

        let back = MirrorDictionary::restore(
            ra.ca(),
            ca.verifying_key(),
            DELTA,
            &saved,
            *ra.signed_root(),
        )
        .expect("clean restore");
        assert_eq!(back.signed_root(), ra.signed_root());
        assert_eq!(back.consecutive_count(), ra.consecutive_count());

        // A snapshot with a swapped serial must not restore.
        let mut evil = saved.clone();
        evil[0] = SerialNumber::from_u24(999);
        assert_eq!(
            MirrorDictionary::restore(ra.ca(), ca.verifying_key(), DELTA, &evil, *ra.signed_root())
                .unwrap_err(),
            UpdateError::RootMismatch
        );
    }

    #[test]
    fn ca_prove_matches_mirror_prove() {
        let mut rng = rng();
        let mut ca = ca_dict(&mut rng);
        let mut ra = mirror_of(&ca);
        let iss = ca.insert(&serials(1..20), &mut rng, T0 + 1).unwrap();
        ra.apply_issuance(&iss, T0 + 1).unwrap();
        let s = SerialNumber::from_u24(7);
        let from_ca = ca.prove(&s, T0 + 2).unwrap();
        let from_ra = ra.prove(&s);
        assert_eq!(from_ca.proof, from_ra.proof);
        assert_eq!(from_ca.signed_root, from_ra.signed_root);
    }
}
