//! The sorted-leaf hash tree underlying RITM's authenticated dictionary.
//!
//! Every leaf is a revoked serial number concatenated with its revocation
//! number (paper §III). Leaves are kept sorted lexicographically by serial so
//! that both presence and absence can be proven with logarithmic-size audit
//! paths. Interior nodes hash their children; an odd node at the end of a
//! level is promoted unchanged (RFC 6962 style), so the tree handles any leaf
//! count.

use crate::serial::SerialNumber;
use ritm_crypto::digest::Digest20;

/// Domain-separation prefix for leaf hashes.
const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior-node hashes.
const NODE_PREFIX: u8 = 0x01;

/// A dictionary leaf: a revoked serial plus its consecutive revocation
/// number (1-based insertion order, paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Leaf {
    /// Serial number of the revoked certificate.
    pub serial: SerialNumber,
    /// Position of this revocation in the CA's issuance order, starting at 1.
    pub number: u64,
}

impl Leaf {
    /// Creates a leaf.
    pub fn new(serial: SerialNumber, number: u64) -> Self {
        Leaf { serial, number }
    }

    /// The domain-separated leaf hash
    /// `H(0x00 ‖ len(serial) ‖ serial ‖ number)`.
    pub fn hash(&self) -> Digest20 {
        let mut buf = Vec::with_capacity(2 + self.serial.len() + 8);
        buf.push(LEAF_PREFIX);
        buf.push(self.serial.len() as u8);
        buf.extend_from_slice(self.serial.as_bytes());
        buf.extend_from_slice(&self.number.to_be_bytes());
        Digest20::hash(buf)
    }
}

/// Hashes an interior node from its two children.
pub fn node_hash(left: &Digest20, right: &Digest20) -> Digest20 {
    let mut buf = [0u8; 41];
    buf[0] = NODE_PREFIX;
    buf[1..21].copy_from_slice(left.as_bytes());
    buf[21..41].copy_from_slice(right.as_bytes());
    Digest20::hash(buf)
}

/// The root reported for an empty dictionary (no revocations yet).
pub fn empty_root() -> Digest20 {
    Digest20::hash([LEAF_PREFIX, 0xff])
}

/// A Merkle tree over sorted dictionary leaves.
///
/// The tree owns its leaves and caches every interior level so audit paths
/// are O(log n) lookups. Rebuilds after a batch insert are O(n) hashing.
///
/// # Examples
///
/// ```
/// use ritm_dictionary::{tree::{Leaf, MerkleTree}, SerialNumber};
/// let mut t = MerkleTree::new();
/// t.insert_sorted(Leaf::new(SerialNumber::from_u24(5), 1));
/// t.insert_sorted(Leaf::new(SerialNumber::from_u24(2), 2));
/// t.rebuild();
/// assert_eq!(t.len(), 2);
/// assert!(t.find(&SerialNumber::from_u24(5)).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MerkleTree {
    /// Leaves sorted lexicographically by serial.
    leaves: Vec<Leaf>,
    /// `levels[0]` = leaf hashes, `levels.last()` = `[root]`. Empty for an
    /// empty tree. Invalidated (empty) between `insert_sorted` and `rebuild`.
    levels: Vec<Vec<Digest20>>,
}

impl MerkleTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        MerkleTree::default()
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` if the tree holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The sorted leaves.
    pub fn leaves(&self) -> &[Leaf] {
        &self.leaves
    }

    /// Inserts a leaf preserving the sort order; the interior levels are
    /// invalidated until [`MerkleTree::rebuild`] runs. Duplicate serials are
    /// allowed by the structure (callers reject them at the dictionary
    /// layer).
    pub fn insert_sorted(&mut self, leaf: Leaf) {
        let pos = self
            .leaves
            .partition_point(|l| l.serial < leaf.serial);
        self.leaves.insert(pos, leaf);
        self.levels.clear();
    }

    /// Bulk-inserts a batch of leaves with one re-sort — O((n+k)·log(n+k))
    /// instead of the O(n·k) of repeated [`MerkleTree::insert_sorted`];
    /// essential for Heartbleed-scale issuance batches. Levels are
    /// invalidated until [`MerkleTree::rebuild`] runs.
    pub fn extend_leaves(&mut self, leaves: impl IntoIterator<Item = Leaf>) {
        self.leaves.extend(leaves);
        self.leaves.sort_by_key(|a| a.serial);
        self.levels.clear();
    }

    /// Recomputes all interior levels. Idempotent.
    pub fn rebuild(&mut self) {
        self.levels.clear();
        if self.leaves.is_empty() {
            return;
        }
        let mut level: Vec<Digest20> = self.leaves.iter().map(Leaf::hash).collect();
        self.levels.push(level.clone());
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                match pair {
                    [l, r] => next.push(node_hash(l, r)),
                    [l] => next.push(*l), // odd node promoted
                    _ => unreachable!("chunks(2) yields 1 or 2 items"),
                }
            }
            self.levels.push(next.clone());
            level = next;
        }
    }

    /// The current root. For an empty tree this is [`empty_root`].
    ///
    /// # Panics
    ///
    /// Panics if leaves were inserted without a subsequent
    /// [`MerkleTree::rebuild`].
    pub fn root(&self) -> Digest20 {
        if self.leaves.is_empty() {
            return empty_root();
        }
        assert!(
            !self.levels.is_empty(),
            "tree was modified; call rebuild() before root()"
        );
        self.levels.last().expect("non-empty levels")[0]
    }

    /// Binary-searches for `serial`, returning the leaf index if revoked.
    pub fn find(&self, serial: &SerialNumber) -> Option<usize> {
        self.leaves
            .binary_search_by(|l| l.serial.cmp(serial))
            .ok()
    }

    /// Index of the first leaf with serial `>= serial` (== `len()` when all
    /// are smaller). Used for absence proofs.
    pub fn lower_bound(&self, serial: &SerialNumber) -> usize {
        self.leaves.partition_point(|l| l.serial < *serial)
    }

    /// The audit path (bottom-up sibling hashes) for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the tree needs a rebuild.
    pub fn audit_path(&self, index: usize) -> Vec<Digest20> {
        assert!(index < self.leaves.len(), "leaf index out of bounds");
        assert!(!self.levels.is_empty(), "call rebuild() before audit_path()");
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(level[sibling]);
            }
            idx /= 2;
        }
        path
    }

    /// Approximate heap usage of the interior levels plus leaf storage, for
    /// the §VII-D storage/memory experiment.
    pub fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .levels
            .iter()
            .map(|l| l.len() * core::mem::size_of::<Digest20>())
            .sum();
        node_bytes + self.leaves.len() * core::mem::size_of::<Leaf>()
    }

    /// Bytes needed to persist just the revocation data (serial bytes plus
    /// an 8-byte revocation number per entry) — the paper's "storage"
    /// metric.
    pub fn storage_bytes(&self) -> usize {
        self.leaves.iter().map(|l| l.serial.len() + 8).sum()
    }
}

/// Recomputes a root from a leaf hash and its audit path.
///
/// Returns `None` when the path length is inconsistent with `(index, size)`.
pub fn root_from_path(
    index: usize,
    size: usize,
    leaf_hash: Digest20,
    path: &[Digest20],
) -> Option<Digest20> {
    if index >= size || size == 0 {
        return None;
    }
    let mut idx = index;
    let mut level_len = size;
    let mut hash = leaf_hash;
    let mut elems = path.iter();
    while level_len > 1 {
        let sibling = idx ^ 1;
        if sibling < level_len {
            let sib = elems.next()?;
            hash = if idx.is_multiple_of(2) {
                node_hash(&hash, sib)
            } else {
                node_hash(sib, &hash)
            };
        }
        idx /= 2;
        level_len = level_len.div_ceil(2);
    }
    if elems.next().is_some() {
        return None;
    }
    Some(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(serials: &[u32]) -> MerkleTree {
        let mut t = MerkleTree::new();
        for (i, s) in serials.iter().enumerate() {
            t.insert_sorted(Leaf::new(SerialNumber::from_u24(*s), i as u64 + 1));
        }
        t.rebuild();
        t
    }

    #[test]
    fn empty_tree_has_defined_root() {
        let t = MerkleTree::new();
        assert_eq!(t.root(), empty_root());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = tree_with(&[42]);
        assert_eq!(t.root(), t.leaves()[0].hash());
    }

    #[test]
    fn leaves_stay_sorted() {
        let t = tree_with(&[9, 1, 5, 3, 7]);
        let serials: Vec<_> = t.leaves().iter().map(|l| l.serial).collect();
        let mut sorted = serials.clone();
        sorted.sort();
        assert_eq!(serials, sorted);
    }

    #[test]
    fn insertion_order_preserved_in_numbers() {
        let t = tree_with(&[9, 1, 5]);
        // serial 1 was inserted second -> number 2.
        let idx = t.find(&SerialNumber::from_u24(1)).unwrap();
        assert_eq!(t.leaves()[idx].number, 2);
    }

    #[test]
    fn root_changes_on_insert() {
        let a = tree_with(&[1, 2, 3]);
        let b = tree_with(&[1, 2, 3, 4]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn audit_paths_verify_for_all_sizes() {
        for n in 1..=33u32 {
            let serials: Vec<u32> = (0..n).map(|i| i * 3 + 1).collect();
            let t = tree_with(&serials);
            for i in 0..t.len() {
                let path = t.audit_path(i);
                let got = root_from_path(i, t.len(), t.leaves()[i].hash(), &path);
                assert_eq!(got, Some(t.root()), "n = {n}, i = {i}");
            }
        }
    }

    #[test]
    fn audit_path_rejects_wrong_index() {
        let t = tree_with(&[1, 2, 3, 4, 5]);
        let path = t.audit_path(2);
        let h = t.leaves()[2].hash();
        // Right leaf hash, wrong claimed index.
        let got = root_from_path(3, t.len(), h, &path);
        assert_ne!(got, Some(t.root()));
    }

    #[test]
    fn audit_path_rejects_truncated_path() {
        let t = tree_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut path = t.audit_path(0);
        path.pop();
        assert_eq!(root_from_path(0, t.len(), t.leaves()[0].hash(), &path), None);
    }

    #[test]
    fn audit_path_rejects_extended_path() {
        let t = tree_with(&[1, 2, 3, 4]);
        let mut path = t.audit_path(0);
        path.push(Digest20::hash(b"extra"));
        assert_eq!(root_from_path(0, t.len(), t.leaves()[0].hash(), &path), None);
    }

    #[test]
    fn root_from_path_bounds() {
        assert_eq!(root_from_path(0, 0, Digest20::ZERO, &[]), None);
        assert_eq!(root_from_path(5, 5, Digest20::ZERO, &[]), None);
    }

    #[test]
    fn leaf_hash_depends_on_number() {
        let s = SerialNumber::from_u24(7);
        assert_ne!(Leaf::new(s, 1).hash(), Leaf::new(s, 2).hash());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf hash must never equal an interior hash of the same bytes.
        let a = Digest20::hash(b"a");
        let b = Digest20::hash(b"b");
        let node = node_hash(&a, &b);
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(node, Digest20::hash(&concat));
    }

    #[test]
    fn storage_accounting() {
        let t = tree_with(&[1, 2, 3, 4]);
        // 4 leaves × (3-byte serial + 8-byte number)
        assert_eq!(t.storage_bytes(), 4 * 11);
        assert!(t.memory_bytes() > t.storage_bytes());
    }

    #[test]
    #[should_panic(expected = "rebuild")]
    fn stale_root_panics() {
        let mut t = tree_with(&[1]);
        t.insert_sorted(Leaf::new(SerialNumber::from_u24(2), 2));
        let _ = t.root();
    }

    #[test]
    fn rebuild_is_idempotent() {
        let mut t = tree_with(&[5, 6, 7]);
        let r = t.root();
        t.rebuild();
        assert_eq!(t.root(), r);
    }
}
