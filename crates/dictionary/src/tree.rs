//! The sorted-leaf hash tree underlying RITM's authenticated dictionary.
//!
//! Every leaf is a revoked serial number concatenated with its revocation
//! number (paper §III). Leaves are kept sorted lexicographically by serial so
//! that both presence and absence can be proven with logarithmic-size audit
//! paths. Interior nodes hash their children; an odd node at the end of a
//! level is promoted unchanged (RFC 6962 style), so the tree handles any leaf
//! count.

use crate::parallel::HashPool;
use crate::serial::SerialNumber;
use ritm_crypto::digest::Digest20;

/// Domain-separation prefix for leaf hashes.
const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior-node hashes.
const NODE_PREFIX: u8 = 0x01;

thread_local! {
    static LEAF_HASHES: core::cell::Cell<u64> = const { core::cell::Cell::new(0) };
}

/// Leaf hashes computed by this thread so far (monotonic; measure work as a
/// delta). Instrumentation for the O(b·log n) complexity regression tests:
/// rollback and incremental batches must never rehash retained leaves.
pub fn leaf_hash_calls() -> u64 {
    LEAF_HASHES.with(core::cell::Cell::get)
}

/// A dictionary leaf: a revoked serial plus its consecutive revocation
/// number (1-based insertion order, paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Leaf {
    /// Serial number of the revoked certificate.
    pub serial: SerialNumber,
    /// Position of this revocation in the CA's issuance order, starting at 1.
    pub number: u64,
}

impl Leaf {
    /// Creates a leaf.
    pub fn new(serial: SerialNumber, number: u64) -> Self {
        Leaf { serial, number }
    }

    /// The domain-separated leaf hash
    /// `H(0x00 ‖ len(serial) ‖ serial ‖ number)`.
    pub fn hash(&self) -> Digest20 {
        LEAF_HASHES.with(|c| c.set(c.get() + 1));
        let mut buf = Vec::with_capacity(2 + self.serial.len() + 8);
        buf.push(LEAF_PREFIX);
        buf.push(self.serial.len() as u8);
        buf.extend_from_slice(self.serial.as_bytes());
        buf.extend_from_slice(&self.number.to_be_bytes());
        Digest20::hash(buf)
    }
}

/// Hashes an interior node from its two children.
pub fn node_hash(left: &Digest20, right: &Digest20) -> Digest20 {
    let mut buf = [0u8; 41];
    buf[0] = NODE_PREFIX;
    buf[1..21].copy_from_slice(left.as_bytes());
    buf[21..41].copy_from_slice(right.as_bytes());
    Digest20::hash(buf)
}

/// The root reported for an empty dictionary (no revocations yet).
pub fn empty_root() -> Digest20 {
    Digest20::hash([LEAF_PREFIX, 0xff])
}

/// A Merkle tree over sorted dictionary leaves.
///
/// The tree owns its leaves and caches every interior level so audit paths
/// are O(log n) lookups. Batches can be applied incrementally with
/// [`MerkleTree::apply_sorted_batch`], which only rehashes the node paths at
/// or after the first changed leaf position — for the common append-heavy
/// revocation pattern (fresh serials sort after old ones) that is
/// O(b·log n) per batch of b instead of the O(n) of a full
/// [`MerkleTree::rebuild`].
///
/// Every content change bumps a monotonic [`MerkleTree::epoch`], which
/// higher layers use to key proof caches.
///
/// # Examples
///
/// ```
/// use ritm_dictionary::{tree::{Leaf, MerkleTree}, SerialNumber};
/// let mut t = MerkleTree::new();
/// t.insert_sorted(Leaf::new(SerialNumber::from_u24(5), 1));
/// t.insert_sorted(Leaf::new(SerialNumber::from_u24(2), 2));
/// t.rebuild();
/// assert_eq!(t.len(), 2);
/// assert!(t.find(&SerialNumber::from_u24(5)).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MerkleTree {
    /// Leaves sorted lexicographically by serial.
    leaves: Vec<Leaf>,
    /// `levels[0]` = leaf hashes, `levels.last()` = `[root]`. Empty for an
    /// empty tree. Invalidated (empty) between `insert_sorted` and `rebuild`.
    levels: Vec<Vec<Digest20>>,
    /// Monotonic content version, bumped by every mutating call.
    epoch: u64,
}

impl MerkleTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        MerkleTree::default()
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` if the tree holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The sorted leaves.
    pub fn leaves(&self) -> &[Leaf] {
        &self.leaves
    }

    /// Monotonic content version: bumped by every mutating call, so audit
    /// paths and proofs generated at one epoch remain valid exactly while
    /// `epoch()` is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Inserts a leaf preserving the sort order; the interior levels are
    /// invalidated until [`MerkleTree::rebuild`] runs. Duplicate serials are
    /// allowed by the structure (callers reject them at the dictionary
    /// layer).
    pub fn insert_sorted(&mut self, leaf: Leaf) {
        let pos = self.leaves.partition_point(|l| l.serial < leaf.serial);
        self.leaves.insert(pos, leaf);
        self.levels.clear();
        self.epoch += 1;
    }

    /// Bulk-inserts a batch of leaves with one re-sort — O((n+k)·log(n+k))
    /// instead of the O(n·k) of repeated [`MerkleTree::insert_sorted`];
    /// essential for Heartbleed-scale issuance batches. Levels are
    /// invalidated until [`MerkleTree::rebuild`] runs.
    pub fn extend_leaves(&mut self, leaves: impl IntoIterator<Item = Leaf>) {
        self.leaves.extend(leaves);
        self.leaves.sort_by_key(|a| a.serial);
        self.levels.clear();
        self.epoch += 1;
    }

    /// Recomputes all interior levels. Idempotent (does not bump the epoch
    /// unless leaves were invalidated since the last build). Large trees are
    /// hashed on the global [`HashPool`]; use [`MerkleTree::rebuild_with`]
    /// to control the worker count explicitly.
    pub fn rebuild(&mut self) {
        self.rebuild_with(HashPool::global());
    }

    /// [`MerkleTree::rebuild`] on an explicit pool: leaf hashing and each
    /// interior level fan out across the pool's workers (contiguous chunks,
    /// joined in order, so the result is bit-identical to sequential).
    pub fn rebuild_with(&mut self, pool: &HashPool) {
        self.levels.clear();
        if self.leaves.is_empty() {
            return;
        }
        let leaves = &self.leaves;
        self.levels
            .push(pool.map_range(0, leaves.len(), |i| leaves[i].hash()));
        self.rehash_levels_from(0, pool);
    }

    /// Applies a batch of new leaves, rehashing only the node paths at or
    /// after the first changed leaf position. Interior nodes strictly left
    /// of the insertion front are reused, so appending b fresh (largest-yet)
    /// serials into an n-leaf tree costs O(b·log n) hashes instead of the
    /// O(n) of [`MerkleTree::rebuild`].
    ///
    /// The fast path requires the incremental invariants: the tree's levels
    /// are valid, and `batch` is strictly sorted by serial with no serial
    /// already present. When any invariant fails the call falls back to
    /// [`MerkleTree::extend_leaves`] + [`MerkleTree::rebuild`], which is
    /// always correct; the return value reports which path ran (`true` =
    /// incremental).
    pub fn apply_sorted_batch(&mut self, batch: &[Leaf]) -> bool {
        self.apply_sorted_batch_with(batch, HashPool::global())
    }

    /// [`MerkleTree::apply_sorted_batch`] on an explicit pool: the batch's
    /// leaf hashes (and the rehashed interior suffix) fan out across the
    /// pool's workers when the batch is large.
    pub fn apply_sorted_batch_with(&mut self, batch: &[Leaf], pool: &HashPool) -> bool {
        if batch.is_empty() {
            return true;
        }
        let invariants_hold = (self.leaves.is_empty() || !self.levels.is_empty())
            && batch.windows(2).all(|w| w[0].serial < w[1].serial)
            && batch.iter().all(|l| self.find(&l.serial).is_none());
        if !invariants_hold {
            self.extend_leaves(batch.iter().copied());
            self.rebuild_with(pool);
            return false;
        }

        let batch_hashes = pool.map_range(0, batch.len(), |i| batch[i].hash());
        let dirty_from = self.leaves.partition_point(|l| l.serial < batch[0].serial);
        let old_len = self.leaves.len();
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        if dirty_from == old_len {
            // Pure append (fresh serials sort after every existing leaf —
            // the common issuance pattern): extend in place, no merge.
            self.leaves.extend_from_slice(batch);
            self.levels[0].extend(batch_hashes);
        } else {
            // Merge the sorted batch into the sorted leaves (and their
            // hashes into level 0) in one pass; no hashing of old leaves.
            let new_len = old_len + batch.len();
            let mut merged = Vec::with_capacity(new_len);
            let mut merged_hashes = Vec::with_capacity(new_len);
            let mut old = self.leaves[dirty_from..].iter().peekable();
            let mut new = batch.iter().peekable();
            merged.extend_from_slice(&self.leaves[..dirty_from]);
            merged_hashes.extend_from_slice(&self.levels[0][..dirty_from]);
            let mut old_idx = dirty_from;
            let mut new_idx = 0;
            loop {
                let take_old = match (old.peek(), new.peek()) {
                    (Some(o), Some(n)) => o.serial < n.serial,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_old {
                    merged.push(*old.next().expect("peeked"));
                    merged_hashes.push(self.levels[0][old_idx]);
                    old_idx += 1;
                } else {
                    merged.push(*new.next().expect("peeked"));
                    merged_hashes.push(batch_hashes[new_idx]);
                    new_idx += 1;
                }
            }
            self.leaves = merged;
            self.levels[0] = merged_hashes;
        }
        self.rehash_levels_from(dirty_from, pool);
        self.epoch += 1;
        true
    }

    /// Removes the leaves carrying `serials` (those present), splicing the
    /// retained leaves' still-valid hashes out of level 0 and rehashing only
    /// the interior nodes at or after the first *removed* position — the
    /// rollback companion to [`MerkleTree::apply_sorted_batch`] used by
    /// verify-then-commit mirrors. No retained leaf is ever rehashed, so
    /// rolling back a batch costs O(moves + interior rehash), never O(n)
    /// leaf hashes. Returns how many leaves were removed.
    pub fn remove_sorted_batch(&mut self, serials: &[SerialNumber]) -> usize {
        // The rehash front is the first removed *position*, not `find(s)`:
        // with duplicate-serial leaves a later duplicate may be hit first,
        // which would leave a stale hash to its left (see rollback_front).
        let Some(first) = rollback_front(
            serials,
            |s| self.leaves.binary_search_by(|l| l.serial.cmp(s)).ok(),
            |i| self.leaves[i].serial,
        ) else {
            return 0;
        };
        let before = self.leaves.len();
        let doomed: std::collections::HashSet<&SerialNumber> = serials.iter().collect();
        if self.levels.is_empty() {
            // Levels were already invalid; leave the rebuild to the caller.
            self.leaves.retain(|l| !doomed.contains(&l.serial));
            self.epoch += 1;
            return before - self.leaves.len();
        }
        // Compact leaves and their level-0 hashes together in one pass from
        // the first removed position.
        let mut write = first;
        for read in first..before {
            let leaf = self.leaves[read];
            if doomed.contains(&leaf.serial) {
                continue;
            }
            self.leaves[write] = leaf;
            self.levels[0][write] = self.levels[0][read];
            write += 1;
        }
        self.leaves.truncate(write);
        self.levels[0].truncate(write);
        let removed = before - write;
        if self.leaves.is_empty() {
            self.levels.clear();
        } else {
            self.rehash_levels_from(first, HashPool::global());
        }
        self.epoch += 1;
        removed
    }

    /// Rebuilds the interior levels above valid level-0 hashes, recomputing
    /// only nodes whose subtree includes a position `>= dirty_from` and
    /// reusing everything to the left. Wide dirty spans within a level are
    /// hashed in parallel on `pool` (each parent node depends only on its
    /// two children, so a level is embarrassingly parallel).
    fn rehash_levels_from(&mut self, mut dirty_from: usize, pool: &HashPool) {
        let mut k = 0;
        while self.levels[k].len() > 1 {
            let child_len = self.levels[k].len();
            let parent_len = child_len.div_ceil(2);
            dirty_from /= 2;
            if self.levels.len() == k + 1 {
                self.levels.push(Vec::with_capacity(parent_len));
            }
            let (children, parents) = self.levels.split_at_mut(k + 1);
            let child = &children[k];
            let parent = &mut parents[0];
            parent.truncate(dirty_from.min(parent_len));
            let fresh = pool.map_range(parent.len(), parent_len, |j| {
                if 2 * j + 1 < child_len {
                    node_hash(&child[2 * j], &child[2 * j + 1])
                } else {
                    child[2 * j] // odd node promoted
                }
            });
            parent.extend(fresh);
            k += 1;
        }
        self.levels.truncate(k + 1);
        debug_assert_eq!(self.levels[0].len(), self.leaves.len());
        debug_assert_eq!(self.levels.last().expect("non-empty").len(), 1);
    }

    /// The current root. For an empty tree this is [`empty_root`].
    ///
    /// # Panics
    ///
    /// Panics if leaves were inserted without a subsequent
    /// [`MerkleTree::rebuild`].
    pub fn root(&self) -> Digest20 {
        if self.leaves.is_empty() {
            return empty_root();
        }
        assert!(
            !self.levels.is_empty(),
            "tree was modified; call rebuild() before root()"
        );
        self.levels.last().expect("non-empty levels")[0]
    }

    /// Binary-searches for `serial`, returning the leaf index if revoked.
    pub fn find(&self, serial: &SerialNumber) -> Option<usize> {
        self.leaves.binary_search_by(|l| l.serial.cmp(serial)).ok()
    }

    /// Index of the first leaf with serial `>= serial` (== `len()` when all
    /// are smaller). Used for absence proofs.
    pub fn lower_bound(&self, serial: &SerialNumber) -> usize {
        self.leaves.partition_point(|l| l.serial < *serial)
    }

    /// The audit path (bottom-up sibling hashes) for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the tree needs a rebuild.
    pub fn audit_path(&self, index: usize) -> Vec<Digest20> {
        assert!(index < self.leaves.len(), "leaf index out of bounds");
        assert!(
            !self.levels.is_empty(),
            "call rebuild() before audit_path()"
        );
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(level[sibling]);
            }
            idx /= 2;
        }
        path
    }

    /// The cached hashes of `level` (0 = leaf hashes); used by the
    /// multiproof generator to read sibling nodes directly.
    ///
    /// # Panics
    ///
    /// Panics if the tree needs a rebuild or `level` is out of range.
    pub(crate) fn level_hashes(&self, level: usize) -> &[Digest20] {
        assert!(
            !self.levels.is_empty(),
            "call rebuild() before reading level hashes"
        );
        &self.levels[level]
    }

    /// Approximate heap usage of the interior levels plus leaf storage, for
    /// the §VII-D storage/memory experiment.
    pub fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .levels
            .iter()
            .map(|l| l.len() * core::mem::size_of::<Digest20>())
            .sum();
        node_bytes + self.leaves.len() * core::mem::size_of::<Leaf>()
    }

    /// Bytes needed to persist just the revocation data (serial bytes plus
    /// an 8-byte revocation number per entry) — the paper's "storage"
    /// metric.
    pub fn storage_bytes(&self) -> usize {
        self.leaves.iter().map(|l| l.serial.len() + 8).sum()
    }
}

/// Derives the rollback rehash front: the first *position* any of
/// `serials` occupies, walking each binary-search hit back over
/// duplicate-serial leaves (allowed by the structure) so no removed
/// position can lie left of the front. Shared by the dense and persistent
/// `remove_sorted_batch` implementations — the walk-back subtlety must
/// never diverge between them. `search` is the tree's binary search;
/// `serial_at` reads the leaf serial at an index.
pub(crate) fn rollback_front(
    serials: &[SerialNumber],
    search: impl Fn(&SerialNumber) -> Option<usize>,
    serial_at: impl Fn(usize) -> SerialNumber,
) -> Option<usize> {
    let mut first = usize::MAX;
    for s in serials {
        if let Some(mut i) = search(s) {
            while i > 0 && serial_at(i - 1) == *s {
                i -= 1;
            }
            first = first.min(i);
        }
    }
    (first != usize::MAX).then_some(first)
}

/// Read access to a proof-ready sorted-leaf hash tree.
///
/// Proof generation ([`crate::proof::RevocationProof::generate`],
/// [`crate::proof::MultiProof::generate`]) is written against this trait so
/// it works identically over the dense [`MerkleTree`] (CA side) and the
/// structurally-shared [`crate::persistent::PersistentTree`] (mirror /
/// snapshot side).
pub trait TreeReader {
    /// Number of leaves.
    fn len(&self) -> usize;

    /// `true` when the tree holds no leaves.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leaf at `index` (sorted order).
    fn leaf(&self, index: usize) -> Leaf;

    /// Index of `serial`'s leaf, if revoked.
    fn find(&self, serial: &SerialNumber) -> Option<usize>;

    /// Index of the first leaf with serial `>= serial`.
    fn lower_bound(&self, serial: &SerialNumber) -> usize;

    /// Bottom-up sibling hashes for leaf `index`.
    fn audit_path(&self, index: usize) -> Vec<Digest20>;

    /// The cached hash at `(level, index)` (level 0 = leaf hashes).
    fn level_node(&self, level: usize, index: usize) -> Digest20;
}

impl TreeReader for MerkleTree {
    fn len(&self) -> usize {
        MerkleTree::len(self)
    }

    fn leaf(&self, index: usize) -> Leaf {
        self.leaves[index]
    }

    fn find(&self, serial: &SerialNumber) -> Option<usize> {
        MerkleTree::find(self, serial)
    }

    fn lower_bound(&self, serial: &SerialNumber) -> usize {
        MerkleTree::lower_bound(self, serial)
    }

    fn audit_path(&self, index: usize) -> Vec<Digest20> {
        MerkleTree::audit_path(self, index)
    }

    fn level_node(&self, level: usize, index: usize) -> Digest20 {
        self.level_hashes(level)[index]
    }
}

/// Recomputes a root from a leaf hash and its audit path.
///
/// Returns `None` when the path length is inconsistent with `(index, size)`.
pub fn root_from_path(
    index: usize,
    size: usize,
    leaf_hash: Digest20,
    path: &[Digest20],
) -> Option<Digest20> {
    if index >= size || size == 0 {
        return None;
    }
    let mut idx = index;
    let mut level_len = size;
    let mut hash = leaf_hash;
    let mut elems = path.iter();
    while level_len > 1 {
        let sibling = idx ^ 1;
        if sibling < level_len {
            let sib = elems.next()?;
            hash = if idx.is_multiple_of(2) {
                node_hash(&hash, sib)
            } else {
                node_hash(sib, &hash)
            };
        }
        idx /= 2;
        level_len = level_len.div_ceil(2);
    }
    if elems.next().is_some() {
        return None;
    }
    Some(hash)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(serials: &[u32]) -> MerkleTree {
        let mut t = MerkleTree::new();
        for (i, s) in serials.iter().enumerate() {
            t.insert_sorted(Leaf::new(SerialNumber::from_u24(*s), i as u64 + 1));
        }
        t.rebuild();
        t
    }

    #[test]
    fn empty_tree_has_defined_root() {
        let t = MerkleTree::new();
        assert_eq!(t.root(), empty_root());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = tree_with(&[42]);
        assert_eq!(t.root(), t.leaves()[0].hash());
    }

    #[test]
    fn leaves_stay_sorted() {
        let t = tree_with(&[9, 1, 5, 3, 7]);
        let serials: Vec<_> = t.leaves().iter().map(|l| l.serial).collect();
        let mut sorted = serials.clone();
        sorted.sort();
        assert_eq!(serials, sorted);
    }

    #[test]
    fn insertion_order_preserved_in_numbers() {
        let t = tree_with(&[9, 1, 5]);
        // serial 1 was inserted second -> number 2.
        let idx = t.find(&SerialNumber::from_u24(1)).unwrap();
        assert_eq!(t.leaves()[idx].number, 2);
    }

    #[test]
    fn root_changes_on_insert() {
        let a = tree_with(&[1, 2, 3]);
        let b = tree_with(&[1, 2, 3, 4]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn audit_paths_verify_for_all_sizes() {
        for n in 1..=33u32 {
            let serials: Vec<u32> = (0..n).map(|i| i * 3 + 1).collect();
            let t = tree_with(&serials);
            for i in 0..t.len() {
                let path = t.audit_path(i);
                let got = root_from_path(i, t.len(), t.leaves()[i].hash(), &path);
                assert_eq!(got, Some(t.root()), "n = {n}, i = {i}");
            }
        }
    }

    #[test]
    fn audit_path_rejects_wrong_index() {
        let t = tree_with(&[1, 2, 3, 4, 5]);
        let path = t.audit_path(2);
        let h = t.leaves()[2].hash();
        // Right leaf hash, wrong claimed index.
        let got = root_from_path(3, t.len(), h, &path);
        assert_ne!(got, Some(t.root()));
    }

    #[test]
    fn audit_path_rejects_truncated_path() {
        let t = tree_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut path = t.audit_path(0);
        path.pop();
        assert_eq!(
            root_from_path(0, t.len(), t.leaves()[0].hash(), &path),
            None
        );
    }

    #[test]
    fn audit_path_rejects_extended_path() {
        let t = tree_with(&[1, 2, 3, 4]);
        let mut path = t.audit_path(0);
        path.push(Digest20::hash(b"extra"));
        assert_eq!(
            root_from_path(0, t.len(), t.leaves()[0].hash(), &path),
            None
        );
    }

    #[test]
    fn root_from_path_bounds() {
        assert_eq!(root_from_path(0, 0, Digest20::ZERO, &[]), None);
        assert_eq!(root_from_path(5, 5, Digest20::ZERO, &[]), None);
    }

    #[test]
    fn leaf_hash_depends_on_number() {
        let s = SerialNumber::from_u24(7);
        assert_ne!(Leaf::new(s, 1).hash(), Leaf::new(s, 2).hash());
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf hash must never equal an interior hash of the same bytes.
        let a = Digest20::hash(b"a");
        let b = Digest20::hash(b"b");
        let node = node_hash(&a, &b);
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(node, Digest20::hash(&concat));
    }

    #[test]
    fn storage_accounting() {
        let t = tree_with(&[1, 2, 3, 4]);
        // 4 leaves × (3-byte serial + 8-byte number)
        assert_eq!(t.storage_bytes(), 4 * 11);
        assert!(t.memory_bytes() > t.storage_bytes());
    }

    #[test]
    #[should_panic(expected = "rebuild")]
    fn stale_root_panics() {
        let mut t = tree_with(&[1]);
        t.insert_sorted(Leaf::new(SerialNumber::from_u24(2), 2));
        let _ = t.root();
    }

    #[test]
    fn parallel_rebuild_matches_sequential() {
        // Above PAR_THRESHOLD leaves so the pool actually fans out; the
        // parallel chunking must be invisible in the resulting tree.
        let n = crate::parallel::PAR_THRESHOLD as u32 + 513;
        let mut seq = MerkleTree::new();
        seq.extend_leaves((0..n).map(|i| Leaf::new(SerialNumber::from_u24(i * 2), i as u64 + 1)));
        let mut par = seq.clone();
        seq.rebuild_with(&HashPool::sequential());
        par.rebuild_with(&HashPool::new(4));
        assert_eq!(seq.root(), par.root());
        for i in [0usize, 1, 4095, 4096, n as usize - 1] {
            assert_eq!(seq.audit_path(i), par.audit_path(i), "path {i}");
        }

        // Incremental batches through a multi-worker pool stay identical too.
        let batch: Vec<Leaf> = (0..crate::parallel::PAR_THRESHOLD as u32 + 11)
            .map(|i| Leaf::new(SerialNumber::from_u24(n * 2 + 1 + i), (n + i) as u64 + 1))
            .collect();
        assert!(seq.apply_sorted_batch_with(&batch, &HashPool::sequential()));
        assert!(par.apply_sorted_batch_with(&batch, &HashPool::new(4)));
        assert_eq!(seq.root(), par.root());
    }

    #[test]
    fn rollback_rehashes_no_retained_leaves() {
        // Regression: remove_sorted_batch used to rehash every retained
        // leaf at/after the rehash front — rolling back a small batch near
        // the front cost O(n) leaf hashes. The fixed path splices the
        // still-valid hashes and must compute ZERO leaf hashes.
        let n = 4096u32;
        let mut t = tree_with(&(0..n).map(|i| i * 2 + 10).collect::<Vec<_>>());
        // Batch lands near the front of the sort order.
        let batch: Vec<Leaf> = (0..4u32)
            .map(|i| Leaf::new(SerialNumber::from_u24(i * 2 + 11), (n + i) as u64 + 1))
            .collect();
        assert!(t.apply_sorted_batch(&batch));
        let root_before_batch = tree_with(&(0..n).map(|i| i * 2 + 10).collect::<Vec<_>>()).root();

        let serials: Vec<SerialNumber> = batch.iter().map(|l| l.serial).collect();
        let hashes_before = leaf_hash_calls();
        assert_eq!(t.remove_sorted_batch(&serials), 4);
        assert_eq!(
            leaf_hash_calls() - hashes_before,
            0,
            "rollback must splice retained leaf hashes, not recompute them"
        );
        assert_eq!(t.root(), root_before_batch);
    }

    #[test]
    fn duplicate_serial_rollback_leaves_no_stale_hash() {
        // Regression: `insert_sorted` allows duplicate serials, and a
        // binary search may land on the *later* duplicate. Deriving the
        // rehash front from it left a stale hash at the earlier duplicate's
        // position. Layout [1, 2, 2, 3]: binary search for 2 lands on
        // index 2 while index 1 is also removed.
        let mut t = MerkleTree::new();
        for (i, s) in [1u32, 2, 2, 3].iter().enumerate() {
            t.insert_sorted(Leaf::new(SerialNumber::from_u24(*s), i as u64 + 1));
        }
        t.rebuild();
        assert_eq!(t.remove_sorted_batch(&[SerialNumber::from_u24(2)]), 2);
        assert_eq!(t.len(), 2);
        // The surviving tree must be bit-identical to a fresh build of the
        // remaining leaves (stale level-0 hashes would change the root).
        let mut reference = MerkleTree::new();
        reference.extend_leaves(t.leaves().iter().copied());
        reference.rebuild();
        assert_eq!(t.root(), reference.root());
        assert_eq!(t.audit_path(0), reference.audit_path(0));
        assert_eq!(t.audit_path(1), reference.audit_path(1));
    }

    #[test]
    fn rebuild_is_idempotent() {
        let mut t = tree_with(&[5, 6, 7]);
        let r = t.root();
        t.rebuild();
        assert_eq!(t.root(), r);
    }
}
