//! Consistency checking and CA-misbehavior detection (paper §III
//! "Consistency Checking" and §V "Misbehaving CA").
//!
//! Dictionaries are append-only with consecutively numbered revocations, so
//! a misbehaving CA that shows different dictionary versions to different
//! parties must eventually produce **two validly-signed roots with the same
//! size but different root hashes** — a compact, transferable proof of
//! equivocation. [`RootObservatory`] collects the signed roots a party has
//! seen (from edge servers, other RAs, or gossiping clients) and surfaces
//! such proofs.

use crate::root::{CaId, SignedRoot};
use ritm_crypto::ed25519::VerifyingKey;
use std::collections::BTreeMap;

/// Cryptographic proof that a CA equivocated: two roots, same `n`,
/// different content, both validly signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivocationProof {
    /// First conflicting signed root.
    pub first: SignedRoot,
    /// Second conflicting signed root.
    pub second: SignedRoot,
}

impl EquivocationProof {
    /// Attempts to build a proof from two observed roots.
    ///
    /// Returns `None` unless the two roots genuinely conflict (same CA, same
    /// size, different root hash) and both signatures verify under `key`.
    pub fn build(a: SignedRoot, b: SignedRoot, key: &VerifyingKey) -> Option<Self> {
        if a.ca != b.ca || a.size != b.size || a.root == b.root {
            return None;
        }
        a.verify(key).ok()?;
        b.verify(key).ok()?;
        Some(EquivocationProof {
            first: a,
            second: b,
        })
    }

    /// Re-verifies the proof (e.g. by a software vendor receiving a report).
    pub fn verify(&self, key: &VerifyingKey) -> bool {
        self.first.ca == self.second.ca
            && self.first.size == self.second.size
            && self.first.root != self.second.root
            && self.first.verify(key).is_ok()
            && self.second.verify(key).is_ok()
    }

    /// The misbehaving CA.
    pub fn ca(&self) -> CaId {
        self.first.ca
    }
}

/// Outcome of feeding one observation to a [`RootObservatory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// The root is consistent with everything seen so far.
    Consistent,
    /// First time this `(ca, size)` pair is seen.
    New,
    /// The root conflicts with an earlier observation — misbehavior proven.
    Equivocation(Box<EquivocationProof>),
    /// Signature did not verify; the message is discarded (not proof of CA
    /// misbehavior — anyone can fabricate a bad signature).
    BadSignature,
}

/// Collects signed roots per CA and detects equivocation.
///
/// # Examples
///
/// ```
/// use ritm_dictionary::consistency::{Observation, RootObservatory};
/// use ritm_dictionary::{CaId, SignedRoot};
/// use ritm_crypto::{digest::Digest20, SigningKey};
///
/// let key = SigningKey::from_seed([1u8; 32]);
/// let ca = CaId::from_name("CA");
/// let mut obs = RootObservatory::new();
/// obs.register_ca(ca, key.verifying_key());
/// let r = SignedRoot::create(&key, ca, Digest20::hash(b"v1"), 5, Digest20::hash(b"a"), 100);
/// assert_eq!(obs.observe(r), Observation::New);
/// assert_eq!(obs.observe(r), Observation::Consistent);
/// ```
#[derive(Debug, Default)]
pub struct RootObservatory {
    keys: BTreeMap<CaId, VerifyingKey>,
    /// Latest observed root per (CA, size).
    seen: BTreeMap<(CaId, u64), SignedRoot>,
    proofs: Vec<EquivocationProof>,
}

impl RootObservatory {
    /// Creates an empty observatory.
    pub fn new() -> Self {
        RootObservatory::default()
    }

    /// Registers the trusted key for a CA; observations for unknown CAs are
    /// rejected as [`Observation::BadSignature`].
    pub fn register_ca(&mut self, ca: CaId, key: VerifyingKey) {
        self.keys.insert(ca, key);
    }

    /// Feeds one signed root (obtained from an edge server, a peer RA, or a
    /// client gossip message) into the observatory.
    pub fn observe(&mut self, root: SignedRoot) -> Observation {
        let Some(key) = self.keys.get(&root.ca) else {
            return Observation::BadSignature;
        };
        if root.verify(key).is_err() {
            return Observation::BadSignature;
        }
        match self.seen.get(&(root.ca, root.size)) {
            None => {
                self.seen.insert((root.ca, root.size), root);
                Observation::New
            }
            Some(prev) if prev.root == root.root => Observation::Consistent,
            Some(prev) => {
                let proof = EquivocationProof::build(*prev, root, key)
                    .expect("both roots verified and conflict");
                self.proofs.push(proof);
                Observation::Equivocation(Box::new(proof))
            }
        }
    }

    /// All equivocation proofs collected so far.
    pub fn proofs(&self) -> &[EquivocationProof] {
        &self.proofs
    }

    /// Number of distinct (CA, size) observations stored.
    pub fn observed_count(&self) -> usize {
        self.seen.len()
    }

    /// The latest (largest-size) root observed for `ca`, if any.
    pub fn latest(&self, ca: CaId) -> Option<&SignedRoot> {
        self.seen
            .range((ca, 0)..=(ca, u64::MAX))
            .next_back()
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritm_crypto::digest::Digest20;
    use ritm_crypto::ed25519::SigningKey;

    fn key() -> SigningKey {
        SigningKey::from_seed([8u8; 32])
    }

    fn root_with(content: &[u8], size: u64) -> SignedRoot {
        SignedRoot::create(
            &key(),
            CaId::from_name("CA"),
            Digest20::hash(content),
            size,
            Digest20::hash(b"anchor"),
            1_000,
        )
    }

    #[test]
    fn equivocation_detected() {
        let mut obs = RootObservatory::new();
        obs.register_ca(CaId::from_name("CA"), key().verifying_key());
        assert_eq!(obs.observe(root_with(b"v1", 5)), Observation::New);
        match obs.observe(root_with(b"v2", 5)) {
            Observation::Equivocation(p) => {
                assert!(p.verify(&key().verifying_key()));
                assert_eq!(p.ca(), CaId::from_name("CA"));
            }
            other => panic!("expected equivocation, got {other:?}"),
        }
        assert_eq!(obs.proofs().len(), 1);
    }

    #[test]
    fn different_sizes_are_not_equivocation() {
        let mut obs = RootObservatory::new();
        obs.register_ca(CaId::from_name("CA"), key().verifying_key());
        assert_eq!(obs.observe(root_with(b"v1", 5)), Observation::New);
        assert_eq!(obs.observe(root_with(b"v2", 6)), Observation::New);
        assert!(obs.proofs().is_empty());
    }

    #[test]
    fn same_root_is_consistent() {
        let mut obs = RootObservatory::new();
        obs.register_ca(CaId::from_name("CA"), key().verifying_key());
        let r = root_with(b"v1", 5);
        assert_eq!(obs.observe(r), Observation::New);
        assert_eq!(obs.observe(r), Observation::Consistent);
    }

    #[test]
    fn unknown_ca_rejected() {
        let mut obs = RootObservatory::new();
        assert_eq!(obs.observe(root_with(b"v1", 5)), Observation::BadSignature);
    }

    #[test]
    fn forged_root_rejected_without_proof() {
        let mut obs = RootObservatory::new();
        obs.register_ca(CaId::from_name("CA"), key().verifying_key());
        let mut forged = root_with(b"v1", 5);
        forged.root = Digest20::hash(b"tampered");
        assert_eq!(obs.observe(forged), Observation::BadSignature);
        assert!(obs.proofs().is_empty());
    }

    #[test]
    fn proof_build_requires_conflict() {
        let k = key().verifying_key();
        let a = root_with(b"v1", 5);
        assert!(EquivocationProof::build(a, a, &k).is_none());
        let b = root_with(b"v1", 6);
        assert!(EquivocationProof::build(a, b, &k).is_none());
        let c = root_with(b"v2", 5);
        assert!(EquivocationProof::build(a, c, &k).is_some());
    }

    #[test]
    fn latest_returns_largest_size() {
        let mut obs = RootObservatory::new();
        obs.register_ca(CaId::from_name("CA"), key().verifying_key());
        obs.observe(root_with(b"a", 3));
        obs.observe(root_with(b"b", 9));
        obs.observe(root_with(b"c", 6));
        assert_eq!(obs.latest(CaId::from_name("CA")).unwrap().size, 9);
        assert!(obs.latest(CaId::from_name("Other")).is_none());
    }
}
