//! Immutable, epoch-stamped dictionary snapshots for lock-free proof
//! serving.
//!
//! A production RA serves revocation proofs to many concurrent handshake
//! flows while a background thread applies issuance batches and freshness
//! refreshes. Serving everything through `&mut` serializes readers behind
//! writers; instead, the writer builds a [`DictionarySnapshot`] — a frozen
//! copy of the mirror's tree, signed root, and freshness statement at one
//! epoch — *off to the side* and publishes it into a [`SnapshotCell`] with
//! an RCU-style pointer swap. Readers `load()` an `Arc` to the current
//! snapshot and generate any number of proofs from plain `&self` without
//! ever blocking the writer (or each other); a snapshot stays alive until
//! its last reader drops it.
//!
//! The cell's hot path is an `Arc` clone under an uncontended read lock —
//! a single atomic acquire — and writers hold the write lock only for the
//! pointer swap itself, never while building the next snapshot.

use crate::dictionary::RevocationStatus;
use crate::freshness::FreshnessStatement;
use crate::persistent::PersistentTree;
use crate::proof::{MultiProof, RevocationProof};
use crate::root::{CaId, SignedRoot};
use crate::serial::SerialNumber;
use parking_lot::RwLock;
use std::sync::Arc;

/// A frozen, self-consistent view of one mirrored dictionary.
///
/// Everything needed to serve a complete revocation status — tree, signed
/// root, freshness statement — is captured together, so a status composed
/// from one snapshot always verifies against its own root.
#[derive(Debug, Clone)]
pub struct DictionarySnapshot {
    ca: CaId,
    epoch: u64,
    /// Structurally shared with the mirror it was frozen from: cloning a
    /// [`PersistentTree`] bumps one `Arc` per chunk, so publication costs
    /// O(chunks) regardless of dictionary size, and republications share
    /// every chunk the writer has not dirtied since.
    tree: PersistentTree,
    signed_root: SignedRoot,
    freshness: FreshnessStatement,
}

impl DictionarySnapshot {
    /// Freezes the given state. The tree must be proof-ready.
    pub fn new(
        ca: CaId,
        epoch: u64,
        tree: PersistentTree,
        signed_root: SignedRoot,
        freshness: FreshnessStatement,
    ) -> Self {
        DictionarySnapshot {
            ca,
            epoch,
            tree,
            signed_root,
            freshness,
        }
    }

    /// A snapshot at the **same epoch** with a new signed root and
    /// freshness statement, sharing this snapshot's frozen tree (chunk
    /// `Arc` bumps, not a copy). This is the cheap republish for
    /// freshness-only refreshes and root rotations, where the dictionary
    /// content — and therefore every audit path — is unchanged.
    pub fn with_root_and_freshness(
        &self,
        signed_root: SignedRoot,
        freshness: FreshnessStatement,
    ) -> Self {
        DictionarySnapshot {
            ca: self.ca,
            epoch: self.epoch,
            tree: self.tree.clone(),
            signed_root,
            freshness,
        }
    }

    /// The CA whose dictionary this snapshot freezes.
    pub fn ca(&self) -> CaId {
        self.ca
    }

    /// The content epoch this snapshot was taken at. Proofs generated from
    /// the snapshot are valid exactly for this epoch — proof caches key on
    /// it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The signed root the snapshot's proofs commit to.
    pub fn signed_root(&self) -> &SignedRoot {
        &self.signed_root
    }

    /// The freshness statement captured with the root.
    pub fn freshness(&self) -> &FreshnessStatement {
        &self.freshness
    }

    /// Revocations in the snapshot.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when the snapshot holds no revocations.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Whether `serial` is revoked in this snapshot.
    pub fn contains(&self, serial: &SerialNumber) -> bool {
        self.tree.find(serial).is_some()
    }

    /// Generates the bare audit-path proof for `serial` (`&self`; any
    /// number of threads may prove concurrently).
    pub fn proof(&self, serial: &SerialNumber) -> RevocationProof {
        RevocationProof::generate(&self.tree, serial)
    }

    /// Generates a compressed [`MultiProof`] for a set of serials.
    pub fn multi_proof(&self, serials: &[SerialNumber]) -> MultiProof {
        MultiProof::generate(&self.tree, serials)
    }

    /// Builds the full revocation status (Eq. 3) for `serial` from this
    /// snapshot's root and freshness.
    pub fn status(&self, serial: &SerialNumber) -> RevocationStatus {
        RevocationStatus {
            proof: self.proof(serial),
            signed_root: self.signed_root,
            freshness: self.freshness,
        }
    }
}

/// An RCU-style publication slot for the current snapshot of one mirror.
///
/// Writers [`publish`] a fully-built snapshot; readers [`load`] the current
/// one. Neither ever waits on proof generation or tree application — the
/// write lock guards only the pointer swap.
///
/// [`publish`]: SnapshotCell::publish
/// [`load`]: SnapshotCell::load
#[derive(Debug)]
pub struct SnapshotCell {
    current: RwLock<Arc<DictionarySnapshot>>,
    /// Count of accepted publishes, bumped *after* each swap. Unlike the
    /// epoch, this advances on same-epoch refreshes too, so it keys
    /// anything derived from the snapshot's *bytes* (signed root,
    /// freshness) rather than its content — encoded-response caches in
    /// particular. Reading the generation *before* `load()` guarantees
    /// the loaded snapshot is at least as new as the generation says.
    generation: std::sync::atomic::AtomicU64,
}

impl SnapshotCell {
    /// Creates a cell holding `snapshot`.
    pub fn new(snapshot: DictionarySnapshot) -> Self {
        SnapshotCell {
            current: RwLock::new(Arc::new(snapshot)),
            generation: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone); the returned snapshot
    /// stays valid however many swaps happen afterwards.
    pub fn load(&self) -> Arc<DictionarySnapshot> {
        self.current.read().clone()
    }

    /// The publication generation: how many publishes (including
    /// same-epoch freshness refreshes) this cell has accepted. A cache
    /// keyed on `(ca, generation)` is invalidated by *every* publish —
    /// the right key for cached response bytes, which embed the signed
    /// root and freshness that a refresh changes without advancing the
    /// epoch.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Atomically replaces the current snapshot, **epoch-guarded**: a
    /// snapshot older than the current one is rejected (returns `false`),
    /// so a delayed freshness-only republish built from a stale load can
    /// never clobber a newer-epoch content snapshot and re-serve a
    /// pre-batch root. Same-epoch publishes replace (that is how refreshes
    /// and root rotations propagate). The old snapshot is freed when its
    /// last reader drops it (classic RCU grace period via `Arc`).
    #[must_use = "a rejected (stale) publish leaves readers on the newer snapshot"]
    pub fn publish(&self, snapshot: DictionarySnapshot) -> bool {
        let next = Arc::new(snapshot);
        let mut current = self.current.write();
        if next.epoch() < current.epoch() {
            return false;
        }
        *current = next;
        // Bump only after the swap (still under the write lock): a reader
        // that observes generation g and then loads can never get a
        // snapshot older than the one publish g installed.
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{CaDictionary, MirrorDictionary};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ritm_crypto::ed25519::SigningKey;

    const T0: u64 = 1_000_000;

    fn mirror_with(n: u32) -> (CaDictionary, MirrorDictionary) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ca = CaDictionary::new(
            CaId::from_name("SnapCA"),
            SigningKey::from_seed([1u8; 32]),
            10,
            64,
            &mut rng,
            T0,
        );
        let mut m = MirrorDictionary::new(ca.ca(), ca.verifying_key(), *ca.signed_root()).unwrap();
        m.set_delta(10);
        let serials: Vec<SerialNumber> = (0..n).map(SerialNumber::from_u24).collect();
        let iss = ca.insert(&serials, &mut rng, T0 + 1).unwrap();
        m.apply_issuance(&iss, T0 + 1).unwrap();
        (ca, m)
    }

    #[test]
    fn snapshot_serves_consistent_statuses() {
        let (ca, m) = mirror_with(10);
        let snap = m.snapshot();
        assert_eq!(snap.epoch(), m.epoch());
        assert_eq!(snap.len(), 10);
        let status = snap.status(&SerialNumber::from_u24(3));
        let outcome = status
            .validate(&SerialNumber::from_u24(3), &ca.verifying_key(), 10, T0 + 2)
            .unwrap();
        assert!(outcome.is_revoked());
    }

    #[test]
    fn old_snapshot_survives_publish() {
        let (mut ca, mut m) = mirror_with(5);
        let cell = SnapshotCell::new(m.snapshot());
        let old = cell.load();

        // Writer advances the mirror and publishes the new epoch.
        let mut rng = StdRng::seed_from_u64(6);
        let iss = ca
            .insert(&[SerialNumber::from_u24(99)], &mut rng, T0 + 2)
            .unwrap();
        m.apply_issuance(&iss, T0 + 2).unwrap();
        assert!(cell.publish(m.snapshot()));

        let new = cell.load();
        assert!(new.epoch() > old.epoch());
        assert_eq!(old.len(), 5, "retained snapshot still serves its epoch");
        assert_eq!(new.len(), 6);
        // The old snapshot's proofs still verify against the old root.
        let s = SerialNumber::from_u24(2);
        let implied = old.proof(&s);
        assert!(implied
            .verify(&s, &old.signed_root().root, old.signed_root().size)
            .is_ok());
    }

    #[test]
    fn stale_refresh_republish_cannot_clobber_newer_content() {
        // Regression: a freshness-only republish built from an *older*
        // loaded snapshot used to blindly swap in, re-serving a pre-batch
        // root inside the 2Δ window. The publish is now epoch-guarded.
        let (mut ca, mut m) = mirror_with(5);
        let cell = SnapshotCell::new(m.snapshot());

        // A refresher thread loads the current snapshot... and stalls.
        let stale_load = cell.load();

        // Meanwhile a content batch lands and is published.
        let mut rng = StdRng::seed_from_u64(8);
        let iss = ca
            .insert(&[SerialNumber::from_u24(77)], &mut rng, T0 + 2)
            .unwrap();
        m.apply_issuance(&iss, T0 + 2).unwrap();
        assert!(cell.publish(m.snapshot()));
        let content = cell.load();
        assert!(content.contains(&SerialNumber::from_u24(77)));

        // The stalled refresher wakes up and republishes from its stale
        // load: the cell must reject it, and readers must never regress.
        let stale_republish =
            stale_load.with_root_and_freshness(*stale_load.signed_root(), *stale_load.freshness());
        assert!(!cell.publish(stale_republish), "stale republish rejected");
        let now = cell.load();
        assert_eq!(now.epoch(), content.epoch(), "epoch must not regress");
        assert_eq!(now.signed_root(), content.signed_root());
        assert!(now.contains(&SerialNumber::from_u24(77)));

        // A same-epoch republish (genuine refresh of the *current* view)
        // still replaces.
        let refreshed = now.with_root_and_freshness(*now.signed_root(), *m.freshness());
        assert!(cell.publish(refreshed));
        assert_eq!(cell.load().epoch(), content.epoch());
    }

    #[test]
    fn generation_advances_on_every_accepted_publish_including_refreshes() {
        let (mut ca, mut m) = mirror_with(3);
        let cell = SnapshotCell::new(m.snapshot());
        assert_eq!(cell.generation(), 0);

        // Content publish: epoch and generation both advance.
        let mut rng = StdRng::seed_from_u64(9);
        let iss = ca
            .insert(&[SerialNumber::from_u24(50)], &mut rng, T0 + 2)
            .unwrap();
        m.apply_issuance(&iss, T0 + 2).unwrap();
        assert!(cell.publish(m.snapshot()));
        assert_eq!(cell.generation(), 1);

        // Freshness-only refresh: the epoch stays put, but the served
        // bytes change — the generation must advance so byte-level caches
        // are invalidated.
        let cur = cell.load();
        let refreshed = cur.with_root_and_freshness(*cur.signed_root(), *m.freshness());
        assert_eq!(refreshed.epoch(), cur.epoch());
        assert!(cell.publish(refreshed));
        assert_eq!(cell.generation(), 2);

        // A rejected (stale) publish changes nothing, so caches keyed on
        // the generation keep serving the newer bytes.
        let stale = DictionarySnapshot::new(
            cur.ca(),
            0,
            // A stale tree from before the batch.
            cell.load().tree.clone(),
            *cur.signed_root(),
            *cur.freshness(),
        );
        assert!(!cell.publish(stale));
        assert_eq!(cell.generation(), 2);
    }
}
