//! Integration tests for the §V adversary model: blocking, downgrade,
//! MITM tampering, status forgery/replay, and CA equivocation — each attack
//! must fail in the specific way the paper argues.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::{ConsistencyMonitor, RaConfig, RevocationAgent, StatusPayload};
use ritm::ca::{EquivocatingCa, View};
use ritm::client::AbortReason;
use ritm::core::{ConnectionOptions, DeploymentModel, RitmWorld};
use ritm::crypto::SigningKey;
use ritm::dictionary::{CaDictionary, CaId, SerialNumber};

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;

#[test]
fn blocking_attack_kills_connection_not_security() {
    // §V "MITM and Blocking Attack": dropping status messages leads to a
    // connection interruption, never to acceptance of a revoked cert.
    let mut w = RitmWorld::new(31, DELTA, DeploymentModel::CloseToClients);
    // Server never sends data after the handshake, so the RA has nothing to
    // piggyback refreshes on — equivalent to an adversary dropping them.
    let out = w.run_connection(&ConnectionOptions {
        duration_secs: 4 * DELTA,
        server_sends_at: vec![],
        ..Default::default()
    });
    let (t, reason) = out.aborted.expect("client must interrupt");
    assert_eq!(reason, AbortReason::StaleStatus);
    assert!(t > 2 * DELTA && t <= 2 * DELTA + 3, "interrupted at +{t}s");
}

#[test]
fn downgrade_attack_fails_under_network_promise() {
    let mut w = RitmWorld::new(32, DELTA, DeploymentModel::CloseToClients);
    let out = w.run_connection(&ConnectionOptions {
        with_ra: false, // tunnelled around the RA
        duration_secs: 5,
        ..Default::default()
    });
    assert!(matches!(out.aborted, Some((_, AbortReason::MissingStatus))));
}

#[test]
fn forged_status_is_rejected_and_real_one_still_counts() {
    // An on-path adversary injects a fabricated "not revoked" status for a
    // revoked certificate, signed by the wrong key.
    let mut rng = StdRng::seed_from_u64(33);
    let mut honest_ca = CaDictionary::new(
        CaId::from_name("HonestCA"),
        SigningKey::from_seed([1u8; 32]),
        DELTA,
        1 << 10,
        &mut rng,
        T0,
    );
    let victim = SerialNumber::from_u24(0x073e10);
    honest_ca
        .insert(&[victim], &mut rng, T0 + 1)
        .expect("revoked");

    // The adversary runs a parallel dictionary with the same CaId but its
    // own key, proving "absence".
    let mut evil = CaDictionary::new(
        CaId::from_name("HonestCA"),
        SigningKey::from_seed([66u8; 32]),
        DELTA,
        1 << 10,
        &mut rng,
        T0,
    );
    evil.insert(&[SerialNumber::from_u24(0x999999)], &mut rng, T0 + 1);
    let forged = evil.prove(&victim, T0 + 2).expect("forged status");

    // The client pins the honest CA key: the forged status must fail.
    let mut keys = std::collections::HashMap::new();
    keys.insert(honest_ca.ca(), honest_ca.verifying_key());
    let payload = StatusPayload::single(vec![forged]);
    let res =
        ritm::client::validate_payload(&payload, &[(honest_ca.ca(), victim)], &keys, DELTA, T0 + 2);
    assert!(res.is_err(), "forged signature must not validate");

    // The genuine status still proves the revocation.
    let genuine = honest_ca.prove(&victim, T0 + 2).expect("status");
    let payload = StatusPayload::single(vec![genuine]);
    let verdict =
        ritm::client::validate_payload(&payload, &[(honest_ca.ca(), victim)], &keys, DELTA, T0 + 2)
            .expect("genuine status validates");
    assert!(matches!(verdict, ritm::client::Verdict::Revoked { .. }));
}

#[test]
fn replayed_pre_revocation_status_expires() {
    // Replay protection: an absence status captured before revocation can
    // only be replayed for at most 2Δ — then its freshness dies.
    let mut rng = StdRng::seed_from_u64(34);
    let mut ca = CaDictionary::new(
        CaId::from_name("ReplayCA"),
        SigningKey::from_seed([2u8; 32]),
        DELTA,
        1 << 10,
        &mut rng,
        T0,
    );
    let victim = SerialNumber::from_u24(0x1234);
    let captured = ca.prove(&victim, T0).expect("pre-revocation status");
    ca.insert(&[victim], &mut rng, T0 + 1);

    let key = ca.verifying_key();
    // Within the window the replay still passes (this is the 2Δ exposure).
    assert!(captured.validate(&victim, &key, DELTA, T0 + DELTA).is_ok());
    // Beyond it, the replay is dead.
    assert!(captured
        .validate(&victim, &key, DELTA, T0 + 3 * DELTA)
        .is_err());
}

#[test]
fn equivocating_ca_is_caught_by_cross_checking_ras() {
    let mut rng = StdRng::seed_from_u64(35);
    let cover: Vec<SerialNumber> = (1..10u32).map(SerialNumber::from_u24).collect();
    let ca = EquivocatingCa::new(
        "TwoFaceCA",
        SigningKey::from_seed([3u8; 32]),
        DELTA,
        1 << 10,
        SerialNumber::from_u24(0xdead),
        &cover,
        SerialNumber::from_u24(0xbeef),
        &mut rng,
        T0,
    );
    // RA-A saw the honest view; RA-B the hiding one. They gossip roots.
    let mut monitor_b = ConsistencyMonitor::new();
    monitor_b.register_ca(ca.ca(), ca.verifying_key());
    monitor_b.check(ca.signed_root(View::Hiding), "local");
    let reports = monitor_b.cross_check_with_peer(
        &RevocationAgent::new(RaConfig::default()),
        &[ca.signed_root(View::Honest)],
        "peer-ra",
    );
    assert_eq!(reports.len(), 1);
    assert!(reports[0].proof.verify(&ca.verifying_key()));
}

#[test]
fn non_ritm_traffic_is_untouched_by_attacked_paths() {
    // Backward compatibility under stress: even while RITM connections are
    // being attacked, plain traffic through the RA is never modified.
    use ritm::net::middlebox::Middlebox;
    use ritm::net::tcp::{Direction, FourTuple, SocketAddr, TcpSegment};
    use ritm::net::time::SimTime;

    let mut ra = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    let tuple = FourTuple {
        client: SocketAddr::new(1, 80),
        server: SocketAddr::new(2, 80),
    };
    for payload in [
        b"GET / HTTP/1.1\r\n".to_vec(),
        vec![0u8; 0],
        vec![0xff; 1400],
    ] {
        let seg = TcpSegment::data(tuple, Direction::ToServer, 0, 0, payload);
        let out = ra.process(seg.clone(), SimTime::from_secs(T0));
        assert_eq!(out, vec![seg]);
    }
    assert_eq!(ra.stats.statuses_sent, 0);
}
