//! Integration test for §VIII "Ever-growing dictionaries": a CA shards its
//! revocations by certificate-expiry bucket, RAs mirror each shard as an
//! independent dictionary, and whole shards are reclaimed once every
//! certificate they cover has expired.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::crypto::SigningKey;
use ritm::dictionary::{CaId, SerialNumber, ShardedCa};

const QUARTER: u64 = 90 * 24 * 3600;
const T0: u64 = 1_397_000_000;

#[test]
fn shard_lifecycle_bounds_ra_storage() {
    let mut rng = StdRng::seed_from_u64(91);
    let mut ca = ShardedCa::new(
        CaId::from_name("ShardCA"),
        SigningKey::from_seed([1u8; 32]),
        10,
        1 << 8,
        QUARTER,
    );

    // Revoke certificates expiring across six quarters (bucket-aligned so
    // each batch lands in exactly one shard).
    let base = (T0 / QUARTER + 1) * QUARTER;
    let mut n = 0u32;
    for quarter in 0..6u64 {
        for _ in 0..50 {
            n += 1;
            let expiry = base + quarter * QUARTER + QUARTER / 2;
            ca.revoke(SerialNumber::from_u24(n), expiry, &mut rng, T0)
                .expect("fresh serial");
        }
    }
    assert_eq!(ca.shard_count(), 6);
    assert_eq!(ca.total_revocations(), 300);
    let full_storage = ca.storage_bytes();

    // Two quarters past the base boundary, the first two shards cover only
    // expired certificates.
    let later = base + 2 * QUARTER + QUARTER / 4;
    let (dropped_shards, dropped_revs) = ca.prune_expired(later);
    assert_eq!(dropped_shards, 2);
    assert_eq!(dropped_revs, 100);
    assert_eq!(ca.total_revocations(), 200);
    assert!(ca.storage_bytes() < full_storage);

    // Each surviving shard is an independently provable dictionary.
    for (_, dict) in ca.shards() {
        assert!(!dict.is_empty());
        let some_serial = SerialNumber::from_u24(0xf0f0f0);
        let status = dict
            .prove(&some_serial, T0 + 1)
            .expect("freshness available");
        let verdict = status
            .validate(&some_serial, &dict.verifying_key(), 10, T0 + 1)
            .expect("valid proof");
        assert!(!verdict.is_revoked());
    }
}

#[test]
fn revocations_route_to_expiry_matched_shards() {
    let mut rng = StdRng::seed_from_u64(92);
    let mut ca = ShardedCa::new(
        CaId::from_name("RouteCA"),
        SigningKey::from_seed([2u8; 32]),
        10,
        1 << 8,
        QUARTER,
    );
    let base = (T0 / QUARTER + 1) * QUARTER;
    let (shard_a, _) = ca
        .revoke(SerialNumber::from_u24(1), base + QUARTER / 2, &mut rng, T0)
        .expect("new");
    let (shard_b, _) = ca
        .revoke(SerialNumber::from_u24(2), base + 3 * QUARTER, &mut rng, T0)
        .expect("new");
    assert_ne!(
        shard_a, shard_b,
        "different expiries, different dictionaries"
    );
    assert_eq!(ca.shard_id(base + QUARTER / 3), shard_a);
}
