//! Cross-crate integration tests: the full Fig. 1 / Fig. 3 protocol flow —
//! CA → CDN → RA → client — over the packet-level simulator.

use ritm::client::AbortReason;
use ritm::core::{ConnectionOptions, DeploymentModel, RitmWorld};

#[test]
fn handshake_delivers_initial_status_in_both_deployments() {
    for (seed, model) in [
        (1, DeploymentModel::CloseToClients),
        (2, DeploymentModel::CloseToServers),
    ] {
        let mut w = RitmWorld::new(seed, 10, model);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 5,
            ..Default::default()
        });
        assert_eq!(out.established_at, Some(0), "{model:?}");
        assert!(out.alive_at_end, "{model:?}: {:?}", out.events);
        assert!(out.statuses_injected >= 1, "{model:?}");
    }
}

#[test]
fn revocation_before_connection_blocks_handshake() {
    let mut w = RitmWorld::new(3, 10, DeploymentModel::CloseToClients);
    let serial = w.server_serial();
    w.revoke(serial);
    let out = w.run_connection(&ConnectionOptions::default());
    assert!(matches!(
        out.aborted,
        Some((_, AbortReason::Revoked { .. }))
    ));
    assert!(!out.alive_at_end);
}

#[test]
fn mid_connection_revocation_bounded_by_two_delta() {
    for delta in [5u64, 10, 20] {
        let mut w = RitmWorld::new(4 + delta, delta, DeploymentModel::CloseToClients);
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 6 * delta,
            server_sends_at: (1..6 * delta).step_by(2).collect(),
            revoke_at: Some(delta),
            ..Default::default()
        });
        let (t, reason) = out.aborted.expect("revocation must be detected");
        assert!(
            matches!(reason, AbortReason::Revoked { .. }),
            "Δ={delta}: {reason:?}"
        );
        assert!(
            t <= delta + 2 * delta + 2,
            "Δ={delta}: revoked at +{delta}s, detected at +{t}s (> 2Δ bound)"
        );
    }
}

#[test]
fn consecutive_connections_share_one_ra() {
    // One RA serves many connections; state is created and torn down per
    // connection while the mirrored dictionary persists.
    let mut w = RitmWorld::new(5, 10, DeploymentModel::CloseToClients);
    for i in 0..5 {
        let out = w.run_connection(&ConnectionOptions {
            duration_secs: 3,
            ..Default::default()
        });
        assert!(out.alive_at_end, "connection {i}");
    }
    let stats = w.ra.borrow().stats;
    assert_eq!(stats.supported_connections, 5);
    assert!(stats.statuses_sent >= 5);
}

#[test]
fn larger_delta_still_works_but_slower_detection() {
    let delta = 30u64;
    let mut w = RitmWorld::new(6, delta, DeploymentModel::CloseToClients);
    let out = w.run_connection(&ConnectionOptions {
        duration_secs: 4 * delta,
        server_sends_at: (1..4 * delta).step_by(3).collect(),
        revoke_at: Some(10),
        ..Default::default()
    });
    let (t, _) = out.aborted.expect("detected");
    assert!(t > 10, "cannot detect before the revocation reaches the RA");
    assert!(t <= 10 + 2 * delta + 2, "within 2Δ");
}

#[test]
fn world_advance_keeps_dictionaries_fresh() {
    let mut w = RitmWorld::new(7, 10, DeploymentModel::CloseToClients);
    // An hour of Δ cycles without any connection.
    w.advance(3_600);
    let out = w.run_connection(&ConnectionOptions::default());
    assert!(
        out.alive_at_end,
        "freshness must survive idling: {:?}",
        out.events
    );
}

#[test]
fn statuses_are_small_on_the_wire() {
    // §VII-D: the piggybacked status must stay in the hundreds of bytes.
    let w = RitmWorld::new(8, 10, DeploymentModel::CloseToClients);
    let ra = w.ra.clone();
    let serial = w.server_serial();
    let payload = ra
        .borrow_mut()
        .build_status(&[(w.ca.id(), serial)])
        .expect("mirrored");
    let len = payload.to_bytes().len();
    assert!(len < 900, "status {len} B exceeds the paper's envelope");
    drop(w);
}
