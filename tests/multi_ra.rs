//! Integration test for the §VIII "Multiple RAs" rules on a real simulated
//! path: two independently-installed RAs between client and server must not
//! double-inject, and the fresher dictionary wins.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::{RaConfig, RevocationAgent};
use ritm::ca::CertificationAuthority;
use ritm::cdn::network::Cdn;
use ritm::client::{DowngradePolicy, RitmClient, RitmClientConfig, RitmEvent};
use ritm::core::nodes::{ClientNode, ServerNode};
use ritm::crypto::SigningKey;
use ritm::dictionary::CaId;
use ritm::net::middlebox::MiddleboxNode;
use ritm::net::sim::{Path, Simulator};
use ritm::net::tcp::{Addr, FourTuple, SocketAddr};
use ritm::net::time::{SimDuration, SimTime};
use ritm::tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm::tls::connection::{ServerConnection, ServerContext};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;

#[test]
fn two_ras_on_path_inject_exactly_one_status() {
    let mut rng = StdRng::seed_from_u64(81);
    let mut cdn = Cdn::new(SimDuration::from_secs(DELTA));
    let ca = CertificationAuthority::new(
        "MultiCA",
        SigningKey::from_seed([1u8; 32]),
        DELTA,
        1 << 12,
        &mut cdn,
        &mut rng,
        T0,
    );

    // Two RAs bootstrap from the same genesis and stay in sync.
    let make_ra = || {
        let mut ra = RevocationAgent::new(RaConfig {
            delta: DELTA,
            ..Default::default()
        });
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .unwrap();
        Rc::new(RefCell::new(ra))
    };
    let ra_near_client = make_ra();
    let ra_near_server = make_ra();

    // Server cert + TLS endpoints.
    let server_key = SigningKey::from_seed([2u8; 32]);
    let leaf = Certificate::issue(
        &SigningKey::from_seed([1u8; 32]),
        ca.id(),
        ritm::dictionary::SerialNumber::from_u24(0x77),
        "example.com",
        T0 - 100,
        T0 + 1_000_000,
        server_key.verifying_key(),
        false,
    );
    // NOTE: the CA signing key and CertificationAuthority share the seed, so
    // the issued leaf verifies against ca.verifying_key().
    let ctx = ServerContext::new(CertificateChain(vec![leaf]), [7u8; 20]);

    let mut anchors = TrustAnchors::new();
    anchors.add(ca.id(), ca.verifying_key());
    let mut ca_keys: HashMap<CaId, _> = HashMap::new();
    ca_keys.insert(ca.id(), ca.verifying_key());
    let config = RitmClientConfig {
        server_name: "example.com".into(),
        anchors,
        ca_keys,
        delta: DELTA,
        policy: DowngradePolicy::AlwaysRequire,
    };

    let tuple = FourTuple {
        client: SocketAddr::new(1, 9001),
        server: SocketAddr::new(2, 443),
    };
    let client = RitmClient::new(config, [5u8; 32], None);
    let client_node = Rc::new(RefCell::new(ClientNode::new(client, tuple)));
    let server_node = Rc::new(RefCell::new(ServerNode::new(
        ServerConnection::new(ctx, [6u8; 32]),
        tuple,
    )));

    let mut sim = Simulator::new();
    sim.set_now(SimTime::from_secs(T0 + 1));
    let c = sim.add_node(Box::new(client_node.clone()));
    let m1 = sim.add_node(Box::new(MiddleboxNode::new(ra_near_client.clone())));
    let m2 = sim.add_node(Box::new(MiddleboxNode::new(ra_near_server.clone())));
    let s = sim.add_node(Box::new(server_node.clone()));
    sim.add_path(
        Addr(1),
        Addr(2),
        Path::new(
            vec![c, m1, m2, s],
            vec![
                SimDuration::from_millis(2),
                SimDuration::from_millis(25),
                SimDuration::from_millis(2),
            ],
        ),
    );

    let first = client_node.borrow_mut().start_segment();
    sim.inject(c, first);
    sim.run_to_quiescence();

    let node = client_node.borrow();
    assert!(node.client.is_established(), "events: {:?}", node.events);
    let accepted = node
        .events
        .iter()
        .filter(|(_, e)| matches!(e, RitmEvent::StatusAccepted))
        .count();
    assert_eq!(
        accepted, 1,
        "exactly one status validated: {:?}",
        node.events
    );

    // The server-side RA injected; the client-side RA left it in place.
    let near_server = ra_near_server.borrow().stats;
    let near_client = ra_near_client.borrow().stats;
    assert_eq!(near_server.statuses_sent, 1);
    assert_eq!(near_client.statuses_sent, 0);
    assert_eq!(near_client.statuses_left_in_place, 1);
    assert_eq!(near_client.statuses_replaced, 0);
}
