//! Integration tests for the dissemination pipeline (§III, Fig. 1):
//! multiple CAs publishing through one CDN, RAs in different regions
//! converging, catch-up after partitions, and the cost ledger.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::{RaConfig, RevocationAgent, SyncReport};
use ritm::ca::CertificationAuthority;
use ritm::cdn::network::Cdn;
use ritm::cdn::regions::Region;
use ritm::cdn::service::EdgeService;
use ritm::crypto::SigningKey;
use ritm::dictionary::SerialNumber;
use ritm::net::time::{SimDuration, SimTime};
use ritm::proto::Loopback;

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;

fn make_ca(name: &str, seed: u8, cdn: &mut Cdn, rng: &mut StdRng) -> CertificationAuthority {
    CertificationAuthority::new(
        name,
        SigningKey::from_seed([seed; 32]),
        DELTA,
        1 << 12,
        cdn,
        rng,
        T0,
    )
}

fn make_ra(region: Region, cas: &[&CertificationAuthority]) -> RevocationAgent {
    let mut ra = RevocationAgent::new(RaConfig {
        delta: DELTA,
        region,
        ..Default::default()
    });
    for ca in cas {
        ra.follow_ca(ca.id(), ca.verifying_key(), *ca.dictionary().signed_root())
            .expect("bootstrap");
    }
    ra
}

/// One sync pass over the wire protocol (borrowed edge service behind an
/// in-process loopback transport).
fn sync(ra: &mut RevocationAgent, cdn: &mut Cdn, now: u64) -> SyncReport {
    let service = EdgeService::new(&mut *cdn, ra.config.region, 7);
    service.set_now(SimTime::from_secs(now));
    let mut transport = Loopback::new(service);
    ra.sync_via(&mut transport, SimTime::from_secs(now))
}

fn revoke_fresh(
    ca: &mut CertificationAuthority,
    n: u32,
    cdn: &mut Cdn,
    rng: &mut StdRng,
    now: u64,
) -> Vec<SerialNumber> {
    let key = SigningKey::from_seed([99u8; 32]).verifying_key();
    let serials: Vec<SerialNumber> = (0..n)
        .map(|i| {
            ca.issue_certificate(&format!("s{i}.x"), key, 0, u64::MAX)
                .serial
        })
        .collect();
    ca.revoke(&serials, cdn, rng, now)
        .expect("revocation accepted");
    serials
}

#[test]
fn regional_ras_converge_on_multiple_cas() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut cdn = Cdn::new(SimDuration::from_secs(DELTA));
    let mut ca1 = make_ca("CA-One", 1, &mut cdn, &mut rng);
    let mut ca2 = make_ca("CA-Two", 2, &mut cdn, &mut rng);

    let mut ras: Vec<RevocationAgent> = [Region::Europe, Region::AsiaPacific, Region::SouthAmerica]
        .into_iter()
        .map(|r| make_ra(r, &[&ca1, &ca2]))
        .collect();

    revoke_fresh(&mut ca1, 50, &mut cdn, &mut rng, T0 + 1);
    revoke_fresh(&mut ca2, 30, &mut cdn, &mut rng, T0 + 2);

    for ra in &mut ras {
        let report = sync(ra, &mut cdn, T0 + 3);
        assert_eq!(report.revocations_applied, 80);
        assert_eq!(ra.mirror(&ca1.id()).unwrap().len(), 50);
        assert_eq!(ra.mirror(&ca2.id()).unwrap().len(), 30);
        assert_eq!(
            ra.mirror(&ca1.id()).unwrap().signed_root(),
            ca1.dictionary().signed_root()
        );
    }
    // All three regions were billed.
    assert!(cdn.ledger.bytes_in(Region::Europe) > 0);
    assert!(cdn.ledger.bytes_in(Region::AsiaPacific) > 0);
    assert!(cdn.ledger.bytes_in(Region::SouthAmerica) > 0);
}

#[test]
fn edge_caching_collapses_same_region_pulls() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut cdn = Cdn::new(SimDuration::from_secs(60));
    let mut ca = make_ca("CacheCA", 3, &mut cdn, &mut rng);
    // 20 RAs in the same region bootstrap from genesis, then the CA revokes.
    let mut ras: Vec<RevocationAgent> = (0..20).map(|_| make_ra(Region::Europe, &[&ca])).collect();
    revoke_fresh(&mut ca, 10, &mut cdn, &mut rng, T0 + 1);
    for ra in &mut ras {
        sync(ra, &mut cdn, T0 + 2);
    }
    let edge = cdn.edge(Region::Europe);
    assert!(
        edge.hit_ratio() > 0.9,
        "edge must absorb same-region pulls (hit ratio {})",
        edge.hit_ratio()
    );
    // Origin transferred each object roughly once.
    assert!(edge.origin_bytes < edge.served_bytes / 5);
}

#[test]
fn partitioned_ra_catches_up() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut cdn = Cdn::new(SimDuration::from_secs(DELTA));
    let mut ca = make_ca("PartCA", 4, &mut cdn, &mut rng);
    let mut ra = make_ra(Region::Europe, &[&ca]);

    // RA sees the first batch.
    revoke_fresh(&mut ca, 5, &mut cdn, &mut rng, T0 + 1);
    sync(&mut ra, &mut cdn, T0 + 2);
    assert_eq!(ra.mirror(&ca.id()).unwrap().len(), 5);

    // Network partition: RA misses three more batches.
    for k in 0..3u64 {
        revoke_fresh(&mut ca, 7, &mut cdn, &mut rng, T0 + 10 + k);
    }

    // Reconnect: a single sync must repair the gap via catch-up.
    let report = sync(&mut ra, &mut cdn, T0 + 20);
    assert_eq!(ra.mirror(&ca.id()).unwrap().len(), 26);
    assert!(report.catchups >= 1, "expected a catch-up request");
    assert_eq!(
        ra.mirror(&ca.id()).unwrap().signed_root(),
        ca.dictionary().signed_root()
    );
}

#[test]
fn proofs_from_synced_mirror_validate_for_all_queries() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut cdn = Cdn::new(SimDuration::from_secs(DELTA));
    let mut ca = make_ca("ProofCA", 5, &mut cdn, &mut rng);
    let mut ra = make_ra(Region::NorthAmerica, &[&ca]);
    let revoked = revoke_fresh(&mut ca, 100, &mut cdn, &mut rng, T0 + 1);
    sync(&mut ra, &mut cdn, T0 + 2);

    // Every revoked serial proves present; fresh serials prove absent.
    let mirror = ra.mirror(&ca.id()).unwrap();
    for s in revoked.iter().take(20) {
        let outcome = mirror
            .prove(s)
            .validate(s, &ca.verifying_key(), DELTA, T0 + 3)
            .expect("validates");
        assert!(outcome.is_revoked());
    }
    for v in [0x500000u32, 0x600000, 0x700000] {
        let s = SerialNumber::from_u24(v);
        let outcome = mirror
            .prove(&s)
            .validate(&s, &ca.verifying_key(), DELTA, T0 + 3)
            .expect("validates");
        assert!(!outcome.is_revoked());
    }
}

#[test]
fn ledger_bills_what_ras_download() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut cdn = Cdn::new(SimDuration::ZERO); // no caching: every byte billed
    let mut ca = make_ca("BillCA", 6, &mut cdn, &mut rng);
    let mut ra = make_ra(Region::Japan, &[&ca]);
    revoke_fresh(&mut ca, 1000, &mut cdn, &mut rng, T0 + 1);
    let report = sync(&mut ra, &mut cdn, T0 + 2);
    // The ledger bills the content bytes the edge served; the report counts
    // full envelope bytes (length prefix + version + kind + embedding), so
    // it exceeds the bill by a small bounded per-response overhead.
    assert!(report.bytes_downloaded > cdn.ledger.total_bytes());
    assert!(report.bytes_downloaded < cdn.ledger.total_bytes() + 64);
    assert!(cdn.ledger.bandwidth_cost_usd() > 0.0);
    assert_eq!(cdn.ledger.total_requests(), 2, "Latest + Freshness");
}
