//! Integration tests for TLS session resumption under RITM (§III: "RITM
//! supports two mechanisms of TLS resumption"): the abbreviated handshake
//! carries no Certificate message, so the RA serves statuses from its
//! session cache and the client validates them against identities it
//! remembered from the original handshake.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ritm::agent::{RaConfig, RevocationAgent};
use ritm::client::{AbortReason, DowngradePolicy, RitmClient, RitmClientConfig, RitmEvent};
use ritm::crypto::SigningKey;
use ritm::dictionary::{CaDictionary, CaId, SerialNumber};
use ritm::net::middlebox::Middlebox;
use ritm::net::tcp::{Direction, FourTuple, SocketAddr, TcpSegment};
use ritm::net::time::SimTime;
use ritm::tls::certificate::{Certificate, CertificateChain, TrustAnchors};
use ritm::tls::connection::{ServerConnection, ServerContext};
use ritm::tls::record::TlsRecord;
use std::collections::HashMap;
use std::sync::Arc;

const T0: u64 = 1_397_000_000;
const DELTA: u64 = 10;

struct World {
    ca: CaDictionary,
    ra: RevocationAgent,
    ctx: Arc<ServerContext>,
    config: RitmClientConfig,
    rng: StdRng,
    next_port: u16,
}

fn world() -> World {
    let mut rng = StdRng::seed_from_u64(71);
    let ca_key = SigningKey::from_seed([1u8; 32]);
    let ca = CaDictionary::new(
        CaId::from_name("ResCA"),
        ca_key.clone(),
        DELTA,
        1 << 12,
        &mut rng,
        T0,
    );
    let mut ra = RevocationAgent::new(RaConfig {
        delta: DELTA,
        ..Default::default()
    });
    ra.follow_ca(ca.ca(), ca.verifying_key(), *ca.signed_root())
        .unwrap();

    let server_key = SigningKey::from_seed([2u8; 32]);
    let leaf = Certificate::issue(
        &ca_key,
        ca.ca(),
        SerialNumber::from_u24(0x0042),
        "example.com",
        T0 - 100,
        T0 + 1_000_000,
        server_key.verifying_key(),
        false,
    );
    let ctx = ServerContext::new(CertificateChain(vec![leaf]), [7u8; 20]).with_tickets();

    let mut anchors = TrustAnchors::new();
    anchors.add(ca.ca(), ca.verifying_key());
    let mut ca_keys = HashMap::new();
    ca_keys.insert(ca.ca(), ca.verifying_key());
    let config = RitmClientConfig {
        server_name: "example.com".into(),
        anchors,
        ca_keys,
        delta: DELTA,
        policy: DowngradePolicy::AlwaysRequire,
    };
    World {
        ca,
        ra,
        ctx,
        config,
        rng,
        next_port: 9000,
    }
}

/// Drives one client connection through the RA, returning the client and
/// its events.
fn connect(
    w: &mut World,
    resume: Option<(ritm::tls::session::SessionState, Vec<(CaId, SerialNumber)>)>,
    now: u64,
) -> (RitmClient, Vec<RitmEvent>) {
    w.next_port += 1;
    let tuple = FourTuple {
        client: SocketAddr::new(1, w.next_port),
        server: SocketAddr::new(2, 443),
    };
    let mut client = RitmClient::new(w.config.clone(), [w.next_port as u8; 32], resume);
    let mut server = ServerConnection::new(w.ctx.clone(), [3u8; 32]);
    let mut events = Vec::new();
    let mut to_server = vec![client.start()];
    for _ in 0..8 {
        let mut to_client = Vec::new();
        for rec in to_server.drain(..) {
            let seg = TcpSegment::data(tuple, Direction::ToServer, 0, 0, rec.to_bytes());
            for out in w.ra.process(seg, SimTime::from_secs(now)) {
                for r in TlsRecord::parse_stream(&out.payload).unwrap() {
                    match server.process_record(&r, now) {
                        Ok((outs, _)) => to_client.extend(outs),
                        Err(_) => return (client, events),
                    }
                }
            }
        }
        for rec in to_client.drain(..) {
            let seg = TcpSegment::data(tuple, Direction::ToClient, 0, 0, rec.to_bytes());
            for out in w.ra.process(seg, SimTime::from_secs(now)) {
                for r in TlsRecord::parse_stream(&out.payload).unwrap() {
                    match client.process_record(&r, now) {
                        Ok((outs, evs)) => {
                            to_server.extend(outs);
                            events.extend(evs);
                        }
                        Err(_) => return (client, events),
                    }
                }
            }
        }
        if to_server.is_empty() && client.is_established() {
            break;
        }
    }
    (client, events)
}

#[test]
fn resumed_session_still_gets_statuses() {
    let mut w = world();
    // Full handshake: client remembers the session + chain identities.
    let (client, events) = connect(&mut w, None, T0 + 1);
    assert!(client.is_established(), "{events:?}");
    assert!(events.contains(&RitmEvent::StatusAccepted));
    let resume = client.resumption_data(T0 + 1).expect("session cached");

    // Abbreviated handshake through the same RA: no Certificate message on
    // the wire, but the RA's session cache supplies the identity.
    let (client2, events2) = connect(&mut w, Some(resume), T0 + 3);
    assert!(client2.is_established(), "{events2:?}");
    assert!(
        events2
            .iter()
            .any(|e| matches!(e, RitmEvent::Established { resumed: true, .. })),
        "{events2:?}"
    );
    assert!(
        events2.contains(&RitmEvent::StatusAccepted),
        "resumed session must still receive a validated status: {events2:?}"
    );
}

#[test]
fn resumed_session_blocks_revoked_certificate() {
    let mut w = world();
    let (client, _) = connect(&mut w, None, T0 + 1);
    let resume = client.resumption_data(T0 + 1).expect("session cached");

    // Certificate is revoked between the sessions.
    let serial = SerialNumber::from_u24(0x0042);
    let iss = w.ca.insert(&[serial], &mut w.rng, T0 + 2).unwrap();
    w.ra.mirror_mut(&w.ca.ca())
        .unwrap()
        .apply_issuance(&iss, T0 + 2)
        .unwrap();

    // Resumption must fail: the RA's status now carries a presence proof.
    let (client2, events2) = connect(&mut w, Some(resume), T0 + 4);
    assert!(!client2.is_established());
    assert!(
        events2
            .iter()
            .any(|e| matches!(e, RitmEvent::Aborted(AbortReason::Revoked { .. }))),
        "resumption must not bypass revocation: {events2:?}"
    );
}

#[test]
fn resumption_without_ra_is_blocked_by_policy() {
    let mut w = world();
    let (client, _) = connect(&mut w, None, T0 + 1);
    let resume = client.resumption_data(T0 + 1).expect("session cached");

    // Direct client↔server resumption with no RA on the path.
    let mut client2 = RitmClient::new(w.config.clone(), [99u8; 32], Some(resume));
    let mut server = ServerConnection::new(w.ctx.clone(), [4u8; 32]);
    let mut events = Vec::new();
    let mut to_server = vec![client2.start()];
    for _ in 0..8 {
        let mut to_client = Vec::new();
        for rec in to_server.drain(..) {
            if let Ok((outs, _)) = server.process_record(&rec, T0 + 3) {
                to_client.extend(outs);
            }
        }
        for rec in to_client.drain(..) {
            if let Ok((outs, evs)) = client2.process_record(&rec, T0 + 3) {
                to_server.extend(outs);
                events.extend(evs);
            }
        }
        if to_server.is_empty() {
            break;
        }
    }
    assert!(
        events.contains(&RitmEvent::Aborted(AbortReason::MissingStatus)),
        "{events:?}"
    );
}
